//! # ppgnn — Privacy Preserving Group Nearest Neighbor Search
//!
//! The facade crate of the PPGNN workspace: a full, from-scratch Rust
//! implementation of *"Privacy Preserving Group Nearest Neighbor Search"*
//! (EDBT 2018), including every substrate the paper depends on.
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`bigint`] | `ppgnn-bigint` | arbitrary-precision integers (GMP replacement) |
//! | [`paillier`] | `ppgnn-paillier` | generalized Paillier / Damgård–Jurik (libhcs replacement) |
//! | [`geo`] | `ppgnn-geo` | R-tree, kNN, MBM group-kNN (the plaintext black box) |
//! | [`datagen`] | `ppgnn-datagen` | synthetic Sequoia-like datasets and workloads |
//! | [`sim`] | `ppgnn-sim` | byte/CPU cost ledger |
//! | [`core`] | `ppgnn-core` | the PPGNN / PPGNN-OPT / Naive protocols |
//! | [`baselines`] | `ppgnn-baselines` | APNN, IPPF, GLP + the Table 4 attacks |
//! | [`server`] | `ppgnn-server` | networked LSP: framed TCP transport, session registry, load generator |
//! | [`telemetry`] | `ppgnn-telemetry` | pipeline-stage metrics registry and snapshot types |
//!
//! See `examples/quickstart.rs` for a three-user end-to-end run and
//! README.md for the architecture overview.

pub use ppgnn_baselines as baselines;
pub use ppgnn_bigint as bigint;
pub use ppgnn_core as core;
pub use ppgnn_datagen as datagen;
pub use ppgnn_geo as geo;
pub use ppgnn_paillier as paillier;
pub use ppgnn_server as server;
pub use ppgnn_sim as sim;
pub use ppgnn_telemetry as telemetry;

/// The most common imports for library users: the protocol engine and
/// config ([`Lsp`], [`PpgnnConfig`]), geometry, the Damgård–Jurik
/// context, the networked client/server pair, and the telemetry
/// snapshot types the stats surfaces speak.
///
/// [`Lsp`]: ppgnn_core::Lsp
/// [`PpgnnConfig`]: ppgnn_core::PpgnnConfig
pub mod prelude {
    pub use ppgnn_core::prelude::*;
    pub use ppgnn_geo::{Aggregate, Poi, Point, Rect};
    pub use ppgnn_paillier::DjContext;
    pub use ppgnn_server::{
        serve_world, GroupClient, ServerConfig, ServerHandle, SloConfig, WorldSeed,
    };
    pub use ppgnn_telemetry::{
        HealthSnapshot, LatencySummary, MetricsRegistry, StageSnapshot, TelemetrySnapshot,
    };
}
