//! Key generation for the (generalized) Paillier cryptosystem.
//!
//! Matches §3.1 of the paper: `(sk, pk) = Gen(keysize)` where `N`, the
//! product of two large primes, is determined by `pk`. A single keypair
//! serves every ε_s level — "the encryption and decryption with ε₂ can use
//! the same public key and secret key as those with ε₁" (§6).

use rand::Rng;
use serde::{Deserialize, Serialize};

use ppgnn_bigint::{gen_prime, BigUint};

/// Public key: the modulus `N` (and its nominal bit size).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    n: BigUint,
    key_bits: usize,
}

/// Secret key: the factorization of `N` and `λ = lcm(p−1, q−1)`.
///
/// Serializable for key storage; treat serialized forms as secrets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SecretKey {
    p: BigUint,
    q: BigUint,
    lambda: BigUint,
    n: BigUint,
}

/// A matching `(PublicKey, SecretKey)` pair.
pub type Keypair = (PublicKey, SecretKey);

impl PublicKey {
    /// The modulus `N = p·q`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Nominal key size in bits (the paper's `keysize`; `N` has exactly
    /// this many bits).
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    /// Byte length of one ε_s ciphertext: an element of `Z_{N^{s+1}}`.
    ///
    /// This is the `L_e` of the paper's cost model (for `s = 1`); the
    /// ε₂ ciphertext is 1.5× an ε₁ ciphertext in exact byte terms
    /// (`N³` vs `N²`), which the paper rounds to "about twice".
    pub fn ciphertext_bytes(&self, s: usize) -> usize {
        (self.key_bits * (s + 1)).div_ceil(8)
    }

    /// Constructs a public key directly from a modulus (for tests and for
    /// deserialization). The caller asserts `n` is a valid RSA modulus.
    pub fn from_modulus(n: BigUint) -> Self {
        let key_bits = n.bit_length();
        PublicKey { n, key_bits }
    }
}

impl SecretKey {
    /// `λ = lcm(p−1, q−1)` (the Carmichael function of `N`).
    pub fn lambda(&self) -> &BigUint {
        &self.lambda
    }

    /// The modulus (redundant copy so decryption needs no public key).
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// Prime factors, exposed for CRT-accelerated experiments.
    pub fn primes(&self) -> (&BigUint, &BigUint) {
        (&self.p, &self.q)
    }
}

/// Generates a Paillier keypair with an exactly-`keysize`-bit modulus.
///
/// Primes are drawn with their top two bits forced so `N = p·q` has exactly
/// `keysize` bits, and re-drawn until `gcd(N, λ) = 1` (required for
/// Damgård–Jurik decryption; holds with overwhelming probability).
///
/// # Panics
/// Panics if `keysize < 16` — too small for even a toy modulus.
pub fn generate_keypair<R: Rng + ?Sized>(keysize: usize, rng: &mut R) -> Keypair {
    assert!(
        keysize >= 16,
        "keysize must be at least 16 bits, got {keysize}"
    );
    let half = keysize / 2;
    loop {
        let p = gen_prime(half, rng);
        let q = gen_prime(keysize - half, rng);
        if p == q {
            continue;
        }
        let n = &p * &q;
        debug_assert_eq!(n.bit_length(), keysize);
        let p1 = &p - &BigUint::one();
        let q1 = &q - &BigUint::one();
        let lambda = p1.lcm(&q1);
        if !n.gcd(&lambda).is_one() {
            continue;
        }
        let pk = PublicKey {
            n: n.clone(),
            key_bits: keysize,
        };
        let sk = SecretKey { p, q, lambda, n };
        return (pk, sk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn keypair_has_exact_modulus_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for bits in [64usize, 128, 256] {
            let (pk, sk) = generate_keypair(bits, &mut rng);
            assert_eq!(pk.n().bit_length(), bits);
            assert_eq!(pk.key_bits(), bits);
            assert_eq!(pk.n(), sk.n());
        }
    }

    #[test]
    fn lambda_is_carmichael() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (pk, sk) = generate_keypair(64, &mut rng);
        let (p, q) = sk.primes();
        assert_eq!(&(p * q), pk.n());
        // λ divides (p-1)(q-1) and both p-1, q-1 divide λ.
        let p1 = p - &BigUint::one();
        let q1 = q - &BigUint::one();
        assert!((sk.lambda() % &p1).is_zero());
        assert!((sk.lambda() % &q1).is_zero());
        assert!(((&p1 * &q1) % sk.lambda()).is_zero());
    }

    #[test]
    fn gcd_n_lambda_is_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (pk, sk) = generate_keypair(96, &mut rng);
        assert!(pk.n().gcd(sk.lambda()).is_one());
    }

    #[test]
    fn ciphertext_byte_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (pk, _) = generate_keypair(128, &mut rng);
        assert_eq!(pk.ciphertext_bytes(1), 32); // N^2 = 256 bits
        assert_eq!(pk.ciphertext_bytes(2), 48); // N^3 = 384 bits
    }

    #[test]
    #[should_panic(expected = "at least 16 bits")]
    fn tiny_keysize_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = generate_keypair(8, &mut rng);
    }

    #[test]
    fn key_serde_roundtrip() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (pk, sk) = generate_keypair(96, &mut rng);
        let pk_json = serde_json::to_string(&pk).unwrap();
        let sk_json = serde_json::to_string(&sk).unwrap();
        let pk2: PublicKey = serde_json::from_str(&pk_json).unwrap();
        let sk2: SecretKey = serde_json::from_str(&sk_json).unwrap();
        assert_eq!(pk2, pk);
        assert_eq!(sk2.lambda(), sk.lambda());
        assert_eq!(sk2.primes().0, sk.primes().0);
        // The restored keys still decrypt.
        let ctx = crate::DjContext::new(&pk2, 1);
        let m = BigUint::from(123u64);
        let c = ctx.encrypt_core(&m, &mut rng).unwrap();
        assert_eq!(ctx.decrypt(&c, &sk2), m);
    }

    #[test]
    fn odd_keysize_supported() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (pk, _) = generate_keypair(65, &mut rng);
        assert_eq!(pk.n().bit_length(), 65);
    }
}
