//! Error type for cryptosystem misuse.

use core::fmt;

/// Errors raised by the Paillier layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// Plaintext is outside `Z_{N^s}`.
    PlaintextOutOfRange {
        plaintext_bits: usize,
        capacity_bits: usize,
    },
    /// Ciphertext is outside `Z_{N^{s+1}}` or shares a factor with `N`.
    MalformedCiphertext,
    /// A vector operation received operands of mismatched length.
    LengthMismatch { left: usize, right: usize },
    /// The requested key size is too small to be meaningful.
    KeySizeTooSmall(usize),
    /// Packing: a record does not fit the configured width.
    RecordTooWide { bits: usize, width_bits: usize },
}

impl fmt::Display for PaillierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaillierError::PlaintextOutOfRange {
                plaintext_bits,
                capacity_bits,
            } => write!(
                f,
                "plaintext of {plaintext_bits} bits exceeds the {capacity_bits}-bit plaintext space"
            ),
            PaillierError::MalformedCiphertext => write!(f, "malformed ciphertext"),
            PaillierError::LengthMismatch { left, right } => {
                write!(f, "vector length mismatch: {left} vs {right}")
            }
            PaillierError::KeySizeTooSmall(bits) => {
                write!(f, "key size of {bits} bits is too small (minimum 16)")
            }
            PaillierError::RecordTooWide { bits, width_bits } => {
                write!(
                    f,
                    "record of {bits} bits exceeds the {width_bits}-bit slot width"
                )
            }
        }
    }
}

impl std::error::Error for PaillierError {}
