//! Accelerated decryption: a reusable [`Decryptor`] that precomputes the
//! per-key constants plain [`DjContext::decrypt`] derives on every call
//! (`λ⁻¹ mod N^s`), and performs the dominating exponentiation `c^λ mod
//! N^{s+1}` by CRT over the prime-power factors `p^{s+1}`, `q^{s+1}` —
//! the same trick libhcs/GMP deployments use, worth ~3–4× on the
//! coordinator's answer-decryption step.

use ppgnn_bigint::{BigUint, MontgomeryCtx};
use ppgnn_telemetry as telemetry;

use crate::context::{Ciphertext, DjContext};
use crate::keys::SecretKey;

/// A decryption context bound to one `(SecretKey, s)` pair.
#[derive(Debug, Clone)]
pub struct Decryptor {
    /// λ = lcm(p−1, q−1).
    lambda: BigUint,
    /// λ⁻¹ mod N^s.
    lambda_inv: BigUint,
    /// Montgomery context modulo p^{s+1}.
    mont_p: MontgomeryCtx,
    /// Montgomery context modulo q^{s+1}.
    mont_q: MontgomeryCtx,
    /// CRT coefficient: (q^{s+1})⁻¹ mod p^{s+1}.
    q_inv_p: BigUint,
    /// q^{s+1} (the other CRT modulus).
    q_pow: BigUint,
}

impl Decryptor {
    /// Precomputes the constants for decrypting ε_s ciphertexts.
    pub fn new(ctx: &DjContext, sk: &SecretKey) -> Self {
        let s = ctx.level();
        let (p, q) = sk.primes();
        let p_pow = p.pow((s + 1) as u32);
        let q_pow = q.pow((s + 1) as u32);
        let q_inv_p = q_pow
            .mod_inverse(&p_pow)
            .expect("p, q are distinct primes, so q^{s+1} is a unit mod p^{s+1}");
        let lambda_inv = sk
            .lambda()
            .mod_inverse(ctx.plaintext_modulus())
            .expect("gcd(lambda, N) = 1 enforced at keygen");
        Decryptor {
            lambda: sk.lambda().clone(),
            lambda_inv,
            mont_p: MontgomeryCtx::new(p_pow),
            mont_q: MontgomeryCtx::new(q_pow.clone()),
            q_inv_p,
            q_pow,
        }
    }

    /// `c^λ mod N^{s+1}` via CRT: two half-size exponentiations plus a
    /// Garner recombination.
    fn pow_lambda_crt(&self, c: &BigUint) -> BigUint {
        let xp = self.mont_p.modpow(c, &self.lambda);
        let xq = self.mont_q.modpow(c, &self.lambda);
        // Garner: x = xq + q^{s+1} · ((xp − xq)·q_inv mod p^{s+1}).
        let p_pow = self.mont_p.modulus();
        let diff = if xp >= xq {
            &xp - &(&xq % p_pow)
        } else {
            // xp − xq mod p^{s+1}
            let xq_mod = &xq % p_pow;
            if xp >= xq_mod {
                &xp - &xq_mod
            } else {
                &(&xp + p_pow) - &xq_mod
            }
        };
        let t = (&diff % p_pow).mod_mul(&self.q_inv_p, p_pow);
        &xq + &(&t * &self.q_pow)
    }

    /// Decrypts using the precomputed constants and CRT exponentiation.
    ///
    /// # Panics
    /// Panics if the ciphertext level differs from the context's.
    pub fn decrypt(&self, ctx: &DjContext, c: &Ciphertext) -> BigUint {
        assert_eq!(c.level(), ctx.level(), "ciphertext level mismatch");
        let _t = telemetry::global().time(telemetry::Stage::PaillierDecrypt);
        telemetry::global().incr(telemetry::Op::PaillierDecrypt);
        let c_lambda = self.pow_lambda_crt(c.value());
        let x = ctx.dj_log_public(&c_lambda);
        x.mod_mul(&self.lambda_inv, ctx.plaintext_modulus())
    }

    /// Decrypts a whole vector.
    pub fn decrypt_vector(&self, ctx: &DjContext, v: &crate::EncryptedVector) -> Vec<BigUint> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::PaillierDecrypt);
        sp.attr(telemetry::trace::AttrKey::Ciphertexts, v.len() as u64);
        v.elements().iter().map(|c| self.decrypt(ctx, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keypair;
    use ppgnn_bigint::UniformBigUint;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matches_plain_decryption_s1_s2() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (pk, sk) = generate_keypair(128, &mut rng);
        for s in [1usize, 2] {
            let ctx = DjContext::new(&pk, s);
            let dec = Decryptor::new(&ctx, &sk);
            for _ in 0..10 {
                let m = rng.gen_biguint_below(ctx.plaintext_modulus());
                let c = ctx.encrypt_core(&m, &mut rng).unwrap();
                assert_eq!(dec.decrypt(&ctx, &c), ctx.decrypt(&c, &sk), "s={s}");
                assert_eq!(dec.decrypt(&ctx, &c), m);
            }
        }
    }

    #[test]
    fn crt_pow_matches_direct() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let dec = Decryptor::new(&ctx, &sk);
        for _ in 0..20 {
            let c = rng.gen_biguint_below(ctx.ciphertext_modulus());
            let direct = c.modpow(sk.lambda(), ctx.ciphertext_modulus());
            assert_eq!(dec.pow_lambda_crt(&c) % ctx.ciphertext_modulus(), direct);
        }
    }

    #[test]
    fn vector_decryption() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let dec = Decryptor::new(&ctx, &sk);
        let values: Vec<BigUint> = (0..5).map(|i| BigUint::from(i as u64 * 111)).collect();
        let enc = crate::EncryptedVector::from_ciphertexts(
            values
                .iter()
                .map(|v| ctx.encrypt_core(v, &mut rng).unwrap())
                .collect(),
        );
        assert_eq!(dec.decrypt_vector(&ctx, &enc), values);
    }

    #[test]
    fn crt_is_faster_than_plain() {
        // Not a strict benchmark, but CRT must not be slower by more than
        // noise; on 256-bit keys the speedup is already evident.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (pk, sk) = generate_keypair(256, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let dec = Decryptor::new(&ctx, &sk);
        let c = ctx.encrypt_core(&BigUint::from(42u64), &mut rng).unwrap();

        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            let _ = ctx.decrypt(&c, &sk);
        }
        let plain = t0.elapsed();
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            let _ = dec.decrypt(&ctx, &c);
        }
        let crt = t0.elapsed();
        assert!(
            crt < plain * 2,
            "CRT path unexpectedly slow: {crt:?} vs plain {plain:?}"
        );
    }
}
