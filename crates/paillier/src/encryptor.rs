//! The unified encryption API: one [`Encryptor`] trait over every way a
//! plaintext becomes a ciphertext, replacing the seven ad-hoc
//! `encrypt_*` entry points that had accreted around [`DjContext`].
//!
//! * [`FreshEncryptor`] — draws fresh randomness per encryption and pays
//!   the full `r^{N^s}` exponentiation online. The reference path.
//! * [`PooledEncryptor`] — takes precomputed randomizers from a
//!   [`RandomizerPool`], so online `Enc` is one binomial + one mulmod.
//!   The pool can be prefilled synchronously (the paper's mobile-user
//!   offline phase) or refilled by a background thread below a low
//!   watermark (the server/session form). Exhaustion **never** blocks or
//!   errors: the encryptor falls back to fresh randomness and counts a
//!   `pool-miss`.
//!
//! Both implementations are `Send + Sync` and object-safe, so call sites
//! take `&dyn Encryptor` and stay agnostic of the randomness strategy.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use ppgnn_bigint::BigUint;
use ppgnn_telemetry as telemetry;

use crate::context::{Ciphertext, DjContext};
use crate::error::PaillierError;
use crate::vector::EncryptedVector;

/// Draws `capacity` random units of `Z^*_N` and raises each to `N^s` —
/// the slow, plaintext-independent offline half of encryption.
pub(crate) fn generate_randomizers<R: rand::Rng + ?Sized>(
    ctx: &DjContext,
    capacity: usize,
    rng: &mut R,
) -> Vec<BigUint> {
    (0..capacity)
        .map(|_| ctx.pow_n_s(&ctx.random_unit(rng)))
        .collect()
}

/// A strategy for encrypting under one fixed `(pk, s)` context.
///
/// Object-safe: call sites hold `&dyn Encryptor` / `Box<dyn Encryptor>`
/// and never care whether randomness is fresh or pooled.
pub trait Encryptor: Send + Sync {
    /// The `(pk, s)` context this encryptor targets.
    fn context(&self) -> &DjContext;

    /// Encrypts `m ∈ Z_{N^s}` with implementation-chosen randomness.
    fn encrypt(&self, m: &BigUint) -> Result<Ciphertext, PaillierError>;

    /// Deterministic encryption under caller-chosen randomness
    /// `r ∈ Z^*_N` — the reference path for equality proofs and
    /// re-randomization tests. Identical across implementations.
    fn encrypt_with_randomness(
        &self,
        m: &BigUint,
        r: &BigUint,
    ) -> Result<Ciphertext, PaillierError> {
        let ctx = self.context();
        ctx.check_plaintext_range(m)?;
        Ok(ctx.encrypt_with_randomness_core(m, r))
    }

    /// Encrypts a plaintext vector element-wise.
    fn encrypt_vector(&self, values: &[BigUint]) -> Result<EncryptedVector, PaillierError> {
        let sp = telemetry::trace::span(telemetry::trace::SpanName::PaillierEncrypt);
        sp.attr(telemetry::trace::AttrKey::Ciphertexts, values.len() as u64);
        let elements: Result<Vec<_>, _> = values.iter().map(|v| self.encrypt(v)).collect();
        Ok(EncryptedVector::from_ciphertexts(elements?))
    }

    /// Builds and encrypts an indicator vector of length `len` with a
    /// single 1 at `position` (the paper's Eqn 5 / Algorithm 1 lines
    /// 9–10).
    ///
    /// # Panics
    /// Panics if `position >= len`.
    fn encrypt_indicator(
        &self,
        len: usize,
        position: usize,
    ) -> Result<EncryptedVector, PaillierError> {
        assert!(
            position < len,
            "indicator position {position} out of range {len}"
        );
        let values: Vec<BigUint> = (0..len)
            .map(|i| {
                if i == position {
                    BigUint::one()
                } else {
                    BigUint::zero()
                }
            })
            .collect();
        self.encrypt_vector(&values)
    }
}

/// Fresh randomness per encryption: the full `r^{N^s}` exponentiation on
/// every call. Thread-safe via an internal RNG lock.
pub struct FreshEncryptor {
    ctx: DjContext,
    rng: Mutex<Box<dyn RngCore + Send>>,
}

impl FreshEncryptor {
    /// An encryptor seeded from OS entropy.
    pub fn new(ctx: DjContext) -> Self {
        Self::with_rng(ctx, StdRng::from_entropy())
    }

    /// A deterministically seeded encryptor (tests, reproducible runs).
    pub fn seeded(ctx: DjContext, seed: u64) -> Self {
        Self::with_rng(ctx, StdRng::seed_from_u64(seed))
    }

    /// An encryptor drawing randomness from the given RNG.
    pub fn with_rng(ctx: DjContext, rng: impl RngCore + Send + 'static) -> Self {
        FreshEncryptor {
            ctx,
            rng: Mutex::new(Box::new(rng)),
        }
    }
}

impl Encryptor for FreshEncryptor {
    fn context(&self) -> &DjContext {
        &self.ctx
    }

    fn encrypt(&self, m: &BigUint) -> Result<Ciphertext, PaillierError> {
        let mut rng = self.rng.lock().expect("encryptor rng poisoned");
        self.ctx.encrypt_core(m, &mut **rng)
    }
}

/// Shared state between a [`RandomizerPool`]'s consumers and its refill
/// thread.
struct PoolInner {
    ctx: DjContext,
    capacity: usize,
    /// Refill triggers when depth drops below this (background pools).
    low_watermark: usize,
    stack: Mutex<Vec<BigUint>>,
    need_refill: Condvar,
    shutdown: AtomicBool,
}

impl PoolInner {
    fn publish_depth(&self, depth: usize) {
        telemetry::global().set_gauge(telemetry::Gauge::PoolDepth, depth as u64);
    }
}

/// A pool of precomputed `r^{N^s} mod N^{s+1}` randomizers, shareable
/// across threads.
///
/// Two forms:
/// * [`RandomizerPool::prefilled`] — filled synchronously by the caller
///   (the paper's offline phase; cost attributable to a ledger), never
///   refilled.
/// * [`RandomizerPool::with_background_refill`] — a refill thread
///   precomputes randomizers off the query path and tops the pool back up
///   to capacity whenever depth drops below the low watermark.
///
/// [`RandomizerPool::take`] never blocks: an empty pool returns `None`
/// and the caller (see [`PooledEncryptor`]) falls back to fresh
/// randomness. Depth is published on the `pool-depth` telemetry gauge.
pub struct RandomizerPool {
    inner: Arc<PoolInner>,
    refill: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RandomizerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RandomizerPool")
            .field("capacity", &self.inner.capacity)
            .field("low_watermark", &self.inner.low_watermark)
            .field("remaining", &self.remaining())
            .field("background", &self.refill.is_some())
            .finish()
    }
}

impl RandomizerPool {
    /// Fills the pool synchronously with `capacity` randomizers drawn
    /// from `rng`. No refill thread: once drained, consumers fall back to
    /// fresh randomness.
    pub fn prefilled<R: rand::Rng + ?Sized>(ctx: &DjContext, capacity: usize, rng: &mut R) -> Self {
        let stack = generate_randomizers(ctx, capacity, rng);
        let inner = Arc::new(PoolInner {
            ctx: ctx.clone(),
            capacity,
            low_watermark: 0,
            stack: Mutex::new(stack),
            need_refill: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        inner.publish_depth(capacity);
        RandomizerPool {
            inner,
            refill: None,
        }
    }

    /// Starts a background-refilled pool: a low-priority thread fills to
    /// `capacity`, then sleeps until depth drops below `low_watermark`
    /// and tops back up — precomputation always happens off the query
    /// path. Pass a `seed` for deterministic refill randomness (tests);
    /// `None` seeds from OS entropy.
    ///
    /// # Panics
    /// Panics unless `1 <= low_watermark <= capacity`.
    pub fn with_background_refill(
        ctx: DjContext,
        capacity: usize,
        low_watermark: usize,
        seed: Option<u64>,
    ) -> Self {
        assert!(
            (1..=capacity).contains(&low_watermark),
            "low watermark must be in 1..=capacity"
        );
        let inner = Arc::new(PoolInner {
            ctx,
            capacity,
            low_watermark,
            stack: Mutex::new(Vec::with_capacity(capacity)),
            need_refill: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("randomizer-refill".into())
            .spawn(move || refill_loop(&thread_inner, seed))
            .expect("spawn refill thread");
        RandomizerPool {
            inner,
            refill: Some(handle),
        }
    }

    /// The `(pk, s)` context the randomizers belong to.
    pub fn context(&self) -> &DjContext {
        &self.inner.ctx
    }

    /// Pops one precomputed randomizer, or `None` when empty — never
    /// blocks. Signals the refill thread when depth crosses the low
    /// watermark.
    pub fn take(&self) -> Option<BigUint> {
        let (rn, depth) = {
            let mut stack = self.inner.stack.lock().expect("pool lock poisoned");
            (stack.pop(), stack.len())
        };
        self.inner.publish_depth(depth);
        if rn.is_some() && depth < self.inner.low_watermark {
            self.inner.need_refill.notify_one();
        }
        rn
    }

    /// Randomizers currently available.
    pub fn remaining(&self) -> usize {
        self.inner.stack.lock().expect("pool lock poisoned").len()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Blocks until the pool is filled to capacity (tests/benchmarks that
    /// must separate offline warm-up from online measurement).
    pub fn wait_until_full(&self) {
        loop {
            if self.remaining() >= self.inner.capacity || self.refill.is_none() {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

impl Drop for RandomizerPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.need_refill.notify_all();
        if let Some(handle) = self.refill.take() {
            let _ = handle.join();
        }
    }
}

/// The background refill loop: wait below the low watermark, fill to
/// capacity. Each randomizer is computed **outside** the lock so takers
/// never wait on a modular exponentiation.
fn refill_loop(inner: &PoolInner, seed: Option<u64>) {
    let mut rng = match seed {
        Some(s) => StdRng::seed_from_u64(s),
        None => StdRng::from_entropy(),
    };
    loop {
        {
            let mut stack = inner.stack.lock().expect("pool lock poisoned");
            // Sleep while healthy: above the watermark after the initial
            // fill, or at capacity during it.
            while !inner.shutdown.load(Ordering::Acquire) && stack.len() >= inner.capacity {
                stack = inner.need_refill.wait(stack).expect("pool lock poisoned");
            }
        }
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Fill to capacity, one randomizer per lock acquisition.
        loop {
            if inner.shutdown.load(Ordering::Acquire) {
                return;
            }
            let rn = inner.ctx.pow_n_s(&inner.ctx.random_unit(&mut rng));
            let depth = {
                let mut stack = inner.stack.lock().expect("pool lock poisoned");
                if stack.len() >= inner.capacity {
                    break;
                }
                stack.push(rn);
                stack.len()
            };
            inner.publish_depth(depth);
            if depth >= inner.capacity {
                break;
            }
        }
    }
}

/// Pool-backed encryption: one binomial + one mulmod online, with a
/// never-block fresh-randomness fallback when the pool is dry.
///
/// Hits and misses are counted on the `pool-hit` / `pool-miss` telemetry
/// counters; pool depth rides the `pool-depth` gauge.
pub struct PooledEncryptor {
    pool: Arc<RandomizerPool>,
    fallback: Mutex<Box<dyn RngCore + Send>>,
}

impl PooledEncryptor {
    /// Wraps a (possibly shared) pool; the fallback RNG is seeded from OS
    /// entropy.
    pub fn new(pool: Arc<RandomizerPool>) -> Self {
        Self::with_fallback_rng(pool, StdRng::from_entropy())
    }

    /// Wraps a pool with a deterministically seeded fallback RNG.
    pub fn seeded(pool: Arc<RandomizerPool>, seed: u64) -> Self {
        Self::with_fallback_rng(pool, StdRng::seed_from_u64(seed))
    }

    /// Wraps a pool with a caller-supplied fallback RNG.
    pub fn with_fallback_rng(
        pool: Arc<RandomizerPool>,
        rng: impl RngCore + Send + 'static,
    ) -> Self {
        PooledEncryptor {
            pool,
            fallback: Mutex::new(Box::new(rng)),
        }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &RandomizerPool {
        &self.pool
    }
}

impl Encryptor for PooledEncryptor {
    fn context(&self) -> &DjContext {
        self.pool.context()
    }

    fn encrypt(&self, m: &BigUint) -> Result<Ciphertext, PaillierError> {
        match self.pool.take() {
            Some(rn) => {
                telemetry::global().incr(telemetry::Op::PoolHit);
                self.context().encrypt_with_randomizer_core(m, &rn)
            }
            None => {
                telemetry::global().incr(telemetry::Op::PoolMiss);
                let mut rng = self.fallback.lock().expect("fallback rng poisoned");
                self.context().encrypt_core(m, &mut **rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keypair;
    use crate::SecretKey;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DjContext, SecretKey, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let (pk, sk) = generate_keypair(128, &mut rng);
        (DjContext::new(&pk, 1), sk, rng)
    }

    #[test]
    fn fresh_encryptor_roundtrip_and_probabilistic() {
        let (ctx, sk, _) = setup();
        let enc = FreshEncryptor::seeded(ctx.clone(), 7);
        let m = BigUint::from(424242u64);
        let c1 = enc.encrypt(&m).unwrap();
        let c2 = enc.encrypt(&m).unwrap();
        assert_ne!(c1, c2, "fresh randomness per call");
        assert_eq!(ctx.decrypt(&c1, &sk), m);
        assert_eq!(ctx.decrypt(&c2, &sk), m);
    }

    #[test]
    fn pooled_encryptor_roundtrip_with_prefilled_pool() {
        let (ctx, sk, mut rng) = setup();
        let pool = Arc::new(RandomizerPool::prefilled(&ctx, 4, &mut rng));
        let enc = PooledEncryptor::seeded(pool, 8);
        for i in 0..4u64 {
            let m = BigUint::from(i * 77);
            let c = enc.encrypt(&m).unwrap();
            assert_eq!(ctx.decrypt(&c, &sk), m);
        }
        assert_eq!(enc.pool().remaining(), 0);
    }

    #[test]
    fn pooled_exhaustion_falls_back_to_fresh() {
        let (ctx, sk, mut rng) = setup();
        let pool = Arc::new(RandomizerPool::prefilled(&ctx, 1, &mut rng));
        let enc = PooledEncryptor::seeded(pool, 9);
        let m = BigUint::from(5u64);
        let c1 = enc.encrypt(&m).unwrap();
        // Pool is now dry: this must still succeed, never error or block.
        let c2 = enc.encrypt(&m).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(ctx.decrypt(&c1, &sk), m);
        assert_eq!(ctx.decrypt(&c2, &sk), m);
        assert_eq!(enc.pool().remaining(), 0);
    }

    #[test]
    fn background_pool_refills_below_watermark() {
        let (ctx, sk, _) = setup();
        let pool = Arc::new(RandomizerPool::with_background_refill(
            ctx.clone(),
            8,
            4,
            Some(13),
        ));
        pool.wait_until_full();
        assert_eq!(pool.remaining(), 8);
        let enc = PooledEncryptor::seeded(Arc::clone(&pool), 14);
        // Drain until we *observe* depth below the watermark (the refill
        // thread may race us and top up mid-drain, so a fixed number of
        // takes is not enough). The take that crosses the watermark
        // signals the refill thread, which must then fill to capacity.
        let mut i = 0u64;
        while pool.remaining() >= 4 {
            let m = BigUint::from(i % 1000);
            let c = enc.encrypt(&m).unwrap();
            assert_eq!(ctx.decrypt(&c, &sk), m);
            i += 1;
            assert!(i < 10_000, "drain never outpaced refill");
        }
        pool.wait_until_full();
        assert_eq!(pool.remaining(), 8, "refilled to capacity");
    }

    #[test]
    fn background_pool_shutdown_is_clean() {
        let (ctx, _, _) = setup();
        let pool = RandomizerPool::with_background_refill(ctx, 4, 2, Some(21));
        pool.wait_until_full();
        drop(pool); // Drop must join the refill thread without hanging.
    }

    #[test]
    fn trait_object_usability() {
        // The whole point of the redesign: call sites hold `&dyn
        // Encryptor` and swap strategies freely.
        let (ctx, sk, mut rng) = setup();
        let pool = Arc::new(RandomizerPool::prefilled(&ctx, 8, &mut rng));
        let encryptors: Vec<Box<dyn Encryptor>> = vec![
            Box::new(FreshEncryptor::seeded(ctx.clone(), 31)),
            Box::new(PooledEncryptor::seeded(pool, 32)),
        ];
        let m = BigUint::from(12345u64);
        for enc in &encryptors {
            let c = enc.encrypt(&m).unwrap();
            assert_eq!(enc.context().decrypt(&c, &sk), m);
            let v = enc
                .encrypt_vector(&[BigUint::one(), BigUint::from(2u64)])
                .unwrap();
            assert_eq!(v.len(), 2);
            let ind = enc.encrypt_indicator(3, 1).unwrap();
            assert_eq!(ind.len(), 3);
        }
    }

    #[test]
    fn same_randomness_is_bit_identical_across_impls() {
        // Enc(m; r) is a deterministic function of (m, r): fresh and
        // pooled implementations must agree bit for bit.
        let (ctx, _, mut rng) = setup();
        let pool = Arc::new(RandomizerPool::prefilled(&ctx, 1, &mut rng));
        let fresh = FreshEncryptor::seeded(ctx.clone(), 41);
        let pooled = PooledEncryptor::seeded(pool, 42);
        let m = BigUint::from(987654321u64);
        let r = BigUint::from(0xDEADBEEFu64);
        let c1 = fresh.encrypt_with_randomness(&m, &r).unwrap();
        let c2 = pooled.encrypt_with_randomness(&m, &r).unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    fn out_of_range_plaintext_rejected_by_both() {
        let (ctx, _, mut rng) = setup();
        let too_big = ctx.plaintext_modulus().clone();
        let fresh = FreshEncryptor::seeded(ctx.clone(), 51);
        assert!(matches!(
            fresh.encrypt(&too_big),
            Err(PaillierError::PlaintextOutOfRange { .. })
        ));
        let pool = Arc::new(RandomizerPool::prefilled(&ctx, 1, &mut rng));
        let pooled = PooledEncryptor::seeded(pool, 52);
        assert!(matches!(
            pooled.encrypt(&too_big),
            Err(PaillierError::PlaintextOutOfRange { .. })
        ));
    }

    #[test]
    fn concurrent_takers_never_block_or_double_spend() {
        let (ctx, sk, _) = setup();
        let pool = Arc::new(RandomizerPool::with_background_refill(
            ctx.clone(),
            16,
            8,
            Some(61),
        ));
        pool.wait_until_full();
        let enc = Arc::new(PooledEncryptor::seeded(Arc::clone(&pool), 62));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let enc = Arc::clone(&enc);
                std::thread::spawn(move || {
                    (0..8u64)
                        .map(|i| enc.encrypt(&BigUint::from(t * 100 + i)).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut all = Vec::new();
        for (t, h) in handles.into_iter().enumerate() {
            for (i, c) in h.join().unwrap().into_iter().enumerate() {
                assert_eq!(
                    ctx.decrypt(&c, &sk),
                    BigUint::from(t as u64 * 100 + i as u64)
                );
                all.push(c);
            }
        }
        // Every ciphertext must be distinct (no randomizer reuse).
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "randomizer double-spend");
            }
        }
    }
}
