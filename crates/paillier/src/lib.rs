//! Generalized Paillier cryptosystem ε_s (Damgård–Jurik, PKC 2001) —
//! the cryptographic substrate of the PPGNN protocols.
//!
//! The original paper uses GMP + libhcs; this crate is the from-scratch
//! equivalent built on [`ppgnn_bigint`]. It provides:
//!
//! * key generation ([`generate_keypair`]) for a modulus `N = p·q`;
//! * the ε_s scheme for any `s ≥ 1` via [`DjContext`]: plaintexts in
//!   `Z_{N^s}`, ciphertexts in `Z^*_{N^{s+1}}`, with the fast binomial
//!   evaluation of `(1+N)^m` and the Damgård–Jurik discrete-log
//!   decryption;
//! * the unified [`Encryptor`] API: [`FreshEncryptor`] draws randomness
//!   per call, [`PooledEncryptor`] spends pre-computed `r^{N^s}`
//!   randomizers from a (optionally background-refilled)
//!   [`RandomizerPool`] and degrades to fresh randomness when empty;
//! * the homomorphisms the paper relies on (its Eqn 2–4): addition `⊕`,
//!   plaintext–ciphertext multiplication `⊗`, dot product `⊙`
//!   (Straus–Shamir multi-exponentiation), and the matrix private
//!   selection `A ⨂ [v]` of Theorem 3.1 ([`matrix_select`] /
//!   [`matrix_select_with`] for window-table hoisting and row
//!   parallelism);
//! * layered encryption: an ε₁ ciphertext (an element of `Z_{N²}`) can be
//!   treated as an ε₂ plaintext, which is exactly the trick PPGNN-OPT's
//!   two-phase selection uses;
//! * plaintext packing ([`packing`]) of fixed-width records (POI
//!   coordinates) into integers `< N^s`.
//!
//! # Example
//!
//! ```
//! use ppgnn_paillier::{generate_keypair, DjContext, Encryptor, FreshEncryptor};
//! use ppgnn_bigint::BigUint;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let (pk, sk) = generate_keypair(256, &mut rng);
//! let ctx = DjContext::new(&pk, 1);
//! let enc = FreshEncryptor::with_rng(ctx.clone(), rng);
//! let c1 = enc.encrypt(&BigUint::from(20u64)).unwrap();
//! let c2 = enc.encrypt(&BigUint::from(22u64)).unwrap();
//! let sum = ctx.add(&c1, &c2);
//! assert_eq!(ctx.decrypt(&sum, &sk), BigUint::from(42u64));
//! ```

mod context;
mod decryptor;
mod encryptor;
mod error;
mod keys;
pub mod packing;
mod vector;

pub use context::{Ciphertext, DjContext};
pub use decryptor::Decryptor;
pub use encryptor::{Encryptor, FreshEncryptor, PooledEncryptor, RandomizerPool};
pub use error::PaillierError;
pub use keys::{generate_keypair, Keypair, PublicKey, SecretKey};
pub use vector::{
    decrypt_vector, matrix_select, matrix_select_with, EncryptedVector, SelectOptions,
    SelectStrategy,
};
