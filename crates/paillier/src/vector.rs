//! Vector and matrix homomorphisms: element-wise encryption, the dot
//! product `⊙` (Eqn 4), and the private-selection matrix product `A ⨂ [v]`
//! of Theorem 3.1 — the core LSP-side primitive of the whole paper.

use rand::Rng;

use ppgnn_bigint::BigUint;
use ppgnn_telemetry as telemetry;

use crate::context::{Ciphertext, DjContext};
use crate::error::PaillierError;
use crate::keys::SecretKey;

/// An element-wise encrypted vector `[v] = ([v₁], …, [v_m])`.
#[derive(Debug, Clone)]
pub struct EncryptedVector {
    elements: Vec<Ciphertext>,
}

impl EncryptedVector {
    /// Wraps pre-built ciphertexts.
    pub fn from_ciphertexts(elements: Vec<Ciphertext>) -> Self {
        EncryptedVector { elements }
    }

    /// The component ciphertexts.
    pub fn elements(&self) -> &[Ciphertext] {
        &self.elements
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` iff the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Homomorphic dot product with a plaintext vector (the paper's `⊙`):
    /// returns `Enc(x · v)`.
    pub fn dot(&self, x: &[BigUint], ctx: &DjContext) -> Result<Ciphertext, PaillierError> {
        if x.len() != self.elements.len() {
            return Err(PaillierError::LengthMismatch {
                left: x.len(),
                right: self.elements.len(),
            });
        }
        let _t = telemetry::global().time(telemetry::Stage::PaillierDot);
        telemetry::global().incr(telemetry::Op::PaillierDot);
        let mut acc = ctx.one_ciphertext();
        for (xi, ci) in x.iter().zip(&self.elements) {
            if xi.is_zero() {
                // 0 ⊗ [v] contributes Enc(0); skip the exponentiation.
                continue;
            }
            acc = ctx.add(&acc, &ctx.scalar_mul(xi, ci));
        }
        Ok(acc)
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self, ctx: &DjContext) -> usize {
        self.elements.len() * ctx.public_key().ciphertext_bytes(ctx.level())
    }
}

/// Encrypts a plaintext vector element-wise.
pub fn encrypt_vector<R: Rng + ?Sized>(
    values: &[BigUint],
    ctx: &DjContext,
    rng: &mut R,
) -> EncryptedVector {
    let sp = telemetry::trace::span(telemetry::trace::SpanName::PaillierEncrypt);
    sp.attr(telemetry::trace::AttrKey::Ciphertexts, values.len() as u64);
    EncryptedVector {
        elements: values.iter().map(|v| ctx.encrypt(v, rng)).collect(),
    }
}

/// Builds and encrypts an indicator vector of length `len` with a single 1
/// at `position` (the paper's Eqn 5 / Algorithm 1 line 9–10).
///
/// # Panics
/// Panics if `position >= len`.
pub fn encrypt_indicator<R: Rng + ?Sized>(
    len: usize,
    position: usize,
    ctx: &DjContext,
    rng: &mut R,
) -> EncryptedVector {
    assert!(
        position < len,
        "indicator position {position} out of range {len}"
    );
    let values: Vec<BigUint> = (0..len)
        .map(|i| {
            if i == position {
                BigUint::one()
            } else {
                BigUint::zero()
            }
        })
        .collect();
    encrypt_vector(&values, ctx, rng)
}

/// Decrypts a vector element-wise.
pub fn decrypt_vector(v: &EncryptedVector, ctx: &DjContext, sk: &SecretKey) -> Vec<BigUint> {
    v.elements.iter().map(|c| ctx.decrypt(c, sk)).collect()
}

/// Encrypts an indicator vector with pooled randomizers (the fast online
/// step of the mobile-user optimization).
///
/// Returns `None` when the pool runs dry before `len` encryptions.
///
/// # Panics
/// Panics if `position >= len`.
pub fn encrypt_indicator_pooled(
    len: usize,
    position: usize,
    ctx: &DjContext,
    pool: &mut crate::RandomnessPool,
) -> Option<EncryptedVector> {
    assert!(
        position < len,
        "indicator position {position} out of range {len}"
    );
    let mut elements = Vec::with_capacity(len);
    for i in 0..len {
        let m = if i == position {
            BigUint::one()
        } else {
            BigUint::zero()
        };
        let ct = pool.encrypt(ctx, &m)?.expect("0/1 always in range");
        elements.push(ct);
    }
    Some(EncryptedVector { elements })
}

/// Theorem 3.1: homomorphic matrix product `A ⨂ [v]`.
///
/// `columns[j]` is the answer vector `a_j` (length `m`, entries `< N^s`);
/// `[v]` is the encrypted indicator with `columns.len()` components.
/// Returns the encrypted selected column `[a_i]` (length `m`).
///
/// Columns may have differing lengths; shorter columns are implicitly
/// zero-padded to the longest (`m`), mirroring the paper's padding of
/// answers to a common `m`.
pub fn matrix_select(
    columns: &[Vec<BigUint>],
    v: &EncryptedVector,
    ctx: &DjContext,
) -> Result<EncryptedVector, PaillierError> {
    if columns.len() != v.len() {
        return Err(PaillierError::LengthMismatch {
            left: columns.len(),
            right: v.len(),
        });
    }
    let m = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    // One span for the whole A ⨂ [v] batch; per-dot spans would swamp
    // the per-segment cap, and op counts already ride on the segment.
    let sp = telemetry::trace::span(telemetry::trace::SpanName::PaillierDot);
    sp.attr(telemetry::trace::AttrKey::Ciphertexts, (m * v.len()) as u64);
    let zero = BigUint::zero();
    let mut rows = Vec::with_capacity(m);
    for row in 0..m {
        // Row `row` of A is (a_{1,row}, …, a_{δ',row}); dot with [v].
        let x: Vec<BigUint> = columns
            .iter()
            .map(|col| col.get(row).unwrap_or(&zero).clone())
            .collect();
        rows.push(v.dot(&x, ctx)?);
    }
    Ok(EncryptedVector { elements: rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DjContext, SecretKey, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let (pk, sk) = generate_keypair(128, &mut rng);
        (DjContext::new(&pk, 1), sk, rng)
    }

    fn nums(vals: &[u64]) -> Vec<BigUint> {
        vals.iter().map(|&v| BigUint::from(v)).collect()
    }

    #[test]
    fn encrypt_decrypt_vector_roundtrip() {
        let (ctx, sk, mut rng) = setup();
        let vals = nums(&[0, 1, 99, 12345]);
        let enc = encrypt_vector(&vals, &ctx, &mut rng);
        assert_eq!(decrypt_vector(&enc, &ctx, &sk), vals);
    }

    #[test]
    fn dot_product_matches_plain() {
        let (ctx, sk, mut rng) = setup();
        let v = nums(&[3, 0, 7]);
        let x = nums(&[2, 100, 5]);
        let enc = encrypt_vector(&v, &ctx, &mut rng);
        let dot = enc.dot(&x, &ctx).unwrap();
        assert_eq!(ctx.decrypt(&dot, &sk), BigUint::from(3 * 2 + 7 * 5u64));
    }

    #[test]
    fn dot_length_mismatch_rejected() {
        let (ctx, _, mut rng) = setup();
        let enc = encrypt_vector(&nums(&[1, 2]), &ctx, &mut rng);
        assert!(matches!(
            enc.dot(&nums(&[1]), &ctx),
            Err(PaillierError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn indicator_selects_element() {
        let (ctx, sk, mut rng) = setup();
        let x = nums(&[10, 20, 30, 40]);
        for pos in 0..4 {
            let ind = encrypt_indicator(4, pos, &ctx, &mut rng);
            let sel = ind.dot(&x, &ctx).unwrap();
            assert_eq!(ctx.decrypt(&sel, &sk), x[pos]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indicator_position_out_of_range() {
        let (ctx, _, mut rng) = setup();
        let _ = encrypt_indicator(3, 3, &ctx, &mut rng);
    }

    #[test]
    fn matrix_select_returns_chosen_column() {
        let (ctx, sk, mut rng) = setup();
        let columns = vec![nums(&[1, 2, 3]), nums(&[4, 5, 6]), nums(&[7, 8, 9])];
        for pick in 0..3 {
            let ind = encrypt_indicator(3, pick, &ctx, &mut rng);
            let sel = matrix_select(&columns, &ind, &ctx).unwrap();
            assert_eq!(decrypt_vector(&sel, &ctx, &sk), columns[pick]);
        }
    }

    #[test]
    fn matrix_select_pads_ragged_columns() {
        let (ctx, sk, mut rng) = setup();
        let columns = vec![nums(&[1, 2, 3]), nums(&[9])];
        let ind = encrypt_indicator(2, 1, &ctx, &mut rng);
        let sel = matrix_select(&columns, &ind, &ctx).unwrap();
        assert_eq!(decrypt_vector(&sel, &ctx, &sk), nums(&[9, 0, 0]));
    }

    #[test]
    fn matrix_select_dimension_mismatch() {
        let (ctx, _, mut rng) = setup();
        let ind = encrypt_indicator(2, 0, &ctx, &mut rng);
        let columns = vec![nums(&[1])];
        assert!(matrix_select(&columns, &ind, &ctx).is_err());
    }

    #[test]
    fn matrix_select_empty_matrix() {
        let (ctx, _, mut rng) = setup();
        let ind = encrypt_indicator(2, 0, &ctx, &mut rng);
        let columns = vec![vec![], vec![]];
        let sel = matrix_select(&columns, &ind, &ctx).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn byte_len_matches_key() {
        let (ctx, _, mut rng) = setup();
        let enc = encrypt_vector(&nums(&[1, 2, 3]), &ctx, &mut rng);
        // 128-bit key, s=1 ⇒ 32 bytes per ciphertext.
        assert_eq!(enc.byte_len(&ctx), 3 * 32);
    }
}
