//! Vector and matrix homomorphisms: element-wise encryption, the dot
//! product `⊙` (Eqn 4), and the private-selection matrix product `A ⨂ [v]`
//! of Theorem 3.1 — the core LSP-side primitive of the whole paper.
//!
//! The hot path here is multi-exponentiation: every selected row is
//! `Π_i c_i^{a_i} mod N^{s+1}`. Two structural facts make it fast:
//! the bases (the indicator ciphertexts) are shared across **every** row
//! of the matrix, so their window tables are built once and hoisted
//! ([`ppgnn_bigint::MontWindowTable`]); and within one row the squaring
//! chain is shared across all bases (Straus–Shamir,
//! [`ppgnn_bigint::multi_modpow`]). Rows are independent, so
//! [`matrix_select_with`] can additionally fan them out across worker
//! threads. All of this is exact integer arithmetic: the optimized paths
//! return **bit-identical** ciphertexts to the naive path.

use ppgnn_bigint::{multi_modpow, BigUint, MontWindowTable};
use ppgnn_telemetry as telemetry;

use crate::context::{Ciphertext, DjContext};
use crate::error::PaillierError;
use crate::keys::SecretKey;

/// An element-wise encrypted vector `[v] = ([v₁], …, [v_m])`.
#[derive(Debug, Clone)]
pub struct EncryptedVector {
    elements: Vec<Ciphertext>,
}

/// How [`matrix_select_with`] and [`EncryptedVector::dot`] evaluate the
/// multi-exponentiation inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectStrategy {
    /// One full-width `modpow` per nonzero matrix entry (the reference
    /// path; kept for property tests and A/B benchmarks).
    Naive,
    /// Straus–Shamir interleaving with hoisted per-base window tables.
    Straus,
}

/// Tuning knobs for the private-selection product.
#[derive(Debug, Clone, Copy)]
pub struct SelectOptions {
    /// Worker threads for row evaluation (1 = sequential).
    pub parallelism: usize,
    /// Inner-loop evaluation strategy.
    pub strategy: SelectStrategy,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            parallelism: 1,
            strategy: SelectStrategy::Straus,
        }
    }
}

impl SelectOptions {
    /// The reference configuration: sequential, naive modpow per entry.
    pub fn naive() -> Self {
        SelectOptions {
            parallelism: 1,
            strategy: SelectStrategy::Naive,
        }
    }
}

impl EncryptedVector {
    /// Wraps pre-built ciphertexts.
    pub fn from_ciphertexts(elements: Vec<Ciphertext>) -> Self {
        EncryptedVector { elements }
    }

    /// The component ciphertexts.
    pub fn elements(&self) -> &[Ciphertext] {
        &self.elements
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` iff the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Homomorphic dot product with a plaintext vector (the paper's `⊙`):
    /// returns `Enc(x · v)`.
    ///
    /// Evaluated as one Straus–Shamir multi-exponentiation — bit-identical
    /// to [`EncryptedVector::dot_naive`], with the squaring chain paid
    /// once instead of once per nonzero component.
    pub fn dot(&self, x: &[BigUint], ctx: &DjContext) -> Result<Ciphertext, PaillierError> {
        if x.len() != self.elements.len() {
            return Err(PaillierError::LengthMismatch {
                left: x.len(),
                right: self.elements.len(),
            });
        }
        let _t = telemetry::global().time(telemetry::Stage::PaillierDot);
        telemetry::global().incr(telemetry::Op::PaillierDot);
        // Tables only for components with nonzero coefficients: 0 ⊗ [v]
        // contributes Enc(0) and is skipped entirely.
        let nonzero: Vec<(&Ciphertext, &BigUint)> = self
            .elements
            .iter()
            .zip(x.iter())
            .filter(|(_, xi)| !xi.is_zero())
            .collect();
        record_dot_ops(nonzero.len());
        if nonzero.is_empty() {
            return Ok(ctx.one_ciphertext());
        }
        let tables: Vec<MontWindowTable> = nonzero
            .iter()
            .map(|(ci, _)| MontWindowTable::build_default(ctx.mont(), ci.value()))
            .collect();
        let table_refs: Vec<&MontWindowTable> = tables.iter().collect();
        let exps: Vec<&BigUint> = nonzero.iter().map(|(_, xi)| *xi).collect();
        let value = multi_modpow(ctx.mont(), &table_refs, &exps);
        Ok(Ciphertext::from_parts(value, ctx.level()))
    }

    /// The reference dot product: one `scalar_mul` + `add` per nonzero
    /// component. Kept as the oracle the optimized path is proven
    /// bit-identical against.
    pub fn dot_naive(&self, x: &[BigUint], ctx: &DjContext) -> Result<Ciphertext, PaillierError> {
        if x.len() != self.elements.len() {
            return Err(PaillierError::LengthMismatch {
                left: x.len(),
                right: self.elements.len(),
            });
        }
        let _t = telemetry::global().time(telemetry::Stage::PaillierDot);
        telemetry::global().incr(telemetry::Op::PaillierDot);
        let nonzero = x.iter().filter(|xi| !xi.is_zero()).count();
        telemetry::global().incr_by(telemetry::Op::PaillierDotElements, nonzero as u64);
        let mut acc = ctx.one_ciphertext();
        for (xi, ci) in x.iter().zip(&self.elements) {
            if xi.is_zero() {
                continue;
            }
            acc = ctx.add(&acc, &ctx.scalar_mul(xi, ci));
        }
        Ok(acc)
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self, ctx: &DjContext) -> usize {
        self.elements.len() * ctx.public_key().ciphertext_bytes(ctx.level())
    }
}

/// Op accounting for one multi-exponentiated dot: keeps the homomorphic
/// op counters comparable with the naive path (one scalar-mul and one
/// accumulator add per nonzero entry).
fn record_dot_ops(nonzero: usize) {
    if nonzero > 0 {
        telemetry::global().incr_by(telemetry::Op::PaillierScalarMul, nonzero as u64);
        telemetry::global().incr_by(telemetry::Op::PaillierAdd, nonzero as u64);
        telemetry::global().incr_by(telemetry::Op::PaillierDotElements, nonzero as u64);
    }
}

/// Theorem 3.1: homomorphic matrix product `A ⨂ [v]`, tunable.
///
/// `columns[j]` is the answer vector `a_j` (length `m`, entries `< N^s`);
/// `[v]` is the encrypted indicator with `columns.len()` components.
/// Returns the encrypted selected column `[a_i]` (length `m`).
///
/// Columns may have differing lengths; shorter columns are implicitly
/// zero-padded to the longest (`m`), mirroring the paper's padding of
/// answers to a common `m`.
///
/// With [`SelectStrategy::Straus`], per-base window tables are built once
/// and hoisted across all `m` rows, and rows are evaluated on up to
/// `opts.parallelism` worker threads. Results are bit-identical to the
/// naive strategy in either case.
pub fn matrix_select_with(
    columns: &[Vec<BigUint>],
    v: &EncryptedVector,
    ctx: &DjContext,
    opts: &SelectOptions,
) -> Result<EncryptedVector, PaillierError> {
    if columns.len() != v.len() {
        return Err(PaillierError::LengthMismatch {
            left: columns.len(),
            right: v.len(),
        });
    }
    let m = columns.iter().map(|c| c.len()).max().unwrap_or(0);
    // One span for the whole A ⨂ [v] batch; per-dot spans would swamp
    // the per-segment cap, and op counts already ride on the segment.
    let sp = telemetry::trace::span(telemetry::trace::SpanName::PaillierDot);
    sp.attr(telemetry::trace::AttrKey::Ciphertexts, (m * v.len()) as u64);
    let zero = BigUint::zero();

    if matches!(opts.strategy, SelectStrategy::Naive) {
        let mut rows = Vec::with_capacity(m);
        for row in 0..m {
            let x: Vec<BigUint> = columns
                .iter()
                .map(|col| col.get(row).unwrap_or(&zero).clone())
                .collect();
            rows.push(v.dot_naive(&x, ctx)?);
        }
        return Ok(EncryptedVector { elements: rows });
    }

    // Straus: the bases are the same for every row — build each base's
    // window table once and share it across the whole δ′×m matrix.
    let tables: Vec<MontWindowTable> = v
        .elements
        .iter()
        .map(|c| MontWindowTable::build_default(ctx.mont(), c.value()))
        .collect();

    let eval_row = |row: usize| -> Ciphertext {
        let _t = telemetry::global().time(telemetry::Stage::PaillierDot);
        telemetry::global().incr(telemetry::Op::PaillierDot);
        let mut table_refs = Vec::with_capacity(columns.len());
        let mut exps = Vec::with_capacity(columns.len());
        for (table, col) in tables.iter().zip(columns) {
            let xi = col.get(row).unwrap_or(&zero);
            if xi.is_zero() {
                continue;
            }
            table_refs.push(table);
            exps.push(xi);
        }
        record_dot_ops(exps.len());
        let value = multi_modpow(ctx.mont(), &table_refs, &exps);
        Ciphertext::from_parts(value, ctx.level())
    };

    let threads = opts.parallelism.max(1).min(m.max(1));
    let rows: Vec<Ciphertext> = if threads <= 1 || m < 2 {
        (0..m).map(eval_row).collect()
    } else {
        // Rows are independent; chunk them across the worker budget.
        // Telemetry rides the global registry (thread-safe); the batch
        // trace span stays on the caller thread, matching the existing
        // candidate-eval parallelism.
        let chunk = m.div_ceil(threads);
        let row_ids: Vec<usize> = (0..m).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = row_ids
                .chunks(chunk)
                .map(|ids| {
                    let eval_row = &eval_row;
                    scope.spawn(move || ids.iter().map(|&r| eval_row(r)).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("selection worker panicked"))
                .collect()
        })
    };
    Ok(EncryptedVector { elements: rows })
}

/// Theorem 3.1 with default options (Straus tables, sequential rows).
pub fn matrix_select(
    columns: &[Vec<BigUint>],
    v: &EncryptedVector,
    ctx: &DjContext,
) -> Result<EncryptedVector, PaillierError> {
    matrix_select_with(columns, v, ctx, &SelectOptions::default())
}

/// Decrypts a vector element-wise.
pub fn decrypt_vector(v: &EncryptedVector, ctx: &DjContext, sk: &SecretKey) -> Vec<BigUint> {
    v.elements.iter().map(|c| ctx.decrypt(c, sk)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encryptor::{Encryptor, FreshEncryptor};
    use crate::keys::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (DjContext, SecretKey, FreshEncryptor) {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let enc = FreshEncryptor::with_rng(ctx.clone(), rng);
        (ctx, sk, enc)
    }

    fn nums(vals: &[u64]) -> Vec<BigUint> {
        vals.iter().map(|&v| BigUint::from(v)).collect()
    }

    #[test]
    fn encrypt_decrypt_vector_roundtrip() {
        let (ctx, sk, enc) = setup();
        let vals = nums(&[0, 1, 99, 12345]);
        let v = enc.encrypt_vector(&vals).unwrap();
        assert_eq!(decrypt_vector(&v, &ctx, &sk), vals);
    }

    #[test]
    fn dot_product_matches_plain() {
        let (ctx, sk, enc) = setup();
        let v = nums(&[3, 0, 7]);
        let x = nums(&[2, 100, 5]);
        let ev = enc.encrypt_vector(&v).unwrap();
        let dot = ev.dot(&x, &ctx).unwrap();
        assert_eq!(ctx.decrypt(&dot, &sk), BigUint::from(3 * 2 + 7 * 5u64));
    }

    #[test]
    fn straus_dot_is_bit_identical_to_naive() {
        let (ctx, _, enc) = setup();
        let v = nums(&[3, 0, 7, 11, 255]);
        let x = nums(&[2, 100, 5, 0, 1_000_000]);
        let ev = enc.encrypt_vector(&v).unwrap();
        let fast = ev.dot(&x, &ctx).unwrap();
        let naive = ev.dot_naive(&x, &ctx).unwrap();
        assert_eq!(fast, naive, "same integers, same product, same bits");
    }

    #[test]
    fn dot_length_mismatch_rejected() {
        let (ctx, _, enc) = setup();
        let ev = enc.encrypt_vector(&nums(&[1, 2])).unwrap();
        assert!(matches!(
            ev.dot(&nums(&[1]), &ctx),
            Err(PaillierError::LengthMismatch { .. })
        ));
        assert!(matches!(
            ev.dot_naive(&nums(&[1]), &ctx),
            Err(PaillierError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn all_zero_dot_is_identity() {
        let (ctx, sk, enc) = setup();
        let ev = enc.encrypt_vector(&nums(&[5, 6])).unwrap();
        let dot = ev.dot(&nums(&[0, 0]), &ctx).unwrap();
        assert_eq!(ctx.decrypt(&dot, &sk), BigUint::zero());
    }

    #[test]
    fn indicator_selects_element() {
        let (ctx, sk, enc) = setup();
        let x = nums(&[10, 20, 30, 40]);
        for pos in 0..4 {
            let ind = enc.encrypt_indicator(4, pos).unwrap();
            let sel = ind.dot(&x, &ctx).unwrap();
            assert_eq!(ctx.decrypt(&sel, &sk), x[pos]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indicator_position_out_of_range() {
        let (_, _, enc) = setup();
        let _ = enc.encrypt_indicator(3, 3);
    }

    #[test]
    fn matrix_select_returns_chosen_column() {
        let (ctx, sk, enc) = setup();
        let columns = vec![nums(&[1, 2, 3]), nums(&[4, 5, 6]), nums(&[7, 8, 9])];
        for pick in 0..3 {
            let ind = enc.encrypt_indicator(3, pick).unwrap();
            let sel = matrix_select(&columns, &ind, &ctx).unwrap();
            assert_eq!(decrypt_vector(&sel, &ctx, &sk), columns[pick]);
        }
    }

    #[test]
    fn strategies_and_parallelism_are_bit_identical() {
        let (ctx, _, enc) = setup();
        let columns = vec![
            nums(&[1, 2, 3, 400, 5]),
            nums(&[6, 0, 8, 9, 10]),
            nums(&[11, 12, 0, 14, 15]),
            nums(&[16, 17, 18, 19, 1 << 30]),
        ];
        let ind = enc.encrypt_indicator(4, 2).unwrap();
        let naive = matrix_select_with(&columns, &ind, &ctx, &SelectOptions::naive()).unwrap();
        for parallelism in [1, 2, 4, 16] {
            let opts = SelectOptions {
                parallelism,
                strategy: SelectStrategy::Straus,
            };
            let fast = matrix_select_with(&columns, &ind, &ctx, &opts).unwrap();
            assert_eq!(fast.len(), naive.len());
            for (a, b) in fast.elements().iter().zip(naive.elements()) {
                assert_eq!(a, b, "parallel Straus must be bit-identical to naive");
            }
        }
    }

    #[test]
    fn matrix_select_pads_ragged_columns() {
        let (ctx, sk, enc) = setup();
        let columns = vec![nums(&[1, 2, 3]), nums(&[9])];
        let ind = enc.encrypt_indicator(2, 1).unwrap();
        let sel = matrix_select(&columns, &ind, &ctx).unwrap();
        assert_eq!(decrypt_vector(&sel, &ctx, &sk), nums(&[9, 0, 0]));
    }

    #[test]
    fn matrix_select_dimension_mismatch() {
        let (ctx, _, enc) = setup();
        let ind = enc.encrypt_indicator(2, 0).unwrap();
        let columns = vec![nums(&[1])];
        assert!(matrix_select(&columns, &ind, &ctx).is_err());
    }

    #[test]
    fn matrix_select_empty_matrix() {
        let (ctx, _, enc) = setup();
        let ind = enc.encrypt_indicator(2, 0).unwrap();
        let columns = vec![vec![], vec![]];
        let sel = matrix_select(&columns, &ind, &ctx).unwrap();
        assert!(sel.is_empty());
    }

    #[test]
    fn byte_len_matches_key() {
        let (ctx, _, enc) = setup();
        let v = enc.encrypt_vector(&nums(&[1, 2, 3])).unwrap();
        // 128-bit key, s=1 ⇒ 32 bytes per ciphertext.
        assert_eq!(v.byte_len(&ctx), 3 * 32);
    }
}
