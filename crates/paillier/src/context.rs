//! The ε_s encryption/decryption context and the homomorphisms of §3.1.
//!
//! `DjContext::new(&pk, s)` precomputes the powers `N^j`, a Montgomery
//! context for the ciphertext ring `Z_{N^{s+1}}`, and the factorial
//! inverses needed by both the binomial expansion of `(1+N)^m` and the
//! Damgård–Jurik logarithm extraction used in decryption.

use rand::Rng;

use ppgnn_bigint::{BigUint, MontgomeryCtx, UniformBigUint};
use ppgnn_telemetry as telemetry;

use crate::error::PaillierError;
use crate::keys::{PublicKey, SecretKey};

/// A ciphertext of ε_s: an element of `Z^*_{N^{s+1}}` tagged with its level.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Ciphertext {
    value: BigUint,
    s: usize,
}

impl Ciphertext {
    /// The raw ring element.
    pub fn value(&self) -> &BigUint {
        &self.value
    }

    /// The ε_s level this ciphertext belongs to.
    pub fn level(&self) -> usize {
        self.s
    }

    /// Reconstructs a ciphertext from its raw parts (deserialization).
    pub fn from_parts(value: BigUint, s: usize) -> Self {
        Ciphertext { value, s }
    }

    /// Serialized size in bytes under the given key.
    pub fn byte_len(&self, pk: &PublicKey) -> usize {
        pk.ciphertext_bytes(self.s)
    }

    /// Structural validity of an untrusted ciphertext under `pk`.
    ///
    /// A well-formed ε_s ciphertext is a **unit** of `Z^*_{N^{s+1}}`:
    /// strictly inside `[1, N^{s+1})` and coprime to the modulus. Every
    /// honest encryption satisfies this by construction; bytes arriving
    /// off the network do not, so a server must check before feeding
    /// them into modular exponentiation (a zero or out-of-range value
    /// silently degrades the private selection of Theorem 3.1, and a
    /// non-unit would leak a factor of `N` on decryption).
    pub fn validate(&self, pk: &PublicKey) -> Result<(), PaillierError> {
        let modulus = pk.n().pow(self.s as u32 + 1);
        self.validate_in(pk.n(), &modulus)
    }

    /// [`Ciphertext::validate`] with the moduli precomputed — the batch
    /// form for validating whole vectors without re-deriving `N^{s+1}`
    /// per element.
    pub fn validate_in(
        &self,
        n: &BigUint,
        ciphertext_modulus: &BigUint,
    ) -> Result<(), PaillierError> {
        if self.value.is_zero() || &self.value >= ciphertext_modulus || !self.value.gcd(n).is_one()
        {
            return Err(PaillierError::MalformedCiphertext);
        }
        Ok(())
    }

    /// Reinterprets this ε_s ciphertext as an ε_{s+1} *plaintext*
    /// (an element of `Z_{N^{s+1}}`). This is the layering trick of §6:
    /// the second selection phase of PPGNN-OPT encrypts ε₁ ciphertexts
    /// under ε₂.
    pub fn as_plaintext(&self) -> BigUint {
        self.value.clone()
    }
}

/// Encryption/homomorphic-operation context for a fixed `(pk, s)`.
#[derive(Debug, Clone)]
pub struct DjContext {
    pk: PublicKey,
    s: usize,
    /// `N^j` for `j = 0..=s+1` (so `n_pow[s]` is the plaintext modulus and
    /// `n_pow[s+1]` the ciphertext modulus).
    n_pow: Vec<BigUint>,
    /// Montgomery context modulo `N^{s+1}`.
    mont: MontgomeryCtx,
    /// `inv(k!) mod N^{s+1}` for `k = 0..=s`.
    fact_inv: Vec<BigUint>,
}

impl DjContext {
    /// Builds a context for level `s ≥ 1`.
    ///
    /// # Panics
    /// Panics if `s == 0`.
    pub fn new(pk: &PublicKey, s: usize) -> Self {
        assert!(s >= 1, "Damgård–Jurik level s must be >= 1");
        let n = pk.n();
        let mut n_pow = Vec::with_capacity(s + 2);
        n_pow.push(BigUint::one());
        for j in 1..=s + 1 {
            let prev: &BigUint = &n_pow[j - 1];
            n_pow.push(prev * n);
        }
        let mont = MontgomeryCtx::new(n_pow[s + 1].clone());
        let modulus = n_pow[s + 1].clone();
        let mut fact_inv = Vec::with_capacity(s + 1);
        let mut fact = BigUint::one();
        fact_inv.push(BigUint::one()); // 0! = 1
        for k in 1..=s {
            fact = fact.mul_limb(k as u64);
            fact_inv.push(
                fact.mod_inverse(&modulus)
                    .expect("k! is coprime to N for k << p, q"),
            );
        }
        DjContext {
            pk: pk.clone(),
            s,
            n_pow,
            mont,
            fact_inv,
        }
    }

    /// The public key this context encrypts under.
    pub fn public_key(&self) -> &PublicKey {
        &self.pk
    }

    /// The level `s`.
    pub fn level(&self) -> usize {
        self.s
    }

    /// The plaintext modulus `N^s`.
    pub fn plaintext_modulus(&self) -> &BigUint {
        &self.n_pow[self.s]
    }

    /// The ciphertext modulus `N^{s+1}`.
    pub fn ciphertext_modulus(&self) -> &BigUint {
        &self.n_pow[self.s + 1]
    }

    /// The Montgomery context over the ciphertext ring `Z_{N^{s+1}}` —
    /// shared with the vector/matrix layer so multi-exponentiation can
    /// hoist window tables across rows.
    pub(crate) fn mont(&self) -> &MontgomeryCtx {
        &self.mont
    }

    /// `(1+N)^m mod N^{s+1}` by the binomial theorem: only the first
    /// `s+1` terms survive because `N^{s+1} ≡ 0`.
    fn one_plus_n_pow(&self, m: &BigUint) -> BigUint {
        let modulus = self.ciphertext_modulus();
        let mut acc = BigUint::one();
        // numerator accumulates m·(m−1)·…·(m−k+1) mod N^{s+1}; it becomes
        // exactly zero when m < k, matching C(m, k) = 0.
        let mut numerator = BigUint::one();
        for k in 1..=self.s {
            let factor = match m.checked_sub(&BigUint::from((k - 1) as u64)) {
                Some(f) => f,
                None => break, // m < k-1 ⇒ all further binomials are zero
            };
            numerator = numerator.mod_mul(&factor, modulus);
            if numerator.is_zero() {
                break;
            }
            let term = numerator
                .mod_mul(&self.fact_inv[k], modulus)
                .mod_mul(&self.n_pow[k], modulus);
            acc = acc.mod_add(&term, modulus);
        }
        acc
    }

    /// Draws a random `r ∈ Z^*_N`.
    pub(crate) fn random_unit<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        let n = self.pk.n();
        loop {
            let r = rng.gen_biguint_range(&BigUint::one(), n);
            if r.gcd(n).is_one() {
                return r;
            }
        }
    }

    /// Rejects plaintexts outside `Z_{N^s}`.
    pub(crate) fn check_plaintext_range(&self, m: &BigUint) -> Result<(), PaillierError> {
        if m >= self.plaintext_modulus() {
            return Err(PaillierError::PlaintextOutOfRange {
                plaintext_bits: m.bit_length(),
                capacity_bits: self.plaintext_modulus().bit_length(),
            });
        }
        Ok(())
    }

    /// Fresh-randomness encryption `c = (1+N)^m · r^{N^s} mod N^{s+1}`,
    /// drawing `r` from `rng`. Records the `paillier-encrypt` stage/op.
    pub(crate) fn encrypt_core<R: Rng + ?Sized>(
        &self,
        m: &BigUint,
        rng: &mut R,
    ) -> Result<Ciphertext, PaillierError> {
        self.check_plaintext_range(m)?;
        let _t = telemetry::global().time(telemetry::Stage::PaillierEncrypt);
        telemetry::global().incr(telemetry::Op::PaillierEncrypt);
        let r = self.random_unit(rng);
        Ok(self.encrypt_with_randomness_core(m, &r))
    }

    /// Deterministic encryption under caller-chosen `r ∈ Z^*_N`. Not
    /// telemetered: this is the reference/test path, never the hot one.
    pub(crate) fn encrypt_with_randomness_core(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        let gm = self.one_plus_n_pow(m);
        let rn = self.pow_n_s(r);
        Ciphertext {
            value: gm.mod_mul(&rn, self.ciphertext_modulus()),
            s: self.s,
        }
    }

    /// The fast online step: one binomial + one mulmod, given the
    /// precomputed randomizer `rn = r^{N^s} mod N^{s+1}`. Records the
    /// `paillier-encrypt` stage/op.
    pub(crate) fn encrypt_with_randomizer_core(
        &self,
        m: &BigUint,
        rn: &BigUint,
    ) -> Result<Ciphertext, PaillierError> {
        self.check_plaintext_range(m)?;
        let _t = telemetry::global().time(telemetry::Stage::PaillierEncrypt);
        telemetry::global().incr(telemetry::Op::PaillierEncrypt);
        let gm = self.one_plus_n_pow(m);
        Ok(Ciphertext {
            value: gm.mod_mul(rn, self.ciphertext_modulus()),
            s: self.s,
        })
    }

    /// The randomizer exponentiation `r^{N^s} mod N^{s+1}` — the
    /// plaintext-independent (pre-computable) half of an encryption.
    pub fn pow_n_s(&self, r: &BigUint) -> BigUint {
        self.mont.modpow(r, &self.n_pow[self.s])
    }

    /// Decrypts a ciphertext with the matching secret key.
    ///
    /// # Panics
    /// Panics if the ciphertext's level differs from the context's.
    pub fn decrypt(&self, c: &Ciphertext, sk: &SecretKey) -> BigUint {
        assert_eq!(c.s, self.s, "ciphertext level mismatch");
        let _t = telemetry::global().time(telemetry::Stage::PaillierDecrypt);
        telemetry::global().incr(telemetry::Op::PaillierDecrypt);
        // c^λ = (1+N)^{λ·m mod N^s} in Z_{N^{s+1}}.
        let c_lambda = self.mont.modpow(&c.value, sk.lambda());
        let x = self.dj_log(&c_lambda); // λ·m mod N^s
        let lambda_inv = sk
            .lambda()
            .mod_inverse(self.plaintext_modulus())
            .expect("gcd(lambda, N) = 1 enforced at keygen");
        x.mod_mul(&lambda_inv, self.plaintext_modulus())
    }

    /// Public wrapper over the Damgård–Jurik logarithm for the
    /// CRT-accelerated [`crate::Decryptor`].
    pub(crate) fn dj_log_public(&self, a: &BigUint) -> BigUint {
        self.dj_log(a)
    }

    /// Damgård–Jurik logarithm: given `a = (1+N)^x mod N^{s+1}`, recovers
    /// `x mod N^s` (the paper's `L`-function generalized to `s > 1`).
    fn dj_log(&self, a: &BigUint) -> BigUint {
        let n = self.pk.n();
        let mut i = BigUint::zero();
        for j in 1..=self.s {
            let nj = &self.n_pow[j];
            let nj1 = &self.n_pow[j + 1];
            // t1 = L(a mod N^{j+1}) = (a mod N^{j+1} − 1) / N, an element of Z_{N^j}.
            let reduced = a % nj1;
            debug_assert!(!reduced.is_zero(), "ciphertext ≡ 0 is malformed");
            let mut t1 = (&reduced - &BigUint::one()) / n;
            let mut t2 = i.clone();
            let mut i_run = i.clone();
            for k in 2..=j {
                // i_run := i_run − 1 (mod N^j)
                i_run = if i_run.is_zero() {
                    nj - &BigUint::one()
                } else {
                    &i_run - &BigUint::one()
                };
                t2 = t2.mod_mul(&i_run, nj);
                // t1 := t1 − t2 · N^{k−1} / k!  (mod N^j)
                let term = t2
                    .mod_mul(&self.n_pow[k - 1], nj)
                    .mod_mul(&(&self.fact_inv[k] % nj), nj);
                t1 = (&t1 % nj).mod_sub(&term, nj);
            }
            i = &t1 % nj;
        }
        i
    }

    /// Homomorphic addition (the paper's Eqn 2): `Enc(x₁) ⊕ Enc(x₂) =
    /// Enc(x₁ + x₂)` via ciphertext multiplication.
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        assert_eq!(c1.s, self.s, "ciphertext level mismatch");
        assert_eq!(c2.s, self.s, "ciphertext level mismatch");
        telemetry::global().incr(telemetry::Op::PaillierAdd);
        Ciphertext {
            value: c1.value.mod_mul(&c2.value, self.ciphertext_modulus()),
            s: self.s,
        }
    }

    /// Homomorphic plaintext multiplication (Eqn 3): `x ⊗ Enc(y) =
    /// Enc(x·y)` via exponentiation.
    pub fn scalar_mul(&self, x: &BigUint, c: &Ciphertext) -> Ciphertext {
        assert_eq!(c.s, self.s, "ciphertext level mismatch");
        telemetry::global().incr(telemetry::Op::PaillierScalarMul);
        Ciphertext {
            value: self.mont.modpow(&c.value, x),
            s: self.s,
        }
    }

    /// Homomorphic negation: `⊖Enc(x) = Enc(N^s − x)`.
    pub fn neg(&self, c: &Ciphertext) -> Ciphertext {
        let minus_one = self.plaintext_modulus() - &BigUint::one();
        self.scalar_mul(&minus_one, c)
    }

    /// Homomorphic subtraction: `Enc(x₁) ⊖ Enc(x₂) = Enc(x₁ − x₂ mod N^s)`.
    pub fn sub(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        self.add(c1, &self.neg(c2))
    }

    /// Re-randomizes a ciphertext (multiplies by a fresh `Enc(0)`),
    /// leaving the plaintext unchanged.
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        let r = self.random_unit(rng);
        let rn = self.mont.modpow(&r, &self.n_pow[self.s]);
        Ciphertext {
            value: c.value.mod_mul(&rn, self.ciphertext_modulus()),
            s: self.s,
        }
    }

    /// An encryption of zero with randomness 1 — the multiplicative
    /// identity of the ⊕ operation. Deterministic, so **not** semantically
    /// secure; used only as an accumulator seed.
    pub fn one_ciphertext(&self) -> Ciphertext {
        Ciphertext {
            value: BigUint::one(),
            s: self.s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup(s: usize) -> (DjContext, SecretKey, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(42 + s as u64);
        let (pk, sk) = generate_keypair(128, &mut rng);
        (DjContext::new(&pk, s), sk, rng)
    }

    /// Fresh-randomness encryption for tests, via the crate-internal core
    /// (the public path is the `Encryptor` trait, covered in encryptor.rs).
    trait TestEncrypt {
        fn enc<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext;
    }
    impl TestEncrypt for DjContext {
        fn enc<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext {
            self.encrypt_core(m, rng).expect("plaintext out of range")
        }
    }

    #[test]
    fn roundtrip_s1() {
        let (ctx, sk, mut rng) = setup(1);
        for m in [0u64, 1, 2, 42, u64::MAX] {
            let m = BigUint::from(m);
            let c = ctx.enc(&m, &mut rng);
            assert_eq!(ctx.decrypt(&c, &sk), m);
        }
    }

    #[test]
    fn roundtrip_s2() {
        let (ctx, sk, mut rng) = setup(2);
        // Plaintexts larger than N (but < N^2) must roundtrip at s=2.
        let big = ctx.public_key().n() + &BigUint::from(12345u64);
        for m in [BigUint::zero(), BigUint::one(), big] {
            let c = ctx.enc(&m, &mut rng);
            assert_eq!(ctx.decrypt(&c, &sk), m);
        }
    }

    #[test]
    fn roundtrip_s3() {
        let (ctx, sk, mut rng) = setup(3);
        let m = ctx.public_key().n().pow(2).mul_limb(3);
        let c = ctx.enc(&m, &mut rng);
        assert_eq!(ctx.decrypt(&c, &sk), m);
    }

    #[test]
    fn roundtrip_max_plaintext() {
        let (ctx, sk, mut rng) = setup(1);
        let m = ctx.plaintext_modulus() - &BigUint::one();
        let c = ctx.enc(&m, &mut rng);
        assert_eq!(ctx.decrypt(&c, &sk), m);
    }

    #[test]
    fn out_of_range_plaintext_rejected() {
        let (ctx, _, mut rng) = setup(1);
        let m = ctx.plaintext_modulus().clone();
        assert!(matches!(
            ctx.encrypt_core(&m, &mut rng),
            Err(PaillierError::PlaintextOutOfRange { .. })
        ));
    }

    #[test]
    fn probabilistic_encryption() {
        let (ctx, _, mut rng) = setup(1);
        let m = BigUint::from(7u64);
        let c1 = ctx.enc(&m, &mut rng);
        let c2 = ctx.enc(&m, &mut rng);
        assert_ne!(c1, c2, "same plaintext must yield different ciphertexts");
    }

    #[test]
    fn homomorphic_addition() {
        let (ctx, sk, mut rng) = setup(1);
        let a = BigUint::from(1234u64);
        let b = BigUint::from(8766u64);
        let c = ctx.add(&ctx.enc(&a, &mut rng), &ctx.enc(&b, &mut rng));
        assert_eq!(ctx.decrypt(&c, &sk), BigUint::from(10000u64));
    }

    #[test]
    fn homomorphic_addition_wraps_mod_ns() {
        let (ctx, sk, mut rng) = setup(1);
        let a = ctx.plaintext_modulus() - &BigUint::one();
        let b = BigUint::from(2u64);
        let c = ctx.add(&ctx.enc(&a, &mut rng), &ctx.enc(&b, &mut rng));
        assert_eq!(ctx.decrypt(&c, &sk), BigUint::one());
    }

    #[test]
    fn homomorphic_scalar_mul() {
        let (ctx, sk, mut rng) = setup(1);
        let m = BigUint::from(111u64);
        let k = BigUint::from(9u64);
        let c = ctx.scalar_mul(&k, &ctx.enc(&m, &mut rng));
        assert_eq!(ctx.decrypt(&c, &sk), BigUint::from(999u64));
    }

    #[test]
    fn scalar_mul_by_zero_gives_zero() {
        let (ctx, sk, mut rng) = setup(1);
        let c = ctx.scalar_mul(&BigUint::zero(), &ctx.enc(&BigUint::from(5u64), &mut rng));
        assert_eq!(ctx.decrypt(&c, &sk), BigUint::zero());
    }

    #[test]
    fn homomorphic_sub_and_neg() {
        let (ctx, sk, mut rng) = setup(1);
        let a = ctx.enc(&BigUint::from(50u64), &mut rng);
        let b = ctx.enc(&BigUint::from(8u64), &mut rng);
        assert_eq!(ctx.decrypt(&ctx.sub(&a, &b), &sk), BigUint::from(42u64));
        let neg = ctx.neg(&ctx.enc(&BigUint::one(), &mut rng));
        assert_eq!(
            ctx.decrypt(&neg, &sk),
            ctx.plaintext_modulus() - &BigUint::one()
        );
    }

    #[test]
    fn rerandomize_preserves_plaintext() {
        let (ctx, sk, mut rng) = setup(1);
        let m = BigUint::from(77u64);
        let c = ctx.enc(&m, &mut rng);
        let c2 = ctx.rerandomize(&c, &mut rng);
        assert_ne!(c, c2);
        assert_eq!(ctx.decrypt(&c2, &sk), m);
    }

    #[test]
    fn layered_encryption_roundtrip() {
        // ε₁ ciphertext as ε₂ plaintext: Dec₂ then Dec₁ recovers m (§6).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let ctx2 = DjContext::new(&pk, 2);
        let m = BigUint::from(123456u64);
        let inner = ctx1.enc(&m, &mut rng);
        let outer = ctx2.enc(&inner.as_plaintext(), &mut rng);
        let recovered_inner = ctx2.decrypt(&outer, &sk);
        let recovered = ctx1.decrypt(&Ciphertext::from_parts(recovered_inner, 1), &sk);
        assert_eq!(recovered, m);
    }

    #[test]
    fn dot_of_add_and_scalar_matches_affine() {
        // k1*a + k2*b homomorphically.
        let (ctx, sk, mut rng) = setup(1);
        let (a, b) = (BigUint::from(13u64), BigUint::from(29u64));
        let (k1, k2) = (BigUint::from(3u64), BigUint::from(5u64));
        let ca = ctx.enc(&a, &mut rng);
        let cb = ctx.enc(&b, &mut rng);
        let combo = ctx.add(&ctx.scalar_mul(&k1, &ca), &ctx.scalar_mul(&k2, &cb));
        assert_eq!(ctx.decrypt(&combo, &sk), BigUint::from(3 * 13 + 5 * 29u64));
    }

    #[test]
    fn validate_accepts_honest_ciphertexts() {
        let (ctx, _, mut rng) = setup(1);
        let pk = ctx.public_key().clone();
        for m in [0u64, 1, 42, u64::MAX] {
            let c = ctx.enc(&BigUint::from(m), &mut rng);
            assert!(c.validate(&pk).is_ok());
        }
        // ε₂ ciphertexts validate against N³.
        let (ctx2, _, mut rng2) = setup(2);
        let c2 = ctx2.enc(&BigUint::from(7u64), &mut rng2);
        assert!(c2.validate(ctx2.public_key()).is_ok());
    }

    #[test]
    fn validate_rejects_zero_oversize_and_nonunit() {
        let (ctx, _, mut rng) = setup(1);
        let pk = ctx.public_key().clone();
        // Zero is never a unit.
        let zero = Ciphertext::from_parts(BigUint::zero(), 1);
        assert_eq!(zero.validate(&pk), Err(PaillierError::MalformedCiphertext));
        // Values at or past N² are out of the ring.
        let n2 = pk.n().pow(2);
        let at = Ciphertext::from_parts(n2.clone(), 1);
        assert_eq!(at.validate(&pk), Err(PaillierError::MalformedCiphertext));
        let past = Ciphertext::from_parts(&n2 + &BigUint::from(5u64), 1);
        assert_eq!(past.validate(&pk), Err(PaillierError::MalformedCiphertext));
        // A multiple of N shares a factor with the modulus: not a unit.
        let non_unit = Ciphertext::from_parts(pk.n().mul_limb(3), 1);
        assert_eq!(
            non_unit.validate(&pk),
            Err(PaillierError::MalformedCiphertext)
        );
        // An honest ciphertext tagged with the wrong level fails the
        // range check against the smaller ring with overwhelming
        // probability only at higher levels; the level-1 check against
        // N² still accepts it — level agreement is the wire layer's
        // job. What must hold: validation never panics.
        let c = ctx.enc(&BigUint::from(9u64), &mut rng);
        let retagged = Ciphertext::from_parts(c.value().clone(), 2);
        let _ = retagged.validate(&pk);
    }

    #[test]
    #[should_panic(expected = "level mismatch")]
    fn level_mismatch_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (pk, _sk) = generate_keypair(64, &mut rng);
        let ctx1 = DjContext::new(&pk, 1);
        let ctx2 = DjContext::new(&pk, 2);
        let c = ctx1.enc(&BigUint::one(), &mut rng);
        let _ = ctx2.scalar_mul(&BigUint::one(), &c);
    }
}
