//! Pre-computed encryption randomness (legacy, manually-refilled form).
//!
//! The expensive half of an ε_s encryption is `r^{N^s} mod N^{s+1}` — it
//! does not depend on the plaintext. A mobile user (the paper's target
//! scenario: "users' computational power being limited") can therefore
//! pre-compute a pool of randomizers while idle/charging and spend only
//! the cheap binomial `(1+N)^m` plus one modular multiplication per
//! encryption at query time.
//!
//! This module is the original, manually-refilled pool. New code should
//! use [`crate::RandomizerPool`] (background-refilled, shareable across
//! threads) through [`crate::PooledEncryptor`]; the API here is kept one
//! release as deprecated shims.

use rand::Rng;

use ppgnn_bigint::BigUint;
use ppgnn_telemetry as telemetry;

use crate::context::{Ciphertext, DjContext};
use crate::error::PaillierError;

/// A pool of pre-computed `r^{N^s} mod N^{s+1}` randomizers for one
/// `(pk, s)` context.
#[derive(Debug, Clone)]
pub struct RandomnessPool {
    randomizers: Vec<BigUint>,
}

impl RandomnessPool {
    /// Pre-computes `capacity` randomizers (the slow, offline step).
    #[deprecated(
        since = "0.9.0",
        note = "use `RandomizerPool::prefilled` / `RandomizerPool::with_background_refill` instead"
    )]
    pub fn generate<R: Rng + ?Sized>(ctx: &DjContext, capacity: usize, rng: &mut R) -> Self {
        RandomnessPool {
            randomizers: crate::encryptor::generate_randomizers(ctx, capacity, rng),
        }
    }

    /// Remaining pre-computed randomizers.
    pub fn remaining(&self) -> usize {
        self.randomizers.len()
    }

    /// Encrypts using one pooled randomizer (the fast, online step).
    ///
    /// When the pool is exhausted this **degrades to fresh-randomness
    /// encryption** (counted on the `pool-miss` telemetry counter) —
    /// exhaustion is never an error and never a stall on the query path.
    /// Returns [`PaillierError::PlaintextOutOfRange`] when `m ≥ N^s`.
    #[deprecated(
        since = "0.9.0",
        note = "use `PooledEncryptor::encrypt` (backed by `RandomizerPool`) instead"
    )]
    pub fn encrypt(&mut self, ctx: &DjContext, m: &BigUint) -> Result<Ciphertext, PaillierError> {
        match self.randomizers.pop() {
            Some(rn) => {
                telemetry::global().incr(telemetry::Op::PoolHit);
                ctx.encrypt_with_randomizer_core(m, &rn)
            }
            None => {
                telemetry::global().incr(telemetry::Op::PoolMiss);
                ctx.encrypt_core(m, &mut rand::thread_rng())
            }
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // shim-coverage tests for the legacy pool API
mod tests {
    use super::*;
    use crate::keys::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pooled_encryption_decrypts_correctly() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let mut pool = RandomnessPool::generate(&ctx, 5, &mut rng);
        for i in 0..5u64 {
            let m = BigUint::from(i * 1000);
            let c = pool.encrypt(&ctx, &m).unwrap();
            assert_eq!(ctx.decrypt(&c, &sk), m);
        }
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn exhaustion_degrades_to_fresh_randomness() {
        // The pool must never fail or stall when empty: encryption
        // continues with fresh randomness and stays correct.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let (pk, sk) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let mut pool = RandomnessPool::generate(&ctx, 1, &mut rng);
        let m = BigUint::from(31337u64);
        let pooled = pool.encrypt(&ctx, &m).unwrap();
        assert_eq!(pool.remaining(), 0);
        let fresh = pool.encrypt(&ctx, &m).unwrap();
        assert_eq!(ctx.decrypt(&pooled, &sk), m);
        assert_eq!(ctx.decrypt(&fresh, &sk), m);
        assert_ne!(pooled, fresh, "fallback must use fresh randomness");
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (pk, _) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let mut pool = RandomnessPool::generate(&ctx, 3, &mut rng);
        let m = BigUint::from(7u64);
        let c1 = pool.encrypt(&ctx, &m).unwrap();
        let c2 = pool.encrypt(&ctx, &m).unwrap();
        assert_ne!(c1, c2, "distinct randomizers => distinct ciphertexts");
    }

    #[test]
    fn online_phase_is_fast() {
        // The point of the pool: online encryption must beat full
        // encryption by a wide margin.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (pk, _) = generate_keypair(256, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let mut pool = RandomnessPool::generate(&ctx, 50, &mut rng);
        let m = BigUint::from(123u64);

        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            let _ = ctx.encrypt_core(&m, &mut rng);
        }
        let full = t0.elapsed();

        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            let _ = pool.encrypt(&ctx, &m).unwrap();
        }
        let online = t0.elapsed();
        assert!(
            online * 5 < full,
            "online {online:?} should be ≫ 5× faster than full {full:?}"
        );
    }

    #[test]
    fn out_of_range_plaintext_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (pk, _) = generate_keypair(128, &mut rng);
        let ctx = DjContext::new(&pk, 1);
        let mut pool = RandomnessPool::generate(&ctx, 1, &mut rng);
        let too_big = ctx.plaintext_modulus().clone();
        assert!(matches!(
            pool.encrypt(&ctx, &too_big),
            Err(PaillierError::PlaintextOutOfRange { .. })
        ));
    }
}
