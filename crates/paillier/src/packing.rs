//! Plaintext packing: encoding several fixed-width records (POI
//! coordinates / identifiers) into one big integer `< N^s`.
//!
//! §8.2 of the paper: "15 POIs information can be encoded by a big
//! integer in our settings" — 1024-bit `N`, 8 bytes per POI, with a little
//! headroom so the packed value stays strictly below `N`. We reproduce
//! that exactly: each record occupies a fixed 64-bit slot and a pack of
//! `capacity` slots occupies `64·capacity ≤ key_bits − 16` bits, so the
//! value is `< 2^{key_bits−16} < N` (since `N ≥ 2^{key_bits−1}`).

use ppgnn_bigint::BigUint;

use crate::error::PaillierError;

/// Width of one record slot in bits (8 bytes per POI, as in the paper).
pub const SLOT_BITS: usize = 64;

/// Safety margin subtracted from the key size so packed integers stay
/// strictly below `N`.
pub const HEADROOM_BITS: usize = 16;

/// A fixed-slot packer for `u64` records into plaintexts `< N^s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packer {
    /// Records per packed integer.
    capacity: usize,
}

impl Packer {
    /// Creates a packer for an ε_s plaintext space with `key_bits`-bit `N`.
    ///
    /// # Panics
    /// Panics if the plaintext space cannot hold even one slot.
    pub fn new(key_bits: usize, s: usize) -> Self {
        let usable = (key_bits * s).saturating_sub(HEADROOM_BITS);
        let capacity = usable / SLOT_BITS;
        assert!(
            capacity >= 1,
            "key of {key_bits} bits cannot hold one {SLOT_BITS}-bit slot"
        );
        Packer { capacity }
    }

    /// Records per packed integer (the paper's "15 POIs per big integer"
    /// at 1024-bit keys and s = 1).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of packed integers needed to hold `count` records
    /// (the paper's `m`, for one answer of `k` POIs: `m = ⌈k/capacity⌉·x`).
    pub fn packed_len(&self, count: usize) -> usize {
        count.div_ceil(self.capacity.max(1)).max(1)
    }

    /// Packs records into integers; the final integer is zero-padded
    /// (the paper pads answers with 0's to the common length `m`).
    pub fn pack(&self, records: &[u64]) -> Vec<BigUint> {
        if records.is_empty() {
            return vec![BigUint::zero()];
        }
        records
            .chunks(self.capacity)
            .map(|chunk| {
                let mut acc = BigUint::zero();
                for (slot, &rec) in chunk.iter().enumerate() {
                    acc = &acc + &BigUint::from(rec).shl_bits(slot * SLOT_BITS);
                }
                acc
            })
            .collect()
    }

    /// Unpacks `count` records from packed integers.
    ///
    /// Returns an error if any packed integer is wider than its slots
    /// allow (indicating corruption or a key mismatch).
    pub fn unpack(&self, packed: &[BigUint], count: usize) -> Result<Vec<u64>, PaillierError> {
        let mut out = Vec::with_capacity(count);
        for p in packed {
            if p.bit_length() > self.capacity * SLOT_BITS {
                return Err(PaillierError::RecordTooWide {
                    bits: p.bit_length(),
                    width_bits: self.capacity * SLOT_BITS,
                });
            }
            for slot in 0..self.capacity {
                if out.len() == count {
                    return Ok(out);
                }
                let rec = p
                    .shr_bits(slot * SLOT_BITS)
                    .limbs()
                    .first()
                    .copied()
                    .unwrap_or(0);
                out.push(rec);
            }
        }
        if out.len() < count {
            // Missing integers mean implicit zero padding.
            out.resize(count, 0);
        }
        Ok(out)
    }
}

/// Encodes an `(x, y)` pair of `u32` coordinates into one record slot.
pub fn encode_point(x: u32, y: u32) -> u64 {
    ((x as u64) << 32) | y as u64
}

/// Decodes a record slot back into `(x, y)`.
pub fn decode_point(rec: u64) -> (u32, u32) {
    ((rec >> 32) as u32, rec as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_capacity_at_1024_bits() {
        // (1024 - 16) / 64 = 15 POIs per integer, as §8.2 reports.
        assert_eq!(Packer::new(1024, 1).capacity(), 15);
    }

    #[test]
    fn capacity_scales_with_level() {
        assert_eq!(Packer::new(1024, 2).capacity(), (2048 - 16) / 64);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let p = Packer::new(256, 1); // capacity 3
        assert_eq!(p.capacity(), 3);
        let recs = [1u64, u64::MAX, 0, 42, 7];
        let packed = p.pack(&recs);
        assert_eq!(packed.len(), 2);
        assert_eq!(p.unpack(&packed, recs.len()).unwrap(), recs);
    }

    #[test]
    fn empty_records_pack_to_zero() {
        let p = Packer::new(256, 1);
        let packed = p.pack(&[]);
        assert_eq!(packed, vec![BigUint::zero()]);
        assert_eq!(p.unpack(&packed, 0).unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn unpack_fewer_integers_pads_zero() {
        let p = Packer::new(256, 1);
        let packed = p.pack(&[5]);
        assert_eq!(p.unpack(&packed, 4).unwrap(), vec![5, 0, 0, 0]);
    }

    #[test]
    fn packed_len_formula() {
        let p = Packer::new(256, 1); // capacity 3
        assert_eq!(p.packed_len(0), 1);
        assert_eq!(p.packed_len(3), 1);
        assert_eq!(p.packed_len(4), 2);
        assert_eq!(p.packed_len(9), 3);
    }

    #[test]
    fn oversized_integer_rejected() {
        let p = Packer::new(256, 1);
        let too_wide = BigUint::one().shl_bits(p.capacity() * SLOT_BITS + 1);
        assert!(matches!(
            p.unpack(&[too_wide], 1),
            Err(PaillierError::RecordTooWide { .. })
        ));
    }

    #[test]
    fn packed_value_below_modulus_bound() {
        let p = Packer::new(256, 1);
        let recs = vec![u64::MAX; p.capacity()];
        let packed = p.pack(&recs);
        // Strictly below 2^(key_bits - 16) <= N.
        assert!(packed[0].bit_length() <= 256 - HEADROOM_BITS);
    }

    #[test]
    fn point_codec_roundtrip() {
        for (x, y) in [(0u32, 0u32), (1, 2), (u32::MAX, 12345), (999999, u32::MAX)] {
            assert_eq!(decode_point(encode_point(x, y)), (x, y));
        }
    }
}
