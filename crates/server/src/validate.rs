//! The hostile-client validation gate and admission-control primitives.
//!
//! Privacy III (§3) makes the LSP compute `A ⨂ [v]` on whatever
//! ciphertexts the coordinator sent — expensive Paillier arithmetic
//! that PR 2's fault tolerance protects from *accidents* but not from
//! *adversaries*. This module is the byzantine-client counterpart:
//! every decoded request is checked against the session's own handshake
//! before it can reach a worker, so a hostile client can neither feed
//! garbage into the engine (where shape mismatches become panics, e.g.
//! `PartitionParams::subgroup_of` on a lying user index) nor burn
//! worker time on ciphertexts that were never going to decrypt.
//!
//! The checks are deliberately cheap relative to a query: length
//! comparisons, one subgroup/segment sum, and one gcd per ciphertext —
//! all linear in the message, while the query itself is `O(δ′)` big-int
//! exponentiations.
//!
//! [`TokenBucket`] is the per-connection rate limiter; the registry
//! (session caps, TTL eviction, strike counters) and the whole-frame
//! read deadline live in `registry.rs` / `server.rs`.

use std::fmt;
use std::time::{Duration, Instant};

use ppgnn_core::messages::{IndicatorPayload, LocationSetMessage, QueryMessage};
use ppgnn_core::opt_split;
use ppgnn_telemetry as telemetry;

use crate::frame::HelloPayload;
use crate::registry::SessionParams;

/// Everything the validation gate can reject a request for. Each
/// variant is deterministic: the same bytes are rejected the same way
/// every time, so clients must treat these as fatal, not retryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolViolation {
    /// The handshake asked for a candidate set smaller than server
    /// policy allows (a tiny δ collapses the privacy guarantee the
    /// server is paid to uphold).
    DeltaBelowPolicy { delta: usize, min: usize },
    /// The handshake asked for a key shorter than server policy.
    KeyBelowPolicy { key_bits: usize, min: usize },
    /// A handshake shape field is degenerate (zero k or d, ω too
    /// large, δ below the per-user set size it must cover, …).
    BadHelloShape { what: &'static str },
    /// The query carried a different number of location sets than the
    /// group declared at handshake.
    GroupSizeMismatch { expected: usize, got: usize },
    /// One user's location set has the wrong length.
    SetLengthMismatch {
        user: usize,
        expected: usize,
        got: usize,
    },
    /// A location set's user index disagrees with its position (the
    /// LSP rebuilds subgroups positionally; a lying index would panic
    /// or silently mis-partition).
    UserIndexMismatch { position: usize, got: usize },
    /// The query's `k` differs from the handshake.
    KMismatch { expected: usize, got: usize },
    /// The partition block is inconsistent with the session (sizes do
    /// not sum to n/d, a zero part, δ′ below the promised δ, …).
    PartitionMismatch { what: &'static str },
    /// An indicator vector's length disagrees with the δ′/ω the
    /// session's partition implies.
    IndicatorLengthMismatch {
        which: &'static str,
        expected: usize,
        got: usize,
    },
    /// An indicator ciphertext is structurally invalid for the
    /// session's Damgård–Jurik parameters: zero, out of `[0, n^{s+1})`,
    /// or sharing a factor with the modulus.
    InvalidCiphertext { which: &'static str, index: usize },
    /// The request ID rewound below the session's high-water mark.
    RequestIdRewind { high_water: u32, got: u32 },
    /// A `PoiUpdate` presented a wrong (or missing) admin token — only
    /// the LSP's operator may mutate the POI database.
    AdminUnauthorized,
    /// A `Subscribe` would exceed the server's standing-query registry
    /// cap (each subscription costs an invalidation scan per mutation).
    SubscriptionLimit { max: usize },
    /// Under a padded shape policy the handshake asked for a session
    /// the padding envelope cannot cover: its answers would burst the
    /// constant frame size and re-open the side channel for everyone.
    ShapeBoundExceeded {
        what: &'static str,
        got: usize,
        max: usize,
    },
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolViolation::DeltaBelowPolicy { delta, min } => {
                write!(f, "delta {delta} below server policy minimum {min}")
            }
            ProtocolViolation::KeyBelowPolicy { key_bits, min } => {
                write!(f, "key size {key_bits} below server policy minimum {min}")
            }
            ProtocolViolation::BadHelloShape { what } => {
                write!(f, "degenerate handshake shape: {what}")
            }
            ProtocolViolation::GroupSizeMismatch { expected, got } => {
                write!(
                    f,
                    "query carries {got} location sets, session has {expected} users"
                )
            }
            ProtocolViolation::SetLengthMismatch {
                user,
                expected,
                got,
            } => {
                write!(
                    f,
                    "user {user} sent {got} locations, session fixes {expected}"
                )
            }
            ProtocolViolation::UserIndexMismatch { position, got } => {
                write!(
                    f,
                    "location set at position {position} claims user index {got}"
                )
            }
            ProtocolViolation::KMismatch { expected, got } => {
                write!(f, "query k {got} differs from session k {expected}")
            }
            ProtocolViolation::PartitionMismatch { what } => {
                write!(f, "partition inconsistent with session: {what}")
            }
            ProtocolViolation::IndicatorLengthMismatch {
                which,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{which} indicator has {got} ciphertexts, session implies {expected}"
                )
            }
            ProtocolViolation::InvalidCiphertext { which, index } => {
                write!(
                    f,
                    "{which} indicator ciphertext {index} is not a valid unit mod n^(s+1)"
                )
            }
            ProtocolViolation::RequestIdRewind { high_water, got } => {
                write!(
                    f,
                    "request id {got} rewinds below session high-water mark {high_water}"
                )
            }
            ProtocolViolation::AdminUnauthorized => {
                write!(
                    f,
                    "poi update rejected: admin token invalid or lane disabled"
                )
            }
            ProtocolViolation::SubscriptionLimit { max } => {
                write!(f, "subscription registry full (cap {max})")
            }
            ProtocolViolation::ShapeBoundExceeded { what, got, max } => {
                write!(f, "{what} {got} exceeds padded shape policy maximum {max}")
            }
        }
    }
}

/// Server policy floors applied at handshake time.
#[derive(Debug, Clone, Copy)]
pub struct HelloPolicy {
    /// Smallest candidate-set size δ the server will serve.
    pub min_delta: usize,
    /// Smallest Paillier modulus the server will do arithmetic under.
    pub min_key_bits: usize,
}

impl Default for HelloPolicy {
    fn default() -> Self {
        HelloPolicy {
            min_delta: 2,
            min_key_bits: 32,
        }
    }
}

/// Widest ω the gate accepts — far beyond any real split (`ω ≈ √(δ′/2)`
/// and δ′ is bounded by the frame cap anyway), small enough that ω
/// cannot be used to size anything dangerous.
const MAX_OMEGA: usize = 1 << 20;

/// Checks a decoded `Hello` against server policy before it can claim
/// a registry slot.
pub fn validate_hello(hello: &HelloPayload, policy: &HelloPolicy) -> Result<(), ProtocolViolation> {
    if (hello.key_bits as usize) < policy.min_key_bits {
        return Err(ProtocolViolation::KeyBelowPolicy {
            key_bits: hello.key_bits as usize,
            min: policy.min_key_bits,
        });
    }
    if (hello.delta as usize) < policy.min_delta {
        return Err(ProtocolViolation::DeltaBelowPolicy {
            delta: hello.delta as usize,
            min: policy.min_delta,
        });
    }
    if hello.k == 0 {
        return Err(ProtocolViolation::BadHelloShape { what: "k is zero" });
    }
    if hello.d == 0 {
        return Err(ProtocolViolation::BadHelloShape { what: "d is zero" });
    }
    if hello.omega as usize > MAX_OMEGA {
        return Err(ProtocolViolation::BadHelloShape {
            what: "omega out of range",
        });
    }
    // δ candidates are drawn from the users' d-slot sets: a δ the sets
    // cannot cover is not a shape any honest planner produces.
    if hello.has_partition && hello.delta < hello.d {
        return Err(ProtocolViolation::BadHelloShape {
            what: "delta below per-user set size d",
        });
    }
    Ok(())
}

/// Cheap pre-decode check: the set *count* is visible in the frame
/// payload before any expensive wire decode of the inner blobs.
pub fn validate_set_count(
    params: &SessionParams,
    set_count: usize,
) -> Result<(), ProtocolViolation> {
    if set_count != params.n_users {
        return Err(ProtocolViolation::GroupSizeMismatch {
            expected: params.n_users,
            got: set_count,
        });
    }
    Ok(())
}

/// The full gate over a decoded query: shape against the handshake,
/// partition consistency, indicator lengths against δ′/ω, and the
/// structural validity of every ciphertext.
pub fn validate_query(
    params: &SessionParams,
    query: &QueryMessage,
    location_sets: &[LocationSetMessage],
) -> Result<(), ProtocolViolation> {
    let _t = telemetry::global().time(telemetry::Stage::Validate);
    if query.k != params.k {
        return Err(ProtocolViolation::KMismatch {
            expected: params.k,
            got: query.k,
        });
    }
    validate_set_count(params, location_sets.len())?;
    for (position, set) in location_sets.iter().enumerate() {
        if set.user_index != position {
            return Err(ProtocolViolation::UserIndexMismatch {
                position,
                got: set.user_index,
            });
        }
        if set.locations.len() != params.d {
            return Err(ProtocolViolation::SetLengthMismatch {
                user: position,
                expected: params.d,
                got: set.locations.len(),
            });
        }
    }
    let delta_prime = match &query.partition {
        Some(p) => {
            let n_sum: usize = p.subgroup_sizes.iter().sum();
            if n_sum != params.n_users || p.subgroup_sizes.contains(&0) {
                return Err(ProtocolViolation::PartitionMismatch {
                    what: "subgroup sizes do not partition the group",
                });
            }
            let d_sum: usize = p.segment_sizes.iter().sum();
            if d_sum != params.d || p.segment_sizes.contains(&0) {
                return Err(ProtocolViolation::PartitionMismatch {
                    what: "segment sizes do not partition the location sets",
                });
            }
            let dp = p.delta_prime();
            if dp < params.delta as u128 {
                return Err(ProtocolViolation::PartitionMismatch {
                    what: "delta_prime below the session's delta",
                });
            }
            // δ′ sizes the indicator the session already shipped, so a
            // value past the frame cap cannot match any real vector —
            // reject before the `as usize` below could even matter.
            usize::try_from(dp).map_err(|_| ProtocolViolation::PartitionMismatch {
                what: "delta_prime overflows",
            })?
        }
        None => params.delta,
    };
    let pk = &query.pk;
    let n = pk.n();
    match &query.indicator {
        IndicatorPayload::Plain(v) => {
            if v.len() != delta_prime {
                return Err(ProtocolViolation::IndicatorLengthMismatch {
                    which: "plain",
                    expected: delta_prime,
                    got: v.len(),
                });
            }
            let n2 = n * n;
            for (index, c) in v.elements().iter().enumerate() {
                c.validate_in(n, &n2)
                    .map_err(|_| ProtocolViolation::InvalidCiphertext {
                        which: "plain",
                        index,
                    })?;
            }
        }
        IndicatorPayload::TwoPhase { inner, outer } => {
            let (omega, block_size) = opt_split(delta_prime);
            if outer.len() != omega {
                return Err(ProtocolViolation::IndicatorLengthMismatch {
                    which: "outer",
                    expected: omega,
                    got: outer.len(),
                });
            }
            if inner.len() != block_size {
                return Err(ProtocolViolation::IndicatorLengthMismatch {
                    which: "inner",
                    expected: block_size,
                    got: inner.len(),
                });
            }
            let n2 = n * n;
            let n3 = &n2 * n;
            for (index, c) in inner.elements().iter().enumerate() {
                c.validate_in(n, &n2)
                    .map_err(|_| ProtocolViolation::InvalidCiphertext {
                        which: "inner",
                        index,
                    })?;
            }
            for (index, c) in outer.elements().iter().enumerate() {
                c.validate_in(n, &n3)
                    .map_err(|_| ProtocolViolation::InvalidCiphertext {
                        which: "outer",
                        index,
                    })?;
            }
        }
    }
    Ok(())
}

/// A classic token bucket: `burst` tokens of capacity refilled at
/// `refill_per_sec`, one token per admitted frame. Time is passed in
/// so tests drive it deterministically; a refill rate of zero disables
/// the limiter entirely.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    tokens: f64,
    refill_per_sec: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(burst: u32, refill_per_sec: f64) -> Self {
        let capacity = f64::from(burst.max(1));
        TokenBucket {
            capacity,
            tokens: capacity,
            refill_per_sec,
            last: Instant::now(),
        }
    }

    /// Whether the limiter can ever refuse.
    pub fn is_active(&self) -> bool {
        self.refill_per_sec > 0.0
    }

    /// Takes one token at `now`, or reports how long until one refills.
    pub fn try_take_at(&mut self, now: Instant) -> Result<(), Duration> {
        if !self.is_active() {
            return Ok(());
        }
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.last = now;
        self.tokens = (self.tokens + dt * self.refill_per_sec).min(self.capacity);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            Err(Duration::from_secs_f64(
                (1.0 - self.tokens) / self.refill_per_sec,
            ))
        }
    }

    /// Takes one token now.
    pub fn try_take(&mut self) -> Result<(), Duration> {
        self.try_take_at(Instant::now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(delta: u32, d: u32) -> HelloPayload {
        HelloPayload {
            group_id: 1,
            key_bits: 128,
            variant: 0,
            omega: 0,
            has_partition: true,
            n_users: 3,
            delta,
            k: 2,
            d,
        }
    }

    #[test]
    fn hello_policy_floors() {
        let policy = HelloPolicy {
            min_delta: 4,
            min_key_bits: 64,
        };
        assert!(validate_hello(&hello(8, 4), &policy).is_ok());
        assert_eq!(
            validate_hello(&hello(3, 2), &policy),
            Err(ProtocolViolation::DeltaBelowPolicy { delta: 3, min: 4 })
        );
        let mut weak = hello(8, 4);
        weak.key_bits = 32;
        assert_eq!(
            validate_hello(&weak, &policy),
            Err(ProtocolViolation::KeyBelowPolicy {
                key_bits: 32,
                min: 64
            })
        );
    }

    #[test]
    fn hello_degenerate_shapes() {
        let policy = HelloPolicy::default();
        let mut h = hello(8, 4);
        h.k = 0;
        assert!(matches!(
            validate_hello(&h, &policy),
            Err(ProtocolViolation::BadHelloShape { .. })
        ));
        let mut h = hello(8, 4);
        h.d = 0;
        assert!(matches!(
            validate_hello(&h, &policy),
            Err(ProtocolViolation::BadHelloShape { .. })
        ));
        // δ < d with a partition cannot come from an honest planner.
        assert!(matches!(
            validate_hello(&hello(3, 4), &policy),
            Err(ProtocolViolation::BadHelloShape { .. })
        ));
        // ...but is fine without one (Naive uses d = δ anyway).
        let mut h = hello(3, 3);
        h.has_partition = false;
        assert!(validate_hello(&h, &policy).is_ok());
        let mut h = hello(8, 4);
        h.omega = (MAX_OMEGA + 1) as u32;
        assert!(matches!(
            validate_hello(&h, &policy),
            Err(ProtocolViolation::BadHelloShape { .. })
        ));
    }

    #[test]
    fn token_bucket_burst_then_throttle() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(3, 10.0);
        assert!(bucket.try_take_at(start).is_ok());
        assert!(bucket.try_take_at(start).is_ok());
        assert!(bucket.try_take_at(start).is_ok());
        let wait = bucket.try_take_at(start).unwrap_err();
        assert!(wait > Duration::ZERO && wait <= Duration::from_millis(100));
        // After a tenth of a second one token is back.
        assert!(bucket
            .try_take_at(start + Duration::from_millis(150))
            .is_ok());
        assert!(bucket
            .try_take_at(start + Duration::from_millis(150))
            .is_err());
    }

    #[test]
    fn token_bucket_caps_at_capacity_and_can_be_disabled() {
        let start = Instant::now();
        let mut bucket = TokenBucket::new(2, 5.0);
        // A long idle stretch refills to capacity, not beyond.
        let later = start + Duration::from_secs(60);
        assert!(bucket.try_take_at(later).is_ok());
        assert!(bucket.try_take_at(later).is_ok());
        assert!(bucket.try_take_at(later).is_err());
        let mut off = TokenBucket::new(1, 0.0);
        assert!(!off.is_active());
        for _ in 0..1000 {
            assert!(off.try_take_at(start).is_ok());
        }
    }
}
