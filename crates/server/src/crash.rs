//! The kill-mid-soak chaos harness: proves the durable live world
//! survives SIGKILL with zero wrong answers.
//!
//! The harness plays puppeteer over a *child-process* `ppgnn-server`
//! (in-process threads cannot be SIGKILLed): it pre-seeds a data dir
//! with a deterministic [`MovingWorld`]'s initial POIs, boots the
//! child with `--data-dir`, then runs the moving-group soak against it
//! — and at seeded tick points it kills the child dead (no drain, no
//! flush beyond what the WAL policy promised), restarts it on the same
//! data dir, and keeps going.
//!
//! The parent never loses state, so it is the oracle for everything
//! the crash could have corrupted:
//!
//! * **version continuity** — every `PoiUpdateAck` must carry exactly
//!   `previous + 1`; a restarted server that lost an acked batch or
//!   replayed one twice breaks the chain;
//! * **at-least-once redelivery** — the batch acked *just before* each
//!   kill is re-sent verbatim after the restart and must come back
//!   with its original version, not a second application;
//! * **standing queries** — each group's next poll after the kill must
//!   surface the restart (synthetic `Invalidated` from the epoch
//!   change), and the re-planned answer must match the plaintext
//!   oracle; silence over a changed answer is a missed invalidation,
//!   exactly as in the live soak;
//! * **telemetry** — the restarted child must have exercised the
//!   `wal-append` and `recover-replay` stages, checked over the wire.
//!
//! The same harness backs `tests/crash_soak.rs` and the CI
//! `crash-smoke` job; the child's stderr (the recovery summary lines)
//! is teed into a log file for CI artifact upload.

use std::collections::HashSet;
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use ppgnn_core::PpgnnConfig;
use ppgnn_geo::PoiId;
use ppgnn_sim::moving::{MovingWorld, MovingWorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::client::{GroupClient, SafeRegionToken};
use crate::error::ServerError;
use crate::frame::SubscriptionKind;
use crate::wal::{self, FsyncPolicy};

/// Everything one crash soak needs. [`CrashSoakConfig::new`] is the
/// tuned CI shape; `kill_at_ticks` places the SIGKILLs.
#[derive(Debug, Clone)]
pub struct CrashSoakConfig {
    /// Path to the `ppgnn-server` binary to run as the victim child.
    /// Tests use `env!("CARGO_BIN_EXE_ppgnn-server")`.
    pub server_bin: PathBuf,
    /// Durable state directory, shared across every child incarnation.
    pub data_dir: PathBuf,
    /// The deterministic world: groups, drift, churn, seed.
    pub world: MovingWorldConfig,
    /// Ticks to run.
    pub ticks: usize,
    /// Zero-based ticks after whose batch ack the child is SIGKILLed.
    pub kill_at_ticks: Vec<usize>,
    /// Protocol parameters each group subscribes under; also shipped
    /// to the child as `--k/--d/--delta/--keysize`.
    pub protocol: PpgnnConfig,
    /// Shared secret for the admin lane (`--admin-token`).
    pub admin_token: u64,
    /// How long one notification poll waits when pushes are expected.
    pub poll_wait: Duration,
    /// The child's WAL flush policy. [`FsyncPolicy::Always`] makes
    /// "no acked batch is ever lost" exact rather than probabilistic,
    /// which is what the correctness gate needs.
    pub fsync: FsyncPolicy,
    /// The child's checkpoint cadence; small enough that the soak
    /// crosses checkpoint boundaries, so recovery exercises both the
    /// snapshot load and the WAL tail replay.
    pub checkpoint_every_ops: u64,
    /// How long to wait for a (re)started child to accept connections.
    pub boot_timeout: Duration,
    /// Telemetry stages to require on top of the built-in gate
    /// (`wal-append` always, `recover-replay` once a kill happened).
    pub extra_required_stages: Vec<String>,
    /// Where to tee the child's stderr (recovery summaries). `None`
    /// discards it.
    pub recovery_log: Option<PathBuf>,
}

impl CrashSoakConfig {
    /// The CI smoke shape: the moving-soak world, two kills, fsync on
    /// every ack, checkpoints every 16 ops.
    pub fn new(server_bin: impl Into<PathBuf>, data_dir: impl Into<PathBuf>) -> Self {
        CrashSoakConfig {
            server_bin: server_bin.into(),
            data_dir: data_dir.into(),
            world: MovingWorldConfig {
                seed: 7,
                n_groups: 4,
                users_per_group: 2,
                drift_step: 4e-6,
                churn_per_tick: 2,
                initial_pois: 150,
                space: ppgnn_geo::Rect::UNIT,
            },
            ticks: 10,
            kill_at_ticks: vec![3, 7],
            protocol: PpgnnConfig {
                k: 2,
                d: 3,
                delta: 6,
                keysize: 128,
                sanitize: false,
                ..PpgnnConfig::fast_test()
            },
            admin_token: 0xD00D_F00D,
            poll_wait: Duration::from_millis(400),
            fsync: FsyncPolicy::Always,
            checkpoint_every_ops: 16,
            boot_timeout: Duration::from_secs(30),
            extra_required_stages: Vec::new(),
            recovery_log: None,
        }
    }
}

/// What one crash soak observed. [`CrashSoakReport::passed`] is the CI
/// gate; [`CrashSoakReport::render`] the human view.
#[derive(Debug, Clone)]
pub struct CrashSoakReport {
    /// Ticks executed.
    pub ticks: usize,
    /// Groups holding standing queries.
    pub groups: usize,
    /// POI mutations shipped down the admin lane.
    pub poi_ops: u64,
    /// SIGKILLs delivered (== restarts performed).
    pub kills: u64,
    /// Post-restart redeliveries answered with the *original* version
    /// and apply count — the idempotence proof. Must equal `kills`.
    pub replay_acks: u64,
    /// Acks whose version broke the `previous + 1` chain (or whose
    /// redelivery re-applied). The design guarantees **zero**.
    pub version_breaks: u64,
    /// Restarts a group detected via the epoch change on its next
    /// poll. Every standing query must notice every kill.
    pub restarts_noticed: u64,
    /// Re-plans performed (invalidation pushes, synthetic restart
    /// invalidations, and drift exits together).
    pub requeries: u64,
    /// Oracle says the answer changed but no push arrived. Zero.
    pub missed_invalidations: u64,
    /// Re-plans whose answer disagreed with the plaintext oracle. Zero.
    pub answer_mismatches: u64,
    /// The index version the chain ended at.
    pub final_version: u64,
    /// Required telemetry stages the final child never exercised.
    pub missing_stages: Vec<String>,
    /// Wall-clock for the whole soak, restarts included.
    pub wall: Duration,
}

impl CrashSoakReport {
    /// The acceptance gate: every kill survived with zero wrong
    /// answers, zero missed invalidations, an unbroken version chain,
    /// idempotent redelivery, and the recovery stages exercised.
    pub fn passed(&self) -> bool {
        self.version_breaks == 0
            && self.missed_invalidations == 0
            && self.answer_mismatches == 0
            && self.replay_acks == self.kills
            && self.restarts_noticed == self.kills * self.groups as u64
            && self.missing_stages.is_empty()
    }

    /// Plain-text summary for the CLI and CI logs.
    pub fn render(&self) -> String {
        format!(
            "crash soak: {} groups x {} ticks, {} poi ops, {} kills\n\
             redelivery     {} replay acks / {} kills (idempotent)\n\
             version chain  final v{} | breaks {}\n\
             restarts seen  {} / {} expected (groups x kills)\n\
             re-queries     {} | missed invalidations {} | wrong answers {}\n\
             stages missing {:?}\n\
             wall           {:.2?}\n\
             verdict        {}",
            self.groups,
            self.ticks,
            self.poi_ops,
            self.kills,
            self.replay_acks,
            self.kills,
            self.final_version,
            self.version_breaks,
            self.restarts_noticed,
            self.kills * self.groups as u64,
            self.requeries,
            self.missed_invalidations,
            self.answer_mismatches,
            self.missing_stages,
            self.wall,
            if self.passed() { "PASS" } else { "FAIL" },
        )
    }
}

/// Kills the child on drop so a failing soak never leaks a server
/// process into the test runner.
struct ChildGuard {
    child: Child,
}

impl ChildGuard {
    /// SIGKILL, then reap. `Child::kill` on unix is `SIGKILL` — no
    /// handler runs, no flush happens; whatever the WAL promised is
    /// all the durability there is.
    fn kill_now(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        self.kill_now();
    }
}

/// Picks a port by binding to 0 and releasing it. Racy in principle;
/// in practice the window to the child's bind is milliseconds, and a
/// lost race fails loudly at `wait_ready`.
fn free_port() -> io::Result<u16> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.port())
}

fn spawn_server(config: &CrashSoakConfig, port: u16) -> io::Result<ChildGuard> {
    // Append, not truncate: the log accumulates every incarnation's
    // recovery summary, which is exactly what the CI artifact wants.
    let stderr = match &config.recovery_log {
        Some(path) => {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            let _ = writeln!(file, "--- child incarnation ---");
            Stdio::from(file)
        }
        None => Stdio::null(),
    };
    let child = Command::new(&config.server_bin)
        .arg("--addr")
        .arg(format!("127.0.0.1:{port}"))
        // The data dir is pre-seeded; the child's own POI generation
        // is dead weight on every boot after the first, so keep it 0.
        .arg("--pois")
        .arg("0")
        .arg("--data-dir")
        .arg(&config.data_dir)
        .arg("--fsync")
        .arg(config.fsync.name())
        .arg("--checkpoint-every-ops")
        .arg(config.checkpoint_every_ops.to_string())
        .arg("--admin-token")
        .arg(config.admin_token.to_string())
        .arg("--max-subscriptions")
        .arg((config.world.n_groups.max(1) * 2).to_string())
        .arg("--k")
        .arg(config.protocol.k.to_string())
        .arg("--d")
        .arg(config.protocol.d.to_string())
        .arg("--delta")
        .arg(config.protocol.delta.to_string())
        .arg("--keysize")
        .arg(config.protocol.keysize.to_string())
        // Piped-and-held stdin: the server treats stdin EOF as "drain
        // and exit", which Stdio::null would trigger immediately.
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(stderr)
        .spawn()?;
    Ok(ChildGuard { child })
}

/// Polls until the child accepts a TCP connection. `serve_durable`
/// binds only *after* recovery finishes, so a successful connect means
/// the world is already republished at the recovered version.
fn wait_ready(addr: SocketAddr, timeout: Duration) -> Result<(), ServerError> {
    let deadline = Instant::now() + timeout;
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(250)) {
            Ok(_) => return Ok(()),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(ServerError::Recovery(format!(
                        "child server not accepting on {addr} within {timeout:?}: {e}"
                    )));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// One group's standing-query state between ticks (the crash-soak
/// twin of the moving harness's internal state).
struct GroupState {
    client: GroupClient,
    anchor: Vec<ppgnn_geo::Point>,
    answer: HashSet<PoiId>,
    token: SafeRegionToken,
}

/// Maps answer locations back to POI ids via the plaintext mirror;
/// `None` is a hard correctness failure (the server answered with a
/// location the live world does not contain).
fn resolve_ids(world: &MovingWorld, answer: &[ppgnn_geo::Point]) -> Option<HashSet<PoiId>> {
    let mut ids = HashSet::with_capacity(answer.len());
    for loc in answer {
        let poi = world
            .live_pois()
            .iter()
            .find(|p| p.location.dist(loc) < 1e-9)?;
        ids.insert(poi.id);
    }
    Some(ids)
}

/// Runs the whole chaos soak: seed, boot, soak, kill, restart, verify.
///
/// Transport-level failures that even resume cannot absorb surface as
/// `Err`; correctness deviations land in the report so callers (tests,
/// CI) choose their own severity.
pub fn run_crash_soak(config: &CrashSoakConfig) -> Result<CrashSoakReport, ServerError> {
    std::fs::create_dir_all(&config.data_dir)?;
    let mut world = MovingWorld::new(config.world.clone());
    // Pre-seed so every incarnation — including the first — boots by
    // the recovery path, from *this* world's POIs, not the child's own
    // seeded generation.
    if !wal::has_checkpoint(&config.data_dir) {
        wal::bootstrap(&config.data_dir, &world.initial_pois())?;
    }

    let port = free_port()?;
    let addr: SocketAddr = ([127, 0, 0, 1], port).into();
    let mut guard = spawn_server(config, port)?;
    wait_ready(addr, config.boot_timeout)?;

    let k = config.protocol.k;
    let agg = config.protocol.aggregate;
    let n_groups = world.groups.len();
    let started = Instant::now();

    let mut admin_rng = ChaCha8Rng::seed_from_u64(config.world.seed ^ 0xAD);
    let mut admin = GroupClient::connect(
        addr,
        0xAD317,
        config.protocol.clone(),
        config.world.space,
        config.world.users_per_group,
        &mut admin_rng,
    )?;

    let mut report = CrashSoakReport {
        ticks: config.ticks,
        groups: n_groups,
        poi_ops: 0,
        kills: 0,
        replay_acks: 0,
        version_breaks: 0,
        restarts_noticed: 0,
        requeries: 0,
        missed_invalidations: 0,
        answer_mismatches: 0,
        final_version: 0,
        missing_stages: Vec::new(),
        wall: Duration::ZERO,
    };

    // Subscribe every group at its starting position.
    let mut states: Vec<GroupState> = Vec::with_capacity(n_groups);
    for track in &world.groups {
        let mut rng = ChaCha8Rng::seed_from_u64(config.world.seed ^ track.group_id);
        let mut client = GroupClient::connect(
            addr,
            track.group_id,
            config.protocol.clone(),
            config.world.space,
            track.users.len(),
            &mut rng,
        )?;
        let (answer, token) = client.subscribe(&track.users, &mut rng)?;
        let ids = match resolve_ids(&world, &answer) {
            Some(ids) => ids,
            None => {
                report.answer_mismatches += 1;
                HashSet::new()
            }
        };
        states.push(GroupState {
            client,
            anchor: track.users.clone(),
            answer: ids,
            token,
        });
    }
    let mut rngs: Vec<ChaCha8Rng> = (0..n_groups)
        .map(|i| ChaCha8Rng::seed_from_u64(config.world.seed ^ 0x9E37 ^ i as u64))
        .collect();

    // The bootstrap checkpoint is version 1; every admitted batch must
    // extend the chain by exactly one, across restarts included.
    let mut expected_version: u64 = 1;

    for tick in 0..config.ticks {
        let ops = world.tick();
        report.poi_ops += ops.len() as u64;
        let ack = admin.poi_update(config.admin_token, &ops)?;
        expected_version += 1;
        if ack.version != expected_version {
            report.version_breaks += 1;
            expected_version = ack.version;
        }

        let killed_here = config.kill_at_ticks.contains(&tick);
        if killed_here {
            report.kills += 1;
            guard.kill_now();
            guard = spawn_server(config, port)?;
            wait_ready(addr, config.boot_timeout)?;
            // The admin reconnects explicitly (its next op is a write,
            // which has no self-heal path) ...
            admin.resume()?;
            // ... and redelivers the batch the dead server already
            // acked. Durable dedup must answer with the original
            // version and apply count — not a second application.
            let redelivered = admin.poi_update_with_id(config.admin_token, ack.request_id, &ops)?;
            if redelivered.version == ack.version && redelivered.applied == ack.applied {
                report.replay_acks += 1;
            } else {
                report.version_breaks += 1;
                expected_version = redelivered.version;
            }
        }

        for (i, state) in states.iter_mut().enumerate() {
            let current = world.groups[i].users.clone();
            let radius = state.token.drift_radius();
            let drifted = state
                .anchor
                .iter()
                .zip(&current)
                .any(|(a, c)| a.dist(c) > radius);
            let wait = if killed_here || ack.invalidated > 0 {
                config.poll_wait
            } else {
                Duration::from_millis(1)
            };
            // After a kill this poll hits a dead socket, self-heals by
            // resuming, observes the new epoch, and hands back the
            // synthetic restart invalidation — the group cannot tell a
            // crash from an ordinary region invalidation, which is the
            // point.
            let epoch_before = state.client.server_epoch();
            let pushes = state.client.poll_notifications(wait)?;
            if state.client.server_epoch() != epoch_before {
                report.restarts_noticed += 1;
            }
            let invalidated = pushes
                .iter()
                .any(|p| p.kind == SubscriptionKind::Invalidated);

            if invalidated || drifted {
                let (answer, token) = state.client.subscribe(&current, &mut rngs[i])?;
                report.requeries += 1;
                let ids = match resolve_ids(&world, &answer) {
                    Some(ids) => ids,
                    None => {
                        report.answer_mismatches += 1;
                        HashSet::new()
                    }
                };
                let oracle: HashSet<PoiId> =
                    world.oracle_top_k(&current, k, agg).into_iter().collect();
                if ids != oracle {
                    report.answer_mismatches += 1;
                }
                state.anchor = current;
                state.answer = ids;
                state.token = token;
            } else {
                let oracle: HashSet<PoiId> = world
                    .oracle_top_k(&state.anchor, k, agg)
                    .into_iter()
                    .collect();
                if oracle != state.answer {
                    report.missed_invalidations += 1;
                    state.answer = oracle;
                }
            }
        }
    }

    // One deliberate empty batch closes the run: it extends the chain
    // by exactly one and guarantees the final incarnation exercised
    // `wal-append` even when the last kill landed on the last tick
    // (where the only post-restart traffic is the deduped redelivery).
    let closing = admin.poi_update(config.admin_token, &[])?;
    expected_version += 1;
    if closing.version != expected_version {
        report.version_breaks += 1;
        expected_version = closing.version;
    }
    report.final_version = expected_version;

    // Telemetry gate, over the wire from the *final* incarnation:
    // `wal-append` proves the durable path ran, `recover-replay` that
    // at least one boot actually replayed (kills happened).
    let snapshot = admin.server_stats()?;
    let mut required: Vec<&str> = vec!["wal-append"];
    if report.kills > 0 {
        required.push("recover-replay");
    }
    for extra in &config.extra_required_stages {
        if !required.contains(&extra.as_str()) {
            required.push(extra);
        }
    }
    report.missing_stages = snapshot.missing_stages(&required);

    for state in &mut states {
        let token = state.token;
        state.client.unsubscribe(&token)?;
    }
    drop(guard);
    report.wall = started.elapsed();
    Ok(report)
}
