//! Typed errors for the transport and the service.

use std::fmt;

use ppgnn_core::PpgnnError;

use crate::frame::FrameType;
use crate::validate::ProtocolViolation;

/// Machine-readable error codes carried by `Error` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The query referenced a group ID with no negotiated session.
    NoSession,
    /// The frame payload did not parse.
    MalformedPayload,
    /// The protocol layer rejected the query (typed [`PpgnnError`]).
    Protocol,
    /// The request spent longer than its deadline in the queue.
    DeadlineExceeded,
    /// The server is draining and accepts no new queries.
    ShuttingDown,
    /// Unexpected server-side failure.
    Internal,
    /// The validation gate rejected the request: it broke a session
    /// invariant (see [`ProtocolViolation`]). Deterministic — a retry
    /// of the same bytes will be rejected again.
    Violation,
    /// An admission-control quota (session cap, strike limit) refused
    /// the request; retrying later may succeed once load drains.
    QuotaExceeded,
}

impl ErrorCode {
    /// Wire representation.
    pub fn to_u16(self) -> u16 {
        match self {
            ErrorCode::NoSession => 1,
            ErrorCode::MalformedPayload => 2,
            ErrorCode::Protocol => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Internal => 6,
            ErrorCode::Violation => 7,
            ErrorCode::QuotaExceeded => 8,
        }
    }

    /// Parses a wire code; unknown codes map to `None`.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::NoSession,
            2 => ErrorCode::MalformedPayload,
            3 => ErrorCode::Protocol,
            4 => ErrorCode::DeadlineExceeded,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::Internal,
            7 => ErrorCode::Violation,
            8 => ErrorCode::QuotaExceeded,
            _ => return None,
        })
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::NoSession => "no session",
            ErrorCode::MalformedPayload => "malformed payload",
            ErrorCode::Protocol => "protocol error",
            ErrorCode::DeadlineExceeded => "deadline exceeded",
            ErrorCode::ShuttingDown => "shutting down",
            ErrorCode::Internal => "internal error",
            ErrorCode::Violation => "protocol violation",
            ErrorCode::QuotaExceeded => "quota exceeded",
        };
        f.write_str(s)
    }
}

/// Everything that can go wrong on either side of the connection.
///
/// Decoding never panics: every malformed frame maps to a variant here.
#[derive(Debug)]
pub enum ServerError {
    /// Transport-level I/O failure.
    Io(std::io::Error),
    /// The peer closed the connection (EOF inside or between frames).
    ConnectionClosed,
    /// The frame did not start with the `PPGN` magic.
    BadMagic([u8; 4]),
    /// Unsupported frame-layer version.
    BadVersion(u8),
    /// Unknown frame type tag.
    UnknownFrameType(u8),
    /// Declared payload length exceeds the negotiated maximum. Raised
    /// from the frame header alone, before any payload buffer is
    /// allocated, so a hostile length field cannot drive allocation.
    FrameTooLarge { len: usize, max: usize },
    /// The payload failed its header CRC — bytes were corrupted in
    /// transit; nothing in the frame can be trusted.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// A frame payload failed structural validation.
    Malformed(&'static str),
    /// The protocol layer rejected a message.
    Protocol(PpgnnError),
    /// The validation gate rejected a decoded request before it
    /// reached a worker.
    Violation(ProtocolViolation),
    /// The peer answered with an `Error` frame.
    Remote { code: ErrorCode, message: String },
    /// The peer shed the request (or connection) with a `Busy` frame.
    ServerBusy { retry_after_ms: u32 },
    /// A frame arrived out of protocol order.
    UnexpectedFrame {
        expected: &'static str,
        got: FrameType,
    },
    /// Startup recovery refused to serve: the data dir's durable state
    /// failed validation (e.g. every checkpoint is corrupt). Typed so a
    /// crashed-and-corrupted server fails loudly at boot instead of
    /// silently serving stale state.
    Recovery(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "i/o error: {e}"),
            ServerError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServerError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ServerError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            ServerError::UnknownFrameType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            ServerError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds maximum {max}")
            }
            ServerError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "frame payload crc mismatch: header says {expected:#010x}, got {actual:#010x}"
                )
            }
            ServerError::Malformed(what) => write!(f, "malformed frame payload: {what}"),
            ServerError::Protocol(e) => write!(f, "protocol error: {e}"),
            ServerError::Violation(v) => write!(f, "protocol violation: {v}"),
            ServerError::Remote { code, message } => {
                write!(f, "server error ({code}): {message}")
            }
            ServerError::ServerBusy { retry_after_ms } => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ServerError::UnexpectedFrame { expected, got } => {
                write!(f, "expected {expected} frame, got {got:?}")
            }
            ServerError::Recovery(what) => write!(f, "recovery failed: {what}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<PpgnnError> for ServerError {
    fn from(e: PpgnnError) -> Self {
        ServerError::Protocol(e)
    }
}

impl From<ProtocolViolation> for ServerError {
    fn from(v: ProtocolViolation) -> Self {
        ServerError::Violation(v)
    }
}
