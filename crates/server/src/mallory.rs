//! `mallory` — the seeded adversarial client.
//!
//! Every hardening claim in this crate is only as good as the hostile
//! traffic it has actually faced, so this module packages the attacks
//! as a reusable catalog instead of burying them in one test file: the
//! `mallory` binary drives them against a live server concurrently with
//! legitimate [`crate::client::GroupClient`] traffic, and
//! `tests/server_hostile.rs` drives them in-process.
//!
//! An attack is **contained** when the server answers it with a typed
//! reply (`Error`, `Busy`, `HelloAck` for floods under the cap) or a
//! clean disconnect. Two outcomes are never acceptable: an `Answer` to
//! malformed input (the gate leaked) and silence (a wedged connection
//! thread). The server process panicking is caught by the harness
//! around this module, not here.
//!
//! Attacks derive all randomness from an explicit seed, so a failing
//! catalog run reproduces byte-for-byte.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use ppgnn_bigint::BigUint;
use ppgnn_core::messages::IndicatorPayload;
use ppgnn_core::protocol::QueryPlan;
use ppgnn_core::{PpgnnConfig, PpgnnSession};
use ppgnn_geo::{Poi, PoiOp, Point, Rect};
use ppgnn_paillier::{Ciphertext, EncryptedVector};
use ppgnn_telemetry::trace::TraceContext;
use ppgnn_telemetry::{json, CounterSnapshot};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::client::session_params_for;
use crate::error::{ErrorCode, ServerError};
use crate::frame::{
    crc32, read_frame, write_frame, FrameType, HelloAckPayload, HelloPayload, PoiUpdateAckPayload,
    PoiUpdatePayload, QueryPayload, HEADER_BYTES, MAGIC, VERSION,
};
use crate::registry::SessionParams;

/// One entry in the attack catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// A frame header advertising a payload far past any sane cap.
    OversizedFrame,
    /// A well-framed `Hello` whose payload is cut short.
    TruncatedHello,
    /// Seeded random bytes that are not a frame at all.
    GarbageBytes,
    /// A valid frame carrying an unknown protocol version.
    BadVersion,
    /// A valid frame carrying an unassigned frame-type tag.
    UnknownFrameType,
    /// A valid frame whose payload CRC does not match.
    CorruptChecksum,
    /// A handshake whose δ is below the server's policy floor.
    UndersizedDelta,
    /// A query smuggling the zero ciphertext into the indicator.
    ZeroCiphertext,
    /// A query smuggling a ciphertext `≥ n²` (outside the ring).
    OversizedCiphertext,
    /// A query smuggling `n` itself (shares a factor with the modulus).
    NonUnitCiphertext,
    /// A query shipping fewer location sets than the handshake promised.
    WrongSetCount,
    /// A query shipping a location set shorter than the handshake's `d`.
    WrongSetLength,
    /// A fresh query reusing a request ID below the session high-water.
    ReplayedRequestId,
    /// A burst of handshakes for distinct groups to fill the registry.
    SessionFlood,
    /// A frame dribbled byte-by-byte to hold a connection thread.
    SlowWriter,
    /// A burst of standing-query subscriptions to fill the registry.
    SubscribeFlood,
    /// A `PoiUpdate` carrying a guessed admin token — a non-admin
    /// trying to mutate the live index.
    ForgedPoiUpdate,
    /// An already-acked admin batch re-sent verbatim — the capture-and
    /// -replay an at-least-once admin lane invites, sharpest right
    /// after a server restart. A durable server must recognize the
    /// batch and ack its *original* version without re-applying; a
    /// second application is a leak even with a valid token. With no
    /// captured token available ([`AttackContext::admin_token`] unset)
    /// the attack degrades to the forged-token replay, which must draw
    /// a typed violation exactly like [`Attack::ForgedPoiUpdate`].
    StaleAdminReplay,
}

/// Every attack, in a fixed order (so `seed + index` reproduces).
pub const ATTACK_CATALOG: &[Attack] = &[
    Attack::OversizedFrame,
    Attack::TruncatedHello,
    Attack::GarbageBytes,
    Attack::BadVersion,
    Attack::UnknownFrameType,
    Attack::CorruptChecksum,
    Attack::UndersizedDelta,
    Attack::ZeroCiphertext,
    Attack::OversizedCiphertext,
    Attack::NonUnitCiphertext,
    Attack::WrongSetCount,
    Attack::WrongSetLength,
    Attack::ReplayedRequestId,
    Attack::SessionFlood,
    Attack::SlowWriter,
    Attack::SubscribeFlood,
    Attack::ForgedPoiUpdate,
    Attack::StaleAdminReplay,
];

impl std::fmt::Display for Attack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Attack::OversizedFrame => "oversized-frame",
            Attack::TruncatedHello => "truncated-hello",
            Attack::GarbageBytes => "garbage-bytes",
            Attack::BadVersion => "bad-version",
            Attack::UnknownFrameType => "unknown-frame-type",
            Attack::CorruptChecksum => "corrupt-checksum",
            Attack::UndersizedDelta => "undersized-delta",
            Attack::ZeroCiphertext => "zero-ciphertext",
            Attack::OversizedCiphertext => "oversized-ciphertext",
            Attack::NonUnitCiphertext => "non-unit-ciphertext",
            Attack::WrongSetCount => "wrong-set-count",
            Attack::WrongSetLength => "wrong-set-length",
            Attack::ReplayedRequestId => "replayed-request-id",
            Attack::SessionFlood => "session-flood",
            Attack::SlowWriter => "slow-writer",
            Attack::SubscribeFlood => "subscribe-flood",
            Attack::ForgedPoiUpdate => "forged-poi-update",
            Attack::StaleAdminReplay => "stale-admin-replay",
        };
        f.write_str(name)
    }
}

/// How the server handled one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MalloryOutcome {
    /// A typed `Error` frame came back.
    TypedError(ErrorCode),
    /// A `Busy` frame came back (rate limit or queue pressure).
    Shed,
    /// The server closed the connection (Goodbye, EOF, or reset).
    Disconnected,
    /// A flood was fully admitted (registry had room for all of it).
    AckedAll,
    /// A replayed admin batch was acked at its *original* version with
    /// its original apply count — recognized and deduplicated, not
    /// re-applied. The contained outcome for [`Attack::StaleAdminReplay`].
    Idempotent,
    /// The server *answered* the attack — the gate leaked.
    Answered,
    /// No reply within the probe timeout — a wedged connection thread.
    Hung,
    /// The attack could not run (connect failure, unexpected frame).
    Aborted(String),
}

impl MalloryOutcome {
    /// Whether this outcome means the server contained the attack.
    pub fn contained(&self) -> bool {
        matches!(
            self,
            MalloryOutcome::TypedError(_)
                | MalloryOutcome::Shed
                | MalloryOutcome::Disconnected
                | MalloryOutcome::AckedAll
                | MalloryOutcome::Idempotent
        )
    }

    /// Stable kebab-case label for counters and JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            MalloryOutcome::TypedError(_) => "typed-error",
            MalloryOutcome::Shed => "shed",
            MalloryOutcome::Disconnected => "disconnected",
            MalloryOutcome::AckedAll => "acked-all",
            MalloryOutcome::Idempotent => "idempotent",
            MalloryOutcome::Answered => "answered",
            MalloryOutcome::Hung => "hung",
            MalloryOutcome::Aborted(_) => "aborted",
        }
    }
}

/// Shared, reusable attack material: one honestly planned query whose
/// bytes the mutation attacks start from. Planning is the expensive
/// part (keygen + encryption), so it happens once per context, not once
/// per attack.
pub struct AttackContext {
    /// The honest configuration the planned query was built under.
    pub config: PpgnnConfig,
    /// Session parameters matching [`AttackContext::plan`].
    pub params: SessionParams,
    /// The honest plan (valid ciphertexts, valid shapes).
    pub plan: QueryPlan,
    /// Read timeout when probing for the server's reaction; hitting it
    /// classifies the run as [`MalloryOutcome::Hung`].
    pub probe_timeout: Duration,
    /// How long the slow-writer stalls mid-frame. Must exceed the
    /// server's `frame_read_timeout` for the attack to bite.
    pub slow_stall: Duration,
    /// Handshakes one [`Attack::SessionFlood`] run attempts.
    pub flood_sessions: usize,
    /// Standing queries one [`Attack::SubscribeFlood`] run attempts.
    /// Each granted subscription costs the server a full PPGNN query,
    /// so this stays small; point the attack at a server with a low
    /// `max_subscriptions` to exercise the rejection path.
    pub flood_subscriptions: usize,
    /// A *captured* admin token, modeling an attacker who observed a
    /// legitimate `PoiUpdate` exchange. Arms the honest-replay half of
    /// [`Attack::StaleAdminReplay`]; only point it at a **durable**
    /// server (the idempotence it asserts is the WAL dedup window's).
    /// `None` (the default) degrades that attack to forged-token-only.
    pub admin_token: Option<u64>,
}

impl AttackContext {
    /// Plans one honest two-user query under a small test key.
    pub fn new(seed: u64) -> Result<Self, ServerError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let config = PpgnnConfig {
            k: 2,
            d: 3,
            delta: 6,
            sanitize: false,
            ..PpgnnConfig::fast_test()
        };
        let mut session = PpgnnSession::new(config.keysize, &mut rng);
        let users = [Point::new(0.25, 0.25), Point::new(0.6, 0.4)];
        let plan = session.plan(&config, Rect::UNIT, &users, &mut rng)?;
        let params = session_params_for(&config, users.len())?;
        Ok(AttackContext {
            config,
            params,
            plan,
            probe_timeout: Duration::from_secs(10),
            slow_stall: Duration::from_millis(1500),
            flood_sessions: 12,
            flood_subscriptions: 4,
            admin_token: None,
        })
    }

    /// A `Hello` payload consistent with the planned query.
    pub fn hello(&self, group_id: u64) -> HelloPayload {
        HelloPayload {
            group_id,
            key_bits: self.params.key_bits as u32,
            variant: self.params.variant,
            omega: self.params.two_phase_omega.unwrap_or(0) as u32,
            has_partition: self.params.has_partition,
            n_users: self.params.n_users as u32,
            delta: self.params.delta as u32,
            k: self.params.k as u32,
            d: self.params.d as u32,
        }
    }

    /// The honest query payload — valid through the whole gate.
    pub fn honest_query(&self, group_id: u64, request_id: u32) -> Vec<u8> {
        QueryPayload {
            group_id,
            request_id,
            deadline_ms: 0,
            trace: TraceContext::new(request_id as u64 + 1, 1, false),
            location_sets: self
                .plan
                .location_sets
                .iter()
                .map(|s| s.to_wire())
                .collect(),
            query: self.plan.query.to_wire(),
        }
        .encode()
    }

    /// The honest query with indicator ciphertext 0 swapped for `value`.
    fn forged_query(&self, group_id: u64, request_id: u32, value: BigUint) -> Vec<u8> {
        let mut query = self.plan.query.clone();
        if let IndicatorPayload::Plain(v) = &query.indicator {
            let mut elems = v.elements().to_vec();
            if let Some(first) = elems.first_mut() {
                *first = Ciphertext::from_parts(value, 1);
            }
            query.indicator = IndicatorPayload::Plain(EncryptedVector::from_ciphertexts(elems));
        }
        QueryPayload {
            group_id,
            request_id,
            deadline_ms: 0,
            trace: TraceContext::new(request_id as u64 + 1, 1, false),
            location_sets: self
                .plan
                .location_sets
                .iter()
                .map(|s| s.to_wire())
                .collect(),
            query: query.to_wire(),
        }
        .encode()
    }
}

/// Aggregated result of a catalog run.
#[derive(Debug, Default)]
pub struct MalloryReport {
    /// Every attack run with its observed outcome.
    pub runs: Vec<(Attack, MalloryOutcome)>,
}

impl MalloryReport {
    /// Attacks the server contained.
    pub fn contained(&self) -> usize {
        self.runs.iter().filter(|(_, o)| o.contained()).count()
    }

    /// Attack runs the server did NOT contain (answered, hung, or the
    /// run itself aborted).
    pub fn uncontained(&self) -> Vec<&(Attack, MalloryOutcome)> {
        self.runs.iter().filter(|(_, o)| !o.contained()).collect()
    }

    /// Total attack runs recorded.
    pub fn total(&self) -> usize {
        self.runs.len()
    }

    /// The run totals on the shared telemetry counter type: overall
    /// `attacks`/`contained`/`uncontained` plus one
    /// `outcome-<label>` counter per observed outcome class.
    pub fn counters(&self) -> Vec<CounterSnapshot> {
        let mut out = vec![
            CounterSnapshot {
                name: "attacks".into(),
                value: self.total() as u64,
            },
            CounterSnapshot {
                name: "contained".into(),
                value: self.contained() as u64,
            },
            CounterSnapshot {
                name: "uncontained".into(),
                value: self.uncontained().len() as u64,
            },
        ];
        for (_, outcome) in &self.runs {
            let name = format!("outcome-{}", outcome.label());
            match out.iter_mut().find(|c| c.name == name) {
                Some(c) => c.value += 1,
                None => out.push(CounterSnapshot { name, value: 1 }),
            }
        }
        out
    }

    /// Machine-readable report: the counters above plus every run with
    /// its attack name, outcome label, and containment verdict.
    pub fn to_json(&self) -> String {
        let runs = json::arr(self.runs.iter().map(|(attack, outcome)| {
            let mut run = json::Obj::new();
            run.field_str("attack", &attack.to_string());
            run.field_str("outcome", outcome.label());
            match outcome {
                MalloryOutcome::TypedError(code) => run.field_str("detail", &code.to_string()),
                MalloryOutcome::Aborted(detail) => run.field_str("detail", detail),
                _ => {}
            }
            run.field_bool("contained", outcome.contained());
            run.finish()
        }));
        let mut obj = json::Obj::new();
        obj.field_raw(
            "counters",
            &json::arr(self.counters().iter().map(|c| c.to_json())),
        );
        obj.field_raw("runs", &runs);
        obj.finish()
    }
}

/// Runs `rounds` passes over the full catalog against `addr`, group IDs
/// derived from `seed` so runs never collide with legitimate traffic
/// (mallory group IDs carry a high tag bit).
pub fn run_catalog(
    addr: SocketAddr,
    ctx: &AttackContext,
    seed: u64,
    rounds: usize,
) -> MalloryReport {
    let mut report = MalloryReport::default();
    for round in 0..rounds {
        for (i, &attack) in ATTACK_CATALOG.iter().enumerate() {
            let run_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((round * ATTACK_CATALOG.len() + i) as u64);
            let outcome = run_attack(attack, addr, ctx, run_seed);
            report.runs.push((attack, outcome));
        }
    }
    report
}

/// Derives a collision-free hostile group ID from a run seed.
fn hostile_group_id(run_seed: u64) -> u64 {
    0x4d41_0000_0000_0000 | (run_seed & 0x0000_ffff_ffff_ffff)
}

/// Executes one attack against a live server and classifies the result.
pub fn run_attack(
    attack: Attack,
    addr: SocketAddr,
    ctx: &AttackContext,
    run_seed: u64,
) -> MalloryOutcome {
    match attack_inner(attack, addr, ctx, run_seed) {
        Ok(outcome) => outcome,
        Err(e) => classify_transport(e),
    }
}

/// Transport failures mid-attack are the server slamming the door —
/// which is containment, not a defect. Only failures to *start* the
/// attack abort the run.
fn classify_transport(e: ServerError) -> MalloryOutcome {
    match e {
        ServerError::ConnectionClosed => MalloryOutcome::Disconnected,
        ServerError::Io(ref io) => match io.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => MalloryOutcome::Hung,
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => MalloryOutcome::Disconnected,
            _ => MalloryOutcome::Aborted(e.to_string()),
        },
        other => MalloryOutcome::Aborted(other.to_string()),
    }
}

fn connect(addr: SocketAddr, probe_timeout: Duration) -> Result<TcpStream, ServerError> {
    let stream = TcpStream::connect_timeout(&addr, probe_timeout)?;
    stream.set_read_timeout(Some(probe_timeout))?;
    stream.set_write_timeout(Some(probe_timeout))?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Reads the server's next frame and classifies it as an outcome.
fn probe(stream: &mut TcpStream) -> MalloryOutcome {
    match read_frame(stream, crate::frame::DEFAULT_MAX_PAYLOAD) {
        Ok(frame) => match frame.frame_type {
            FrameType::Error => match crate::frame::ErrorPayload::decode(&frame.payload) {
                Ok(err) => MalloryOutcome::TypedError(err.code),
                Err(e) => MalloryOutcome::Aborted(format!("undecodable error frame: {e}")),
            },
            FrameType::Busy => MalloryOutcome::Shed,
            FrameType::Goodbye => MalloryOutcome::Disconnected,
            // An `Answer` to malformed input, or an ack for a forged
            // admin mutation, both mean the gate leaked.
            FrameType::Answer | FrameType::PoiUpdateAck => MalloryOutcome::Answered,
            other => MalloryOutcome::Aborted(format!("unexpected {other:?} frame")),
        },
        Err(e) => classify_transport(e),
    }
}

/// Performs the honest handshake an attack needs before it can reach
/// the query gate. `Ok(None)` means the session is up; `Ok(Some(_))`
/// carries the early outcome (e.g. the registry refused the session —
/// still a typed, contained reply).
fn handshake(
    stream: &mut TcpStream,
    hello: &HelloPayload,
) -> Result<Option<MalloryOutcome>, ServerError> {
    write_frame(stream, FrameType::Hello, &hello.encode())?;
    match read_frame(stream, crate::frame::DEFAULT_MAX_PAYLOAD) {
        Ok(frame) => match frame.frame_type {
            FrameType::HelloAck => {
                HelloAckPayload::decode(&frame.payload)?;
                Ok(None)
            }
            FrameType::Error => match crate::frame::ErrorPayload::decode(&frame.payload) {
                Ok(err) => Ok(Some(MalloryOutcome::TypedError(err.code))),
                Err(e) => Ok(Some(MalloryOutcome::Aborted(format!(
                    "undecodable error frame: {e}"
                )))),
            },
            FrameType::Busy => Ok(Some(MalloryOutcome::Shed)),
            FrameType::Goodbye => Ok(Some(MalloryOutcome::Disconnected)),
            other => Ok(Some(MalloryOutcome::Aborted(format!(
                "unexpected {other:?} during handshake"
            )))),
        },
        Err(e) => Ok(Some(classify_transport(e))),
    }
}

/// A raw v8-layout frame with full control over every header field
/// (`pad_len` pinned to 0 — the attacks lie about length and CRC, not
/// padding; an inflated pad count is the same read-cap probe as an
/// inflated payload length).
fn raw_frame(version: u8, frame_type: u8, len: u32, crc: u32, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len());
    buf.extend_from_slice(&MAGIC);
    buf.push(version);
    buf.push(frame_type);
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(&0u32.to_le_bytes());
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn attack_inner(
    attack: Attack,
    addr: SocketAddr,
    ctx: &AttackContext,
    run_seed: u64,
) -> Result<MalloryOutcome, ServerError> {
    let group_id = hostile_group_id(run_seed);
    let mut stream = connect(addr, ctx.probe_timeout)?;
    match attack {
        Attack::OversizedFrame => {
            // A header promising ~4 GiB; the body never follows.
            let buf = raw_frame(VERSION, FrameType::Hello.to_u8(), u32::MAX - 16, 0, &[]);
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(probe(&mut stream))
        }
        Attack::TruncatedHello => {
            // A perfectly framed Hello whose payload stops mid-field.
            let full = ctx.hello(group_id).encode();
            let cut = &full[..full.len() / 2];
            write_frame(&mut stream, FrameType::Hello, cut)?;
            Ok(probe(&mut stream))
        }
        Attack::GarbageBytes => {
            let mut rng = ChaCha8Rng::seed_from_u64(run_seed);
            let mut junk = [0u8; 64];
            rng.fill_bytes(&mut junk);
            junk[0] = junk[0].wrapping_add(1).max(1); // never 'P'
            if junk[0] == b'P' {
                junk[0] = b'Q';
            }
            stream.write_all(&junk)?;
            stream.flush()?;
            Ok(probe(&mut stream))
        }
        Attack::BadVersion => {
            let buf = raw_frame(
                VERSION.wrapping_add(7),
                FrameType::Ping.to_u8(),
                0,
                crc32(&[]),
                &[],
            );
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(probe(&mut stream))
        }
        Attack::UnknownFrameType => {
            let buf = raw_frame(VERSION, 0x3f, 0, crc32(&[]), &[]);
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(probe(&mut stream))
        }
        Attack::CorruptChecksum => {
            let payload = ctx.hello(group_id).encode();
            let buf = raw_frame(
                VERSION,
                FrameType::Hello.to_u8(),
                payload.len() as u32,
                crc32(&payload) ^ 0x00ff_00ff,
                &payload,
            );
            stream.write_all(&buf)?;
            stream.flush()?;
            Ok(probe(&mut stream))
        }
        Attack::UndersizedDelta => {
            let mut hello = ctx.hello(group_id);
            hello.delta = 1;
            hello.d = 1;
            write_frame(&mut stream, FrameType::Hello, &hello.encode())?;
            Ok(probe(&mut stream))
        }
        Attack::ZeroCiphertext => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            let payload = ctx.forged_query(group_id, 1, BigUint::zero());
            write_frame(&mut stream, FrameType::Query, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::OversizedCiphertext => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            let n = ctx.plan.query.pk.n();
            let n2 = n * n; // exactly n² — one past the largest ring element
            let payload = ctx.forged_query(group_id, 1, n2);
            write_frame(&mut stream, FrameType::Query, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::NonUnitCiphertext => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            // n is in range but shares every factor with the modulus.
            let payload = ctx.forged_query(group_id, 1, ctx.plan.query.pk.n().clone());
            write_frame(&mut stream, FrameType::Query, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::WrongSetCount => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            let mut sets: Vec<Vec<u8>> =
                ctx.plan.location_sets.iter().map(|s| s.to_wire()).collect();
            sets.pop();
            let payload = QueryPayload {
                group_id,
                request_id: 1,
                deadline_ms: 0,
                trace: TraceContext::new(1, 1, false),
                location_sets: sets,
                query: ctx.plan.query.to_wire(),
            }
            .encode();
            write_frame(&mut stream, FrameType::Query, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::WrongSetLength => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            let mut sets = ctx.plan.location_sets.clone();
            if let Some(first) = sets.first_mut() {
                first.locations.pop();
            }
            let payload = QueryPayload {
                group_id,
                request_id: 1,
                deadline_ms: 0,
                trace: TraceContext::new(1, 1, false),
                location_sets: sets.iter().map(|s| s.to_wire()).collect(),
                query: ctx.plan.query.to_wire(),
            }
            .encode();
            write_frame(&mut stream, FrameType::Query, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::ReplayedRequestId => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            // Establish a high-water mark with an honest query...
            write_frame(
                &mut stream,
                FrameType::Query,
                &ctx.honest_query(group_id, 7),
            )?;
            match probe(&mut stream) {
                MalloryOutcome::Answered => {}
                other => return Ok(other), // shed/error already typed
            }
            // ...then rewind to an ID the session never saw answered.
            write_frame(
                &mut stream,
                FrameType::Query,
                &ctx.honest_query(group_id, 3),
            )?;
            Ok(probe(&mut stream))
        }
        Attack::SessionFlood => {
            let mut rejected = false;
            for i in 0..ctx.flood_sessions {
                let flood_id = hostile_group_id(run_seed.wrapping_add(1 + i as u64));
                match handshake(&mut stream, &ctx.hello(flood_id))? {
                    None => {}
                    Some(MalloryOutcome::TypedError(code)) => {
                        rejected = true;
                        if code != ErrorCode::QuotaExceeded {
                            return Ok(MalloryOutcome::TypedError(code));
                        }
                    }
                    Some(MalloryOutcome::Shed) => rejected = true,
                    Some(other) => return Ok(other),
                }
            }
            Ok(if rejected {
                MalloryOutcome::TypedError(ErrorCode::QuotaExceeded)
            } else {
                MalloryOutcome::AckedAll
            })
        }
        Attack::SlowWriter => {
            // Start a legitimate-looking frame, then dribble: one header
            // byte, a stall past the server's whole-frame deadline, then
            // an attempt to finish. A hardened server reaps us.
            let payload = ctx.hello(group_id).encode();
            let buf = raw_frame(
                VERSION,
                FrameType::Hello.to_u8(),
                payload.len() as u32,
                crc32(&payload),
                &payload,
            );
            stream.write_all(&buf[..5])?;
            stream.flush()?;
            std::thread::sleep(ctx.slow_stall);
            match stream.write_all(&buf[5..]).and_then(|_| stream.flush()) {
                Ok(()) => Ok(probe(&mut stream)),
                // The reaper already closed our socket mid-dribble.
                Err(e) => Ok(classify_transport(ServerError::Io(e))),
            }
        }
        Attack::SubscribeFlood => {
            // Standing queries pin registry slots until unsubscribed;
            // flood distinct groups and never unsubscribe. A hardened
            // server turns the overflow away with a typed violation
            // *before* spending worker time on the query.
            for i in 0..ctx.flood_subscriptions {
                let flood_id = hostile_group_id(run_seed.wrapping_add(0x5b5c + i as u64));
                if let Some(early) = handshake(&mut stream, &ctx.hello(flood_id))? {
                    return Ok(early);
                }
                write_frame(
                    &mut stream,
                    FrameType::Subscribe,
                    &ctx.honest_query(flood_id, 1),
                )?;
                // A grant is Answer then SubscriptionUpdate; anything
                // typed before the answer is the cap doing its job.
                match probe(&mut stream) {
                    MalloryOutcome::Answered => {}
                    other => return Ok(other),
                }
                match read_frame(&mut stream, crate::frame::DEFAULT_MAX_PAYLOAD) {
                    Ok(f) if f.frame_type == FrameType::SubscriptionUpdate => {}
                    Ok(f) => {
                        return Ok(MalloryOutcome::Aborted(format!(
                            "unexpected {:?} after subscribe answer",
                            f.frame_type
                        )))
                    }
                    Err(e) => return Ok(classify_transport(e)),
                }
            }
            Ok(MalloryOutcome::AckedAll)
        }
        Attack::ForgedPoiUpdate => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            // A guessed token against the admin lane. The server must
            // refuse it identically whether the world is static or
            // dynamic — the check runs before the lane is revealed.
            let payload = PoiUpdatePayload {
                admin_token: run_seed ^ 0x5ca1_ab1e_0ddb_a11c,
                request_id: 1,
                ops: vec![PoiOp::Insert(Poi::new(u32::MAX, Point::new(0.5, 0.5)))],
            }
            .encode();
            write_frame(&mut stream, FrameType::PoiUpdate, &payload)?;
            Ok(probe(&mut stream))
        }
        Attack::StaleAdminReplay => {
            if let Some(early) = handshake(&mut stream, &ctx.hello(group_id))? {
                return Ok(early);
            }
            // A net-zero batch (insert a far-corner POI, remove it in
            // the same batch): bumps the version like any admitted
            // batch but leaves every concurrent oracle untouched.
            let ops = vec![
                PoiOp::Insert(Poi::new(0xFFFF_FFFE, Point::new(0.999_999, 0.999_999))),
                PoiOp::Remove(0xFFFF_FFFE),
            ];
            let request_id = (run_seed as u32) | 1;
            if let Some(token) = ctx.admin_token {
                // The captured exchange: send once honestly...
                let payload = PoiUpdatePayload {
                    admin_token: token,
                    request_id,
                    ops: ops.clone(),
                }
                .encode();
                write_frame(&mut stream, FrameType::PoiUpdate, &payload)?;
                let first = match read_poi_ack(&mut stream) {
                    Ok(ack) => ack,
                    Err(outcome) => return Ok(outcome),
                };
                // ...then replay the identical bytes. Anything but the
                // original version + apply count is a double
                // application — a leak despite the valid token.
                write_frame(&mut stream, FrameType::PoiUpdate, &payload)?;
                match read_poi_ack(&mut stream) {
                    Ok(second)
                        if second.version == first.version && second.applied == first.applied => {}
                    Ok(_) => return Ok(MalloryOutcome::Answered),
                    Err(outcome) => return Ok(outcome),
                }
            }
            // With or without a capture, a replay under a forged token
            // must still draw the typed violation — dedup runs *after*
            // the token gate, never instead of it.
            let forged = PoiUpdatePayload {
                admin_token: run_seed ^ 0x5ca1_ab1e_0ddb_a11c,
                request_id,
                ops,
            }
            .encode();
            write_frame(&mut stream, FrameType::PoiUpdate, &forged)?;
            match probe(&mut stream) {
                // Honest replay deduped AND forged replay refused: the
                // full containment story for this attack.
                MalloryOutcome::TypedError(_) if ctx.admin_token.is_some() => {
                    Ok(MalloryOutcome::Idempotent)
                }
                other => Ok(other),
            }
        }
    }
}

/// Reads the server's reply to an honest-token `PoiUpdate`: the ack on
/// success, or the classified outcome (typed error, shed, transport)
/// when the exchange ends some other way.
fn read_poi_ack(stream: &mut TcpStream) -> Result<PoiUpdateAckPayload, MalloryOutcome> {
    match read_frame(stream, crate::frame::DEFAULT_MAX_PAYLOAD) {
        Ok(frame) => match frame.frame_type {
            FrameType::PoiUpdateAck => PoiUpdateAckPayload::decode(&frame.payload)
                .map_err(|e| MalloryOutcome::Aborted(format!("undecodable ack: {e}"))),
            FrameType::Error => match crate::frame::ErrorPayload::decode(&frame.payload) {
                Ok(err) => Err(MalloryOutcome::TypedError(err.code)),
                Err(e) => Err(MalloryOutcome::Aborted(format!(
                    "undecodable error frame: {e}"
                ))),
            },
            FrameType::Busy => Err(MalloryOutcome::Shed),
            FrameType::Goodbye => Err(MalloryOutcome::Disconnected),
            other => Err(MalloryOutcome::Aborted(format!(
                "unexpected {other:?} frame awaiting ack"
            ))),
        },
        Err(e) => Err(classify_transport(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_complete_and_displayable() {
        assert_eq!(ATTACK_CATALOG.len(), 18);
        let mut names: Vec<String> = ATTACK_CATALOG.iter().map(|a| a.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ATTACK_CATALOG.len(), "duplicate attack names");
    }

    #[test]
    fn attack_context_builds_valid_material() {
        let ctx = AttackContext::new(11).unwrap();
        // The honest payload passes the same gate the server runs.
        let sets = &ctx.plan.location_sets;
        assert_eq!(sets.len(), ctx.params.n_users);
        crate::validate::validate_query(&ctx.params, &ctx.plan.query, sets).unwrap();
        // The forged zero ciphertext fails it.
        let forged = ctx.forged_query(1, 1, BigUint::zero());
        let decoded = QueryPayload::decode(&forged[..]).unwrap();
        let wire_ctx = ctx.params.wire_context();
        let bad_query =
            ppgnn_core::messages::QueryMessage::from_wire(&decoded.query, &wire_ctx).unwrap();
        assert!(matches!(
            crate::validate::validate_query(&ctx.params, &bad_query, sets),
            Err(crate::validate::ProtocolViolation::InvalidCiphertext { .. })
        ));
    }

    #[test]
    fn hostile_group_ids_carry_the_tag() {
        assert_eq!(hostile_group_id(0) >> 48, 0x4d41);
        assert_eq!(hostile_group_id(u64::MAX) >> 48, 0x4d41);
    }
}
