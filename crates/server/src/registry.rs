//! The session registry: negotiated public parameters per group.
//!
//! Wire messages are only decodable under the session's public context
//! (key size, indicator shape, partition presence). The registry is the
//! server-global map from group ID to that context, written by `Hello`
//! handshakes and read on every query — so a group may reconnect on a
//! fresh TCP connection and keep querying without re-negotiating.
//!
//! Each session also keeps a small **answer cache** keyed by request
//! ID. A client that never saw its answer (the connection died between
//! send and reply) retries the *same* request ID; the cache replays the
//! stored ciphertext instead of re-running the query, which keeps
//! retries idempotent: the query counter moves once per distinct
//! request, and the replayed bytes are identical to the originals.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use ppgnn_core::wire::WireContext;

use crate::frame::HelloPayload;

/// The negotiated public parameters of one group session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Paillier key size in bits.
    pub key_bits: usize,
    /// Variant tag from the handshake (0 = Plain, 1 = Opt, 2 = Naive).
    pub variant: u8,
    /// Two-phase outer block count; `None` for a plain indicator.
    pub two_phase_omega: Option<usize>,
    /// Whether queries carry a partition block.
    pub has_partition: bool,
}

impl SessionParams {
    /// Builds the params from a `Hello` payload.
    pub fn from_hello(hello: &HelloPayload) -> Self {
        SessionParams {
            key_bits: hello.key_bits as usize,
            variant: hello.variant,
            two_phase_omega: (hello.omega > 0).then_some(hello.omega as usize),
            has_partition: hello.has_partition,
        }
    }

    /// The wire decode context these params imply.
    pub fn wire_context(&self) -> WireContext {
        WireContext {
            key_bits: self.key_bits,
            two_phase_omega: self.two_phase_omega,
            has_partition: self.has_partition,
        }
    }
}

/// Answers remembered per session for idempotent retries. Old entries
/// are evicted in insertion order past this cap; a client retry that
/// outlives the cache simply re-runs the query.
const ANSWER_CACHE_CAP: usize = 32;

/// One answer held for replay.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Whether the answer is doubly encrypted (PPGNN-OPT).
    pub two_phase: bool,
    /// The encoded [`ppgnn_core::messages::AnswerMessage`] bytes,
    /// byte-identical to what the first reply carried.
    pub answer: Vec<u8>,
}

#[derive(Debug, Clone)]
struct SessionEntry {
    params: SessionParams,
    queries: u64,
    answers: HashMap<u32, CachedAnswer>,
    answer_order: VecDeque<u32>,
}

impl SessionEntry {
    fn new(params: SessionParams) -> Self {
        SessionEntry {
            params,
            queries: 0,
            answers: HashMap::new(),
            answer_order: VecDeque::new(),
        }
    }
}

/// Server-global map of negotiated sessions, keyed by group ID.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    inner: Mutex<HashMap<u64, SessionEntry>>,
}

/// Recovers the map from a poisoned lock: every critical section here
/// upholds the entry invariants before any point that can panic, so
/// the data is still consistent and the service can keep going.
fn lock(
    m: &Mutex<HashMap<u64, SessionEntry>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, SessionEntry>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-negotiates) a group session. Re-registration
    /// replaces the parameters but keeps the query count and cache.
    pub fn register(&self, group_id: u64, params: SessionParams) {
        let mut map = lock(&self.inner);
        map.entry(group_id)
            .and_modify(|e| e.params = params)
            .or_insert_with(|| SessionEntry::new(params));
    }

    /// Looks up a session's parameters.
    pub fn get(&self, group_id: u64) -> Option<SessionParams> {
        lock(&self.inner).get(&group_id).map(|e| e.params)
    }

    /// Records one served query and caches its answer for replay.
    ///
    /// Returns `true` if the request ID was new (the query counter
    /// moved); `false` if it was already recorded — a retry that raced
    /// the original, which must not double-count.
    pub fn record_answer(
        &self,
        group_id: u64,
        request_id: u32,
        two_phase: bool,
        answer: &[u8],
    ) -> bool {
        let mut map = lock(&self.inner);
        let Some(e) = map.get_mut(&group_id) else {
            return false;
        };
        if e.answers.contains_key(&request_id) {
            return false;
        }
        e.queries += 1;
        e.answers.insert(
            request_id,
            CachedAnswer {
                two_phase,
                answer: answer.to_vec(),
            },
        );
        e.answer_order.push_back(request_id);
        while e.answer_order.len() > ANSWER_CACHE_CAP {
            if let Some(old) = e.answer_order.pop_front() {
                e.answers.remove(&old);
            }
        }
        true
    }

    /// Looks up a cached answer for an idempotent retry.
    pub fn cached_answer(&self, group_id: u64, request_id: u32) -> Option<CachedAnswer> {
        lock(&self.inner)
            .get(&group_id)
            .and_then(|e| e.answers.get(&request_id))
            .cloned()
    }

    /// Queries served for one group so far (distinct request IDs).
    pub fn queries_served(&self, group_id: u64) -> u64 {
        lock(&self.inner)
            .get(&group_id)
            .map(|e| e.queries)
            .unwrap_or(0)
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(key_bits: usize, omega: Option<usize>) -> SessionParams {
        SessionParams {
            key_bits,
            variant: 0,
            two_phase_omega: omega,
            has_partition: true,
        }
    }

    #[test]
    fn register_lookup_and_count() {
        let reg = SessionRegistry::new();
        assert!(reg.get(7).is_none());
        reg.register(7, params(128, None));
        assert_eq!(reg.get(7).unwrap().key_bits, 128);
        assert!(reg.record_answer(7, 1, false, &[1]));
        assert!(reg.record_answer(7, 2, false, &[2]));
        assert_eq!(reg.queries_served(7), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn renegotiation_replaces_params_keeps_count() {
        let reg = SessionRegistry::new();
        reg.register(7, params(128, None));
        assert!(reg.record_answer(7, 1, false, &[1]));
        reg.register(7, params(256, Some(5)));
        let p = reg.get(7).unwrap();
        assert_eq!(p.key_bits, 256);
        assert_eq!(p.two_phase_omega, Some(5));
        assert_eq!(reg.queries_served(7), 1);
        // The answer cache also survives the re-handshake.
        assert_eq!(reg.cached_answer(7, 1).unwrap().answer, vec![1]);
    }

    #[test]
    fn replay_is_idempotent_and_byte_identical() {
        let reg = SessionRegistry::new();
        reg.register(3, params(128, None));
        assert!(reg.record_answer(3, 9, true, &[0xaa, 0xbb]));
        // A retry of the same request must not move the counter...
        assert!(!reg.record_answer(3, 9, true, &[0xaa, 0xbb]));
        assert_eq!(reg.queries_served(3), 1);
        // ...and the cached bytes are exactly the originals.
        let hit = reg.cached_answer(3, 9).unwrap();
        assert!(hit.two_phase);
        assert_eq!(hit.answer, vec![0xaa, 0xbb]);
        assert!(reg.cached_answer(3, 10).is_none());
        assert!(reg.cached_answer(4, 9).is_none());
    }

    #[test]
    fn answer_cache_evicts_oldest() {
        let reg = SessionRegistry::new();
        reg.register(1, params(128, None));
        for id in 0..(super::ANSWER_CACHE_CAP as u32 + 5) {
            assert!(reg.record_answer(1, id, false, &[id as u8]));
        }
        // The oldest entries fell out; the newest are still there.
        assert!(reg.cached_answer(1, 0).is_none());
        assert!(reg.cached_answer(1, 4).is_none());
        assert!(reg.cached_answer(1, 5).is_some());
        // Eviction does not reset the query counter...
        assert_eq!(reg.queries_served(1), super::ANSWER_CACHE_CAP as u64 + 5);
        // ...but an evicted request ID may be re-recorded (and then
        // counts again: the cap bounds memory, not exactness).
        assert!(reg.record_answer(1, 0, false, &[0]));
    }

    #[test]
    fn hello_maps_to_wire_context() {
        let hello = crate::frame::HelloPayload {
            group_id: 1,
            key_bits: 128,
            variant: 1,
            omega: 6,
            has_partition: true,
        };
        let ctx = SessionParams::from_hello(&hello).wire_context();
        assert_eq!(ctx.key_bits, 128);
        assert_eq!(ctx.two_phase_omega, Some(6));
        assert!(ctx.has_partition);
    }
}
