//! The session registry: negotiated public parameters per group.
//!
//! Wire messages are only decodable under the session's public context
//! (key size, indicator shape, partition presence). The registry is the
//! server-global map from group ID to that context, written by `Hello`
//! handshakes and read on every query — so a group may reconnect on a
//! fresh TCP connection and keep querying without re-negotiating.
//!
//! Each session also keeps a small **answer cache** keyed by request
//! ID. A client that never saw its answer (the connection died between
//! send and reply) retries the *same* request ID; the cache replays the
//! stored ciphertext instead of re-running the query, which keeps
//! retries idempotent: the query counter moves once per distinct
//! request, and the replayed bytes are identical to the originals.
//!
//! The registry is also the server's **admission-control ledger**: the
//! session table is bounded (`RegistryLimits::max_sessions`), entries
//! idle past the TTL are evicted to make room, and each session tracks
//! the highest request ID served plus a strike counter fed by the
//! validation gate — a hostile client can neither grow the table
//! without bound nor rewind its request IDs.
//!
//! ## Panic policy
//!
//! No production path in this module panics: the shared-map guard
//! recovers from mutex poisoning instead of unwrapping (see the
//! private `lock` helper — every critical section leaves the map
//! consistent), and
//! the per-session counter reads fall back to zero for unknown groups.
//! Bare `unwrap`/`expect` appears only under `#[cfg(test)]`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ppgnn_core::wire::WireContext;

use crate::frame::HelloPayload;

/// The negotiated public parameters of one group session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Paillier key size in bits.
    pub key_bits: usize,
    /// Variant tag from the handshake (0 = Plain, 1 = Opt, 2 = Naive).
    pub variant: u8,
    /// Two-phase outer block count; `None` for a plain indicator.
    pub two_phase_omega: Option<usize>,
    /// Whether queries carry a partition block.
    pub has_partition: bool,
    /// Number of users in the group (= location sets per query).
    pub n_users: usize,
    /// Candidate-set size δ the group committed to at handshake.
    pub delta: usize,
    /// Neighbors requested per query.
    pub k: usize,
    /// Per-user dummy-set size d (equals δ for Naive).
    pub d: usize,
}

impl SessionParams {
    /// Builds the params from a `Hello` payload.
    pub fn from_hello(hello: &HelloPayload) -> Self {
        SessionParams {
            key_bits: hello.key_bits as usize,
            variant: hello.variant,
            two_phase_omega: (hello.omega > 0).then_some(hello.omega as usize),
            has_partition: hello.has_partition,
            n_users: hello.n_users as usize,
            delta: hello.delta as usize,
            k: hello.k as usize,
            d: hello.d as usize,
        }
    }

    /// The wire decode context these params imply.
    pub fn wire_context(&self) -> WireContext {
        WireContext {
            key_bits: self.key_bits,
            two_phase_omega: self.two_phase_omega,
            has_partition: self.has_partition,
        }
    }
}

/// Answers remembered per session for idempotent retries. Old entries
/// are evicted in insertion order past this cap; a client retry that
/// outlives the cache simply re-runs the query.
const ANSWER_CACHE_CAP: usize = 32;

/// One answer held for replay.
#[derive(Debug, Clone)]
pub struct CachedAnswer {
    /// Whether the answer is doubly encrypted (PPGNN-OPT).
    pub two_phase: bool,
    /// The encoded [`ppgnn_core::messages::AnswerMessage`] bytes,
    /// byte-identical to what the first reply carried.
    pub answer: Vec<u8>,
}

/// Admission refused: the table is at `max_sessions` live sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTableFull;

/// Caps on the session table.
#[derive(Debug, Clone, Copy)]
pub struct RegistryLimits {
    /// Most sessions held at once; `Hello`s past the cap are rejected
    /// once no idle entry can be evicted.
    pub max_sessions: usize,
    /// Sessions idle longer than this are evicted to make room.
    pub idle_ttl: Duration,
}

impl Default for RegistryLimits {
    fn default() -> Self {
        RegistryLimits {
            max_sessions: usize::MAX,
            idle_ttl: Duration::MAX,
        }
    }
}

#[derive(Debug, Clone)]
struct SessionEntry {
    params: SessionParams,
    queries: u64,
    answers: HashMap<u32, CachedAnswer>,
    answer_order: VecDeque<u32>,
    last_seen: Instant,
    /// Highest request ID admitted so far (0 = none yet; clients
    /// number requests from 1).
    max_request_id: u32,
    strikes: u32,
    violations: u64,
}

impl SessionEntry {
    fn new(params: SessionParams, now: Instant) -> Self {
        SessionEntry {
            params,
            queries: 0,
            answers: HashMap::new(),
            answer_order: VecDeque::new(),
            last_seen: now,
            max_request_id: 0,
            strikes: 0,
            violations: 0,
        }
    }
}

/// Server-global map of negotiated sessions, keyed by group ID.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    inner: Mutex<HashMap<u64, SessionEntry>>,
    limits: RegistryLimits,
    evicted: AtomicU64,
    rejected: AtomicU64,
    violations: AtomicU64,
}

/// Recovers the map from a poisoned lock: every critical section here
/// upholds the entry invariants before any point that can panic, so
/// the data is still consistent and the service can keep going.
fn lock(
    m: &Mutex<HashMap<u64, SessionEntry>>,
) -> std::sync::MutexGuard<'_, HashMap<u64, SessionEntry>> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl SessionRegistry {
    /// Creates an unbounded registry (tests, embedded use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry with admission limits.
    pub fn with_limits(limits: RegistryLimits) -> Self {
        SessionRegistry {
            limits,
            ..Self::default()
        }
    }

    fn evict_expired(&self, map: &mut HashMap<u64, SessionEntry>, now: Instant) {
        if self.limits.idle_ttl == Duration::MAX {
            return;
        }
        let ttl = self.limits.idle_ttl;
        let before = map.len();
        map.retain(|_, e| now.saturating_duration_since(e.last_seen) <= ttl);
        let gone = (before - map.len()) as u64;
        if gone > 0 {
            self.evicted.fetch_add(gone, Ordering::Relaxed);
        }
    }

    /// Registers (or re-negotiates) a group session. Re-registration
    /// replaces the parameters but keeps the query count and cache.
    ///
    /// A new group is admitted only under `max_sessions`; idle entries
    /// are evicted first, and `Err(SessionTableFull)` means the table
    /// is genuinely full of live sessions — the caller should refuse
    /// the handshake.
    pub fn register(&self, group_id: u64, params: SessionParams) -> Result<(), SessionTableFull> {
        let now = Instant::now();
        let mut map = lock(&self.inner);
        if let Some(e) = map.get_mut(&group_id) {
            e.params = params;
            e.last_seen = now;
            return Ok(());
        }
        self.evict_expired(&mut map, now);
        if map.len() >= self.limits.max_sessions {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SessionTableFull);
        }
        map.insert(group_id, SessionEntry::new(params, now));
        Ok(())
    }

    /// Looks up a session's parameters, refreshing its idle clock.
    pub fn get(&self, group_id: u64) -> Option<SessionParams> {
        let now = Instant::now();
        lock(&self.inner).get_mut(&group_id).map(|e| {
            e.last_seen = now;
            e.params
        })
    }

    /// Evicts every session idle past the TTL; returns how many went.
    /// The server's supervisor calls this periodically so the table
    /// shrinks even when no new `Hello` arrives to trigger eviction.
    pub fn sweep_idle(&self) -> usize {
        let now = Instant::now();
        let mut map = lock(&self.inner);
        let before = map.len();
        self.evict_expired(&mut map, now);
        before - map.len()
    }

    /// Enforces per-session request-id monotonicity. An ID equal to
    /// the highest seen is admitted (the legitimate retry of the
    /// latest in-flight request — older retries are served from the
    /// answer cache before this check); an ID *below* it is a rewind
    /// and is rejected with the current high-water mark.
    pub fn admit_request_id(&self, group_id: u64, request_id: u32) -> Result<(), u32> {
        let mut map = lock(&self.inner);
        let Some(e) = map.get_mut(&group_id) else {
            return Ok(());
        };
        if request_id < e.max_request_id {
            return Err(e.max_request_id);
        }
        e.max_request_id = request_id;
        Ok(())
    }

    /// Counts one violation that has no session to pin it on —
    /// frame-layer garbage arriving before any handshake.
    pub fn count_violation(&self) {
        self.violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one validation-gate violation against the session and
    /// returns its running strike total. Unknown groups still count
    /// toward the global tally (pre-handshake abuse) but hold no
    /// per-session state.
    pub fn strike(&self, group_id: u64) -> u32 {
        self.violations.fetch_add(1, Ordering::Relaxed);
        let mut map = lock(&self.inner);
        match map.get_mut(&group_id) {
            Some(e) => {
                e.strikes += 1;
                e.violations += 1;
                e.strikes
            }
            None => 0,
        }
    }

    /// Clears a session's strike counter — called when the connection
    /// it escalated on is dropped (the penalty is the disconnect, not
    /// a permanent ban) and after each fresh answered query.
    pub fn reset_strikes(&self, group_id: u64) {
        if let Some(e) = lock(&self.inner).get_mut(&group_id) {
            e.strikes = 0;
        }
    }

    /// Lifetime violation count for one session.
    pub fn session_violations(&self, group_id: u64) -> u64 {
        lock(&self.inner)
            .get(&group_id)
            .map(|e| e.violations)
            .unwrap_or(0)
    }

    /// Sessions evicted for idling past the TTL, since startup.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Hellos refused because the table was full, since startup.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Validation-gate violations across all sessions, since startup.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Records one served query and caches its answer for replay.
    ///
    /// Returns `true` if the request ID was new (the query counter
    /// moved); `false` if it was already recorded — a retry that raced
    /// the original, which must not double-count.
    pub fn record_answer(
        &self,
        group_id: u64,
        request_id: u32,
        two_phase: bool,
        answer: &[u8],
    ) -> bool {
        let mut map = lock(&self.inner);
        let Some(e) = map.get_mut(&group_id) else {
            return false;
        };
        e.last_seen = Instant::now();
        if e.answers.contains_key(&request_id) {
            return false;
        }
        e.queries += 1;
        e.answers.insert(
            request_id,
            CachedAnswer {
                two_phase,
                answer: answer.to_vec(),
            },
        );
        e.answer_order.push_back(request_id);
        while e.answer_order.len() > ANSWER_CACHE_CAP {
            if let Some(old) = e.answer_order.pop_front() {
                e.answers.remove(&old);
            }
        }
        true
    }

    /// Looks up a cached answer for an idempotent retry.
    pub fn cached_answer(&self, group_id: u64, request_id: u32) -> Option<CachedAnswer> {
        lock(&self.inner)
            .get(&group_id)
            .and_then(|e| e.answers.get(&request_id))
            .cloned()
    }

    /// Queries served for one group so far (distinct request IDs).
    pub fn queries_served(&self, group_id: u64) -> u64 {
        lock(&self.inner)
            .get(&group_id)
            .map(|e| e.queries)
            .unwrap_or(0)
    }

    /// Number of registered sessions.
    /// The most common key size among live sessions, weighted by
    /// queries served — the key size the cost model attributes the
    /// current window's work to. `None` when the table is empty.
    pub fn dominant_key_bits(&self) -> Option<u32> {
        let map = lock(&self.inner);
        let mut weights: HashMap<usize, u64> = HashMap::new();
        for entry in map.values() {
            // `+1` so fresh sessions that have not queried yet still
            // vote, otherwise an empty-weight tie hides them all.
            *weights.entry(entry.params.key_bits).or_insert(0) += entry.queries + 1;
        }
        weights
            .into_iter()
            .max_by_key(|&(bits, weight)| (weight, bits))
            .map(|(bits, _)| bits as u32)
    }

    pub fn len(&self) -> usize {
        lock(&self.inner).len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(key_bits: usize, omega: Option<usize>) -> SessionParams {
        SessionParams {
            key_bits,
            variant: 0,
            two_phase_omega: omega,
            has_partition: true,
            n_users: 3,
            delta: 8,
            k: 2,
            d: 4,
        }
    }

    #[test]
    fn register_lookup_and_count() {
        let reg = SessionRegistry::new();
        assert!(reg.get(7).is_none());
        reg.register(7, params(128, None)).unwrap();
        assert_eq!(reg.get(7).unwrap().key_bits, 128);
        assert!(reg.record_answer(7, 1, false, &[1]));
        assert!(reg.record_answer(7, 2, false, &[2]));
        assert_eq!(reg.queries_served(7), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn renegotiation_replaces_params_keeps_count() {
        let reg = SessionRegistry::new();
        reg.register(7, params(128, None)).unwrap();
        assert!(reg.record_answer(7, 1, false, &[1]));
        reg.register(7, params(256, Some(5))).unwrap();
        let p = reg.get(7).unwrap();
        assert_eq!(p.key_bits, 256);
        assert_eq!(p.two_phase_omega, Some(5));
        assert_eq!(reg.queries_served(7), 1);
        // The answer cache also survives the re-handshake.
        assert_eq!(reg.cached_answer(7, 1).unwrap().answer, vec![1]);
    }

    #[test]
    fn replay_is_idempotent_and_byte_identical() {
        let reg = SessionRegistry::new();
        reg.register(3, params(128, None)).unwrap();
        assert!(reg.record_answer(3, 9, true, &[0xaa, 0xbb]));
        // A retry of the same request must not move the counter...
        assert!(!reg.record_answer(3, 9, true, &[0xaa, 0xbb]));
        assert_eq!(reg.queries_served(3), 1);
        // ...and the cached bytes are exactly the originals.
        let hit = reg.cached_answer(3, 9).unwrap();
        assert!(hit.two_phase);
        assert_eq!(hit.answer, vec![0xaa, 0xbb]);
        assert!(reg.cached_answer(3, 10).is_none());
        assert!(reg.cached_answer(4, 9).is_none());
    }

    #[test]
    fn answer_cache_evicts_oldest() {
        let reg = SessionRegistry::new();
        reg.register(1, params(128, None)).unwrap();
        for id in 0..(super::ANSWER_CACHE_CAP as u32 + 5) {
            assert!(reg.record_answer(1, id, false, &[id as u8]));
        }
        // The oldest entries fell out; the newest are still there.
        assert!(reg.cached_answer(1, 0).is_none());
        assert!(reg.cached_answer(1, 4).is_none());
        assert!(reg.cached_answer(1, 5).is_some());
        // Eviction does not reset the query counter...
        assert_eq!(reg.queries_served(1), super::ANSWER_CACHE_CAP as u64 + 5);
        // ...but an evicted request ID may be re-recorded (and then
        // counts again: the cap bounds memory, not exactness).
        assert!(reg.record_answer(1, 0, false, &[0]));
    }

    #[test]
    fn hello_maps_to_wire_context() {
        let hello = crate::frame::HelloPayload {
            group_id: 1,
            key_bits: 128,
            variant: 1,
            omega: 6,
            has_partition: true,
            n_users: 4,
            delta: 10,
            k: 2,
            d: 5,
        };
        let p = SessionParams::from_hello(&hello);
        assert_eq!((p.n_users, p.delta, p.k, p.d), (4, 10, 2, 5));
        let ctx = p.wire_context();
        assert_eq!(ctx.key_bits, 128);
        assert_eq!(ctx.two_phase_omega, Some(6));
        assert!(ctx.has_partition);
    }

    #[test]
    fn session_cap_rejects_when_full_of_live_sessions() {
        let reg = SessionRegistry::with_limits(RegistryLimits {
            max_sessions: 2,
            idle_ttl: Duration::from_secs(3600),
        });
        reg.register(1, params(128, None)).unwrap();
        reg.register(2, params(128, None)).unwrap();
        assert!(reg.register(3, params(128, None)).is_err());
        assert_eq!(reg.rejected(), 1);
        assert_eq!(reg.len(), 2);
        // Re-registration of a live group is never a new admission.
        assert!(reg.register(2, params(256, None)).is_ok());
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn idle_sessions_evicted_to_make_room() {
        let reg = SessionRegistry::with_limits(RegistryLimits {
            max_sessions: 1,
            idle_ttl: Duration::ZERO,
        });
        reg.register(1, params(128, None)).unwrap();
        // TTL zero: the moment any time passes, group 1 is idle and a
        // new registration evicts it rather than being rejected.
        std::thread::sleep(Duration::from_millis(5));
        reg.register(2, params(128, None)).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get(1).is_none());
        assert_eq!(reg.evicted(), 1);
        assert_eq!(reg.rejected(), 0);
    }

    #[test]
    fn sweep_idle_shrinks_without_new_hellos() {
        let reg = SessionRegistry::with_limits(RegistryLimits {
            max_sessions: 8,
            idle_ttl: Duration::from_millis(5),
        });
        reg.register(1, params(128, None)).unwrap();
        reg.register(2, params(128, None)).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(reg.sweep_idle(), 2);
        assert!(reg.is_empty());
        assert_eq!(reg.evicted(), 2);
    }

    #[test]
    fn request_ids_must_be_monotone() {
        let reg = SessionRegistry::new();
        reg.register(1, params(128, None)).unwrap();
        assert!(reg.admit_request_id(1, 5).is_ok());
        // Equal = retry of the latest request: admitted.
        assert!(reg.admit_request_id(1, 5).is_ok());
        assert!(reg.admit_request_id(1, 6).is_ok());
        // Rewind: rejected with the high-water mark.
        assert_eq!(reg.admit_request_id(1, 3), Err(6));
        // Unknown groups pass through (NoSession is caught elsewhere).
        assert!(reg.admit_request_id(99, 1).is_ok());
    }

    #[test]
    fn strikes_accumulate_and_reset() {
        let reg = SessionRegistry::new();
        reg.register(1, params(128, None)).unwrap();
        assert_eq!(reg.strike(1), 1);
        assert_eq!(reg.strike(1), 2);
        assert_eq!(reg.session_violations(1), 2);
        assert_eq!(reg.violations(), 2);
        reg.reset_strikes(1);
        // Strikes clear; the violation tally is forever.
        assert_eq!(reg.strike(1), 1);
        assert_eq!(reg.session_violations(1), 3);
        // Pre-handshake abuse still counts globally.
        assert_eq!(reg.strike(42), 0);
        assert_eq!(reg.violations(), 4);
    }
}
