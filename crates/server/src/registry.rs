//! The session registry: negotiated public parameters per group.
//!
//! Wire messages are only decodable under the session's public context
//! (key size, indicator shape, partition presence). The registry is the
//! server-global map from group ID to that context, written by `Hello`
//! handshakes and read on every query — so a group may reconnect on a
//! fresh TCP connection and keep querying without re-negotiating.

use std::collections::HashMap;
use std::sync::Mutex;

use ppgnn_core::wire::WireContext;

use crate::frame::HelloPayload;

/// The negotiated public parameters of one group session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Paillier key size in bits.
    pub key_bits: usize,
    /// Variant tag from the handshake (0 = Plain, 1 = Opt, 2 = Naive).
    pub variant: u8,
    /// Two-phase outer block count; `None` for a plain indicator.
    pub two_phase_omega: Option<usize>,
    /// Whether queries carry a partition block.
    pub has_partition: bool,
}

impl SessionParams {
    /// Builds the params from a `Hello` payload.
    pub fn from_hello(hello: &HelloPayload) -> Self {
        SessionParams {
            key_bits: hello.key_bits as usize,
            variant: hello.variant,
            two_phase_omega: (hello.omega > 0).then_some(hello.omega as usize),
            has_partition: hello.has_partition,
        }
    }

    /// The wire decode context these params imply.
    pub fn wire_context(&self) -> WireContext {
        WireContext {
            key_bits: self.key_bits,
            two_phase_omega: self.two_phase_omega,
            has_partition: self.has_partition,
        }
    }
}

#[derive(Debug, Clone)]
struct SessionEntry {
    params: SessionParams,
    queries: u64,
}

/// Server-global map of negotiated sessions, keyed by group ID.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    inner: Mutex<HashMap<u64, SessionEntry>>,
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-negotiates) a group session. Re-registration
    /// replaces the parameters but keeps the query count.
    pub fn register(&self, group_id: u64, params: SessionParams) {
        let mut map = self.inner.lock().expect("registry poisoned");
        map.entry(group_id)
            .and_modify(|e| e.params = params)
            .or_insert(SessionEntry { params, queries: 0 });
    }

    /// Looks up a session's parameters.
    pub fn get(&self, group_id: u64) -> Option<SessionParams> {
        self.inner
            .lock()
            .expect("registry poisoned")
            .get(&group_id)
            .map(|e| e.params)
    }

    /// Counts one served query against a session.
    pub fn record_query(&self, group_id: u64) {
        if let Some(e) = self
            .inner
            .lock()
            .expect("registry poisoned")
            .get_mut(&group_id)
        {
            e.queries += 1;
        }
    }

    /// Queries served for one group so far.
    pub fn queries_served(&self, group_id: u64) -> u64 {
        self.inner
            .lock()
            .expect("registry poisoned")
            .get(&group_id)
            .map(|e| e.queries)
            .unwrap_or(0)
    }

    /// Number of registered sessions.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("registry poisoned").len()
    }

    /// Whether no session is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(key_bits: usize, omega: Option<usize>) -> SessionParams {
        SessionParams {
            key_bits,
            variant: 0,
            two_phase_omega: omega,
            has_partition: true,
        }
    }

    #[test]
    fn register_lookup_and_count() {
        let reg = SessionRegistry::new();
        assert!(reg.get(7).is_none());
        reg.register(7, params(128, None));
        assert_eq!(reg.get(7).unwrap().key_bits, 128);
        reg.record_query(7);
        reg.record_query(7);
        assert_eq!(reg.queries_served(7), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn renegotiation_replaces_params_keeps_count() {
        let reg = SessionRegistry::new();
        reg.register(7, params(128, None));
        reg.record_query(7);
        reg.register(7, params(256, Some(5)));
        let p = reg.get(7).unwrap();
        assert_eq!(p.key_bits, 256);
        assert_eq!(p.two_phase_omega, Some(5));
        assert_eq!(reg.queries_served(7), 1);
    }

    #[test]
    fn hello_maps_to_wire_context() {
        let hello = crate::frame::HelloPayload {
            group_id: 1,
            key_bits: 128,
            variant: 1,
            omega: 6,
            has_partition: true,
        };
        let ctx = SessionParams::from_hello(&hello).wire_context();
        assert_eq!(ctx.key_bits, 128);
        assert_eq!(ctx.two_phase_omega, Some(6));
        assert!(ctx.has_partition);
    }
}
