//! The networked LSP: TCP acceptor, bounded worker pool, backpressure,
//! deadlines, supervision, and graceful drain.
//!
//! Threading model:
//!
//! * one **acceptor** thread polls a non-blocking listener and spawns a
//!   connection thread per socket, refusing (with a `Busy` frame) past
//!   `max_connections`;
//! * each **connection** thread parses frames, resolves the group's
//!   [`SessionParams`] from the registry, decodes the wire messages, and
//!   enqueues a job on a bounded channel — a full queue sheds the
//!   request with `Busy` instead of queueing unboundedly;
//! * a fixed pool of **worker** threads shares one `Arc<Lsp>` (the
//!   engine is `Send + Sync`), drops jobs whose deadline expired while
//!   queued, and replies through a per-request channel. A panic inside
//!   the engine is caught per request: the client gets a typed
//!   `Internal` error, and the worker then exits (its state is suspect
//!   after an unwind) for the supervisor to replace;
//! * a **supervisor** thread watches the pool and respawns any worker
//!   that died, so a poison-pill query degrades one request, not the
//!   service.
//!
//! Retried queries are idempotent: each session keeps a bounded answer
//! cache keyed by request ID, and a request the server already answered
//! is replayed byte-identically without touching the engine or the
//! query counter (see [`SessionRegistry::record_answer`]).
//!
//! When [`ServerConfig::fault`] is set, every accepted connection is
//! wrapped in a [`FaultyStream`] with a seed-derived schedule — the
//! chaos harness used by `tests/server_chaos.rs` and `loadgen
//! --chaos-*`.
//!
//! Shutdown: the flag stops the acceptor and makes connection threads
//! say `Goodbye` at their next idle poll; requests already enqueued are
//! still processed and answered (the workers drain the channel before
//! exiting), so no accepted query is lost.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ppgnn_core::messages::{AnswerMessage, LocationSetMessage, QueryMessage};
use ppgnn_core::{expand_candidates, DynamicLsp, Lsp, PpgnnConfig};
use ppgnn_geo::{Poi, Rect};
use ppgnn_sim::CostLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ppgnn_telemetry::costmodel::CostModel;
use ppgnn_telemetry::trace::{self, AttrKey, SpanName, TraceHandle};
use ppgnn_telemetry::window::WindowedSnapshot;
use ppgnn_telemetry::{self as telemetry, Gauge, HealthSnapshot, TelemetrySnapshot};

use crate::error::{ErrorCode, ServerError};
use crate::fault::{FaultConfig, FaultyStream, Transport};
use crate::frame::{
    read_frame_with_lead, write_frame, write_frame_padded, AnswerPayload, BusyPayload,
    ErrorPayload, FrameType, HelloAckPayload, HelloPayload, PoiUpdateAckPayload, PoiUpdatePayload,
    PongPayload, QueryPayload, StatsReplyPayload, SubscriptionKind, SubscriptionUpdatePayload,
    TraceReplyPayload, UnsubscribePayload, DEFAULT_MAX_PAYLOAD,
};
use crate::metrics::{self, Observability, SloConfig, COST_MODEL_FILE};
use crate::registry::{RegistryLimits, SessionParams, SessionRegistry};
use crate::shape::{Lane, ShapePolicy};
use crate::subscription::{compute_regions, Outbox, Subscription, SubscriptionRegistry};
use crate::validate::{
    validate_hello, validate_query, validate_set_count, HelloPolicy, ProtocolViolation, TokenBucket,
};
use crate::wal::{self, DurabilityConfig, Wal};

/// How often an idle connection thread checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// Suggested client backoff carried in `Busy` frames — the *center* of
/// the jittered hint: each shed draws a seeded value in ±25% of this,
/// so a thundering herd of synchronized clients fans out instead of
/// retrying in lockstep (clients honor the hint as a backoff floor).
const RETRY_AFTER_MS: u32 = 50;
/// Grace added to a request deadline while waiting for the worker reply.
const REPLY_GRACE: Duration = Duration::from_secs(5);
/// How often the supervisor sweeps the pool for dead workers.
const SUPERVISOR_SWEEP: Duration = Duration::from_millis(50);

/// Tunables for [`serve_world`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads processing queries.
    pub workers: usize,
    /// Accepted connections at once; more are refused with `Busy`.
    pub max_connections: usize,
    /// Bounded depth of the job queue — the max in-flight backpressure
    /// limit; a full queue sheds with `Busy`.
    pub queue_depth: usize,
    /// Deadline applied when a query carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Largest accepted frame payload.
    pub max_payload: usize,
    /// Seed for the workers' randomizer RNGs.
    pub rng_seed: u64,
    /// Whole-frame read deadline: once a frame's first byte arrives,
    /// the *entire* frame must be in within this window. Enforced by
    /// re-arming a shrinking socket timeout on every partial read, so
    /// a slowloris peer dribbling one byte per poll interval cannot
    /// hold the connection open indefinitely.
    pub frame_read_timeout: Duration,
    /// Per-write socket deadline; a peer that never drains its side
    /// loses the connection instead of wedging a connection thread.
    pub write_timeout: Duration,
    /// Most sessions held in the registry at once; `Hello`s past the
    /// cap (after idle eviction) are refused with `QuotaExceeded`.
    pub max_sessions: usize,
    /// Sessions idle longer than this are evicted.
    pub session_idle_ttl: Duration,
    /// Handshake policy floors (minimum δ and key size).
    pub hello_policy: HelloPolicy,
    /// Token-bucket burst per connection (Hello/Query frames).
    pub rate_limit_burst: u32,
    /// Token-bucket refill rate per connection; 0 disables limiting.
    pub rate_limit_per_sec: f64,
    /// Violations (per session or per connection, whichever is higher)
    /// tolerated before the connection is dropped.
    pub max_strikes: u32,
    /// Fault-injection schedule wrapped around every accepted
    /// connection; `None` (the default) serves on the bare socket.
    pub fault: Option<FaultConfig>,
    /// Shared-secret token that unlocks the `PoiUpdate` admin lane;
    /// `None` (the default) disables the lane entirely — every
    /// mutation attempt is a typed violation.
    pub admin_token: Option<u64>,
    /// Standing-query registry cap: each subscription costs an
    /// invalidation scan per mutation, so the table is bounded. 0
    /// refuses every `Subscribe`.
    pub max_subscriptions: usize,
    /// Durability for the live world: `Some` makes a
    /// [`WorldSeed::Durable`] deployment write-ahead-log every admitted
    /// `PoiUpdate` batch and checkpoint periodically; `None` (the
    /// default) keeps the world in-memory only. [`serve_world`]
    /// requires the seed and this knob to agree.
    pub durability: Option<DurabilityConfig>,
    /// Response-shape policy (DESIGN.md §16): off (the default) sends
    /// responses as-is; padded stretches every `Answer`/`Busy`/`Error`/
    /// `SubscriptionUpdate` frame to a policy-wide constant size and
    /// releases responses only on latency-quantum boundaries.
    pub shape: ShapePolicy,
    /// Per-query crypto parallelism — threads fanning out candidate
    /// evaluation and private-selection rows (DESIGN.md §17). Applied
    /// to worlds the server builds itself ([`WorldSeed::Durable`]);
    /// in-memory seeds carry their own tuning on the `Lsp` /
    /// `DynamicLsp` they wrap. Peak thread demand is
    /// `workers × selection_parallelism`, so size it against the
    /// worker budget.
    pub selection_parallelism: usize,
    /// Route private selection through the naive per-entry modpow path
    /// instead of Straus multi-exponentiation (A/B benchmarking only;
    /// both paths are bit-identical). Scoped like
    /// [`ServerConfig::selection_parallelism`].
    pub naive_crypto: bool,
    /// Address for the operator metrics listener (`GET /metrics`
    /// OpenMetrics text, `GET /healthz` health JSON); `None` (the
    /// default) binds no second socket. Kept separate from the query
    /// port so scrapers never share a lane with clients and the
    /// endpoint can be firewalled independently.
    pub metrics_addr: Option<String>,
    /// Service-level objectives; `Some` turns on the four burn-rate
    /// fields in every `Pong` health snapshot, the `slo-*` gauges in
    /// `Stats`, and the `ppgnn_slo_burn_permille` scrape family.
    /// `None` (the default) reports zero burn everywhere.
    pub slo: Option<SloConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 64,
            queue_depth: 32,
            default_deadline: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            rng_seed: 0x5eed_cafe,
            frame_read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            max_sessions: 1024,
            session_idle_ttl: Duration::from_secs(15 * 60),
            hello_policy: HelloPolicy::default(),
            rate_limit_burst: 256,
            rate_limit_per_sec: 128.0,
            max_strikes: 8,
            fault: None,
            admin_token: None,
            max_subscriptions: 64,
            durability: None,
            shape: ShapePolicy::off(),
            selection_parallelism: 1,
            naive_crypto: false,
            metrics_addr: None,
            slo: None,
        }
    }
}

impl ServerConfig {
    /// Starts a validated [`ServerConfigBuilder`] seeded with the
    /// defaults. Prefer this over mutating fields directly when the
    /// values come from user input (CLI flags, config files): `build()`
    /// rejects configurations `serve` would otherwise silently clamp or
    /// choke on.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: ServerConfig::default(),
        }
    }
}

/// A [`ServerConfigBuilder`] rejected an inconsistent configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid server config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`ServerConfig`] that validates the knobs as a set.
///
/// Every setter mirrors a [`ServerConfig`] field; [`build`] checks the
/// combination — zero-sized pools, a payload cap smaller than a frame
/// header, a rate limiter with refill but no burst — and returns a
/// [`ConfigError`] naming the first offending knob instead of letting
/// the server run degenerate.
///
/// [`build`]: ServerConfigBuilder::build
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads processing queries.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Accepted connections at once.
    pub fn max_connections(mut self, max_connections: usize) -> Self {
        self.config.max_connections = max_connections;
        self
    }

    /// Bounded depth of the job queue.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.config.queue_depth = queue_depth;
        self
    }

    /// Deadline applied when a query carries `deadline_ms == 0`.
    pub fn default_deadline(mut self, deadline: Duration) -> Self {
        self.config.default_deadline = deadline;
        self
    }

    /// Largest accepted frame payload.
    pub fn max_payload(mut self, max_payload: usize) -> Self {
        self.config.max_payload = max_payload;
        self
    }

    /// Seed for the workers' randomizer RNGs.
    pub fn rng_seed(mut self, seed: u64) -> Self {
        self.config.rng_seed = seed;
        self
    }

    /// Whole-frame read deadline.
    pub fn frame_read_timeout(mut self, timeout: Duration) -> Self {
        self.config.frame_read_timeout = timeout;
        self
    }

    /// Per-write socket deadline.
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Most sessions held in the registry at once.
    pub fn max_sessions(mut self, max_sessions: usize) -> Self {
        self.config.max_sessions = max_sessions;
        self
    }

    /// Idle TTL after which sessions are evicted.
    pub fn session_idle_ttl(mut self, ttl: Duration) -> Self {
        self.config.session_idle_ttl = ttl;
        self
    }

    /// Handshake policy floors.
    pub fn hello_policy(mut self, policy: HelloPolicy) -> Self {
        self.config.hello_policy = policy;
        self
    }

    /// Token-bucket burst per connection.
    pub fn rate_limit_burst(mut self, burst: u32) -> Self {
        self.config.rate_limit_burst = burst;
        self
    }

    /// Token-bucket refill rate per connection; 0 disables limiting.
    pub fn rate_limit_per_sec(mut self, per_sec: f64) -> Self {
        self.config.rate_limit_per_sec = per_sec;
        self
    }

    /// Strikes tolerated before a disconnect.
    pub fn max_strikes(mut self, strikes: u32) -> Self {
        self.config.max_strikes = strikes;
        self
    }

    /// Fault-injection schedule for chaos runs.
    pub fn fault(mut self, fault: Option<FaultConfig>) -> Self {
        self.config.fault = fault;
        self
    }

    /// Admin token unlocking the `PoiUpdate` lane; `None` disables it.
    pub fn admin_token(mut self, token: Option<u64>) -> Self {
        self.config.admin_token = token;
        self
    }

    /// Standing-query registry cap; 0 refuses every `Subscribe`.
    pub fn max_subscriptions(mut self, cap: usize) -> Self {
        self.config.max_subscriptions = cap;
        self
    }

    /// Durability config for [`WorldSeed::Durable`]; `None` disables it.
    pub fn durability(mut self, durability: Option<DurabilityConfig>) -> Self {
        self.config.durability = durability;
        self
    }

    /// Response-shape policy; [`ShapePolicy::off`] disables shaping.
    pub fn shape(mut self, shape: ShapePolicy) -> Self {
        self.config.shape = shape;
        self
    }

    /// Per-query crypto parallelism for server-built worlds.
    pub fn selection_parallelism(mut self, threads: usize) -> Self {
        self.config.selection_parallelism = threads;
        self
    }

    /// Forces the naive selection path (A/B benchmarking only).
    pub fn naive_crypto(mut self, naive: bool) -> Self {
        self.config.naive_crypto = naive;
        self
    }

    /// Metrics listener address; `None` binds no second socket.
    pub fn metrics_addr(mut self, addr: Option<String>) -> Self {
        self.config.metrics_addr = addr;
        self
    }

    /// Service-level objectives; `None` reports zero burn everywhere.
    pub fn slo(mut self, slo: Option<SloConfig>) -> Self {
        self.config.slo = slo;
        self
    }

    /// Validates the combination and returns the config, or a
    /// [`ConfigError`] naming the first bad knob.
    pub fn build(self) -> Result<ServerConfig, ConfigError> {
        let c = &self.config;
        if c.workers == 0 {
            return Err(ConfigError("workers must be at least 1".into()));
        }
        if c.max_connections == 0 {
            return Err(ConfigError(
                "max_connections of 0 would refuse every client".into(),
            ));
        }
        if c.queue_depth == 0 {
            return Err(ConfigError("queue_depth must be at least 1".into()));
        }
        if c.default_deadline.is_zero() {
            return Err(ConfigError(
                "default_deadline of 0 expires every unstamped query immediately".into(),
            ));
        }
        if c.max_payload < 64 {
            return Err(ConfigError(format!(
                "max_payload of {} bytes cannot carry even a handshake frame",
                c.max_payload
            )));
        }
        if c.frame_read_timeout.is_zero() || c.write_timeout.is_zero() {
            return Err(ConfigError(
                "frame_read_timeout and write_timeout must be non-zero".into(),
            ));
        }
        if c.max_sessions == 0 {
            return Err(ConfigError(
                "max_sessions of 0 would reject every Hello".into(),
            ));
        }
        if c.session_idle_ttl.is_zero() {
            return Err(ConfigError(
                "session_idle_ttl of 0 evicts sessions before their first query".into(),
            ));
        }
        if !c.rate_limit_per_sec.is_finite() || c.rate_limit_per_sec < 0.0 {
            return Err(ConfigError(format!(
                "rate_limit_per_sec of {} is not a valid refill rate",
                c.rate_limit_per_sec
            )));
        }
        if c.rate_limit_per_sec > 0.0 && c.rate_limit_burst == 0 {
            return Err(ConfigError(
                "rate limiting enabled (rate_limit_per_sec > 0) with a zero \
                 rate_limit_burst would shed every frame"
                    .into(),
            ));
        }
        if c.max_strikes == 0 {
            return Err(ConfigError(
                "max_strikes must be at least 1 (one violation always counts)".into(),
            ));
        }
        if let Some(d) = &c.durability {
            if d.checkpoint_every_ops == 0 {
                return Err(ConfigError(
                    "durability.checkpoint_every_ops must be at least 1".into(),
                ));
            }
        }
        if c.selection_parallelism == 0 {
            return Err(ConfigError(
                "selection_parallelism must be at least 1 (1 = sequential)".into(),
            ));
        }
        if let Some(slo) = &c.slo {
            if slo.latency_target_us == 0 {
                return Err(ConfigError(
                    "slo.latency_target_us of 0 counts every query as a violation".into(),
                ));
            }
            if slo.latency_budget_ppm == 0 || slo.latency_budget_ppm > 1_000_000 {
                return Err(ConfigError(format!(
                    "slo.latency_budget_ppm of {} is not a fraction in (0, 1_000_000]",
                    slo.latency_budget_ppm
                )));
            }
            if slo.error_budget_ppm == 0 || slo.error_budget_ppm > 1_000_000 {
                return Err(ConfigError(format!(
                    "slo.error_budget_ppm of {} is not a fraction in (0, 1_000_000]",
                    slo.error_budget_ppm
                )));
            }
            if slo.fast_window.is_zero() || slo.fast_window > slo.slow_window {
                return Err(ConfigError(
                    "slo.fast_window must be non-zero and no longer than slo.slow_window".into(),
                ));
            }
            let ring_span = ppgnn_telemetry::window::DEFAULT_INTERVAL
                * ppgnn_telemetry::window::DEFAULT_CAPACITY as u32;
            if slo.slow_window > ring_span {
                return Err(ConfigError(format!(
                    "slo.slow_window of {:?} exceeds the {:?} telemetry ring — the burn \
                     rate would silently measure a shorter window",
                    slo.slow_window, ring_span
                )));
            }
        }
        if c.shape.is_padded() {
            if c.shape.max_key_bits < c.hello_policy.min_key_bits {
                return Err(ConfigError(format!(
                    "shape.max_key_bits of {} is below hello_policy.min_key_bits {}: \
                     a padded server would refuse every admissible handshake",
                    c.shape.max_key_bits, c.hello_policy.min_key_bits
                )));
            }
            if c.shape.max_k == 0 {
                return Err(ConfigError(
                    "shape.max_k of 0 would refuse every query under a padded policy".into(),
                ));
            }
            if c.shape.latency_quantum.is_zero() {
                return Err(ConfigError(
                    "shape.latency_quantum of 0 quantizes nothing; use ShapePolicy::off \
                     to disable shaping"
                        .into(),
                ));
            }
            if c.shape.answer_target() > c.max_payload {
                return Err(ConfigError(format!(
                    "shape answer target of {} bytes exceeds max_payload {}; padded \
                     answers would be rejected by the client's own frame cap",
                    c.shape.answer_target(),
                    c.max_payload
                )));
            }
        }
        Ok(self.config)
    }
}

/// Monotonic service counters (plus two gauges).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections refused over `max_connections`.
    pub refused: AtomicU64,
    /// Queries answered fresh (replays not included).
    pub queries_ok: AtomicU64,
    /// Queries failed (malformed, protocol error, internal).
    pub queries_err: AtomicU64,
    /// Queries shed with `Busy` because the queue was full.
    pub busy_shed: AtomicU64,
    /// Queries dropped because their deadline expired in the queue.
    pub deadline_expired: AtomicU64,
    /// Jobs currently enqueued or being processed (gauge).
    pub inflight: AtomicU64,
    /// Jobs sitting in the queue, not yet picked up by a worker
    /// (gauge). Tracked here (not via the channel) so a detached
    /// [`StatsProbe`] can read it without holding a queue sender open,
    /// which would block worker drain at shutdown.
    pub queued: AtomicU64,
    /// Retried queries answered from the session answer cache.
    pub replayed: AtomicU64,
    /// Worker panics caught and surfaced as typed `Internal` errors.
    pub worker_panics: AtomicU64,
    /// Workers the supervisor respawned after a death.
    pub workers_respawned: AtomicU64,
    /// Worker threads currently alive (gauge).
    pub live_workers: AtomicU64,
    /// Frames shed by the per-connection token bucket.
    pub rate_limited: AtomicU64,
    /// Connections dropped after reaching the strike limit.
    pub strike_disconnects: AtomicU64,
    /// Connections reaped for dribbling a frame past the deadline.
    pub slow_reaped: AtomicU64,
    /// Frame-layer garbage (bad magic/version/type, CRC, oversize)
    /// answered with a typed error and a close.
    pub frame_garbage: AtomicU64,
    /// Faults injected by the chaos wrapper across all connections
    /// (behind an `Arc` so [`FaultyStream`]s can share the counter).
    pub faults_injected: Arc<AtomicU64>,
    /// `PoiUpdate` batches applied through the admin lane.
    pub poi_updates: AtomicU64,
    /// Individual POI mutations applied (sum of batch sizes).
    pub poi_ops: AtomicU64,
    /// Subscriptions granted (fresh registrations and replacements).
    pub subscribes_ok: AtomicU64,
    /// Subscriptions refused (registry cap).
    pub subscribe_rejected: AtomicU64,
    /// Safe regions invalidated by POI mutations.
    pub invalidations: AtomicU64,
    /// `SubscriptionUpdate` frames actually written to sockets.
    pub notifications_sent: AtomicU64,
    /// Standing queries dropped by an explicit `Unsubscribe`.
    pub unsubscribes: AtomicU64,
    /// `PoiUpdate` batches acknowledged from the WAL's idempotency
    /// window without re-applying (admin retries across a restart).
    pub poi_update_replays: AtomicU64,
    /// Checkpoints cut by the durability subsystem since boot.
    pub checkpoints: AtomicU64,
}

/// The POI database the server answers from: either one immutable
/// [`Lsp`] for the classic static deployment, or a versioned
/// [`DynamicLsp`] whose snapshots queries pin at dispatch time.
pub enum World {
    /// A fixed database; the `PoiUpdate` lane is a protocol error.
    Static(Arc<Lsp>),
    /// A live database behind versioned snapshots.
    Dynamic(Arc<DynamicLsp>),
}

impl World {
    /// The snapshot queries dispatched now should answer from, plus
    /// its version (0 for a static world, which never changes).
    fn snapshot(&self) -> (Arc<Lsp>, u64) {
        match self {
            World::Static(lsp) => (Arc::clone(lsp), 0),
            World::Dynamic(d) => d.snapshot(),
        }
    }

    /// The live version (0 for a static world).
    fn version(&self) -> u64 {
        match self {
            World::Static(_) => 0,
            World::Dynamic(d) => d.version(),
        }
    }

    /// Live POI count.
    fn database_size(&self) -> usize {
        match self {
            World::Static(lsp) => lsp.database_size(),
            World::Dynamic(d) => d.database_size(),
        }
    }
}

struct Job {
    group_id: u64,
    request_id: u32,
    query: QueryMessage,
    location_sets: Vec<LocationSetMessage>,
    /// The snapshot this query answers from, pinned at dispatch: a
    /// concurrent `PoiUpdate` can publish a newer version without the
    /// in-flight query ever seeing a half-applied batch.
    lsp: Arc<Lsp>,
    enqueued: Instant,
    deadline: Duration,
    reply: Sender<Reply>,
    /// The query's in-flight server trace segment, resumed from the
    /// frame header on the connection thread and finished by the worker.
    trace: Option<TraceHandle>,
}

enum Reply {
    Answer {
        request_id: u32,
        two_phase: bool,
        answer: Vec<u8>,
    },
    Failure {
        request_id: u32,
        code: ErrorCode,
        message: String,
    },
}

/// Runtime durability state. Its mutex serializes every admitted
/// mutation end to end (predict version → WAL append → apply →
/// maybe checkpoint), which is what makes the predicted version and
/// the checkpoint snapshot consistent with the log.
struct DurableState {
    wal: Wal,
    /// (request-id, batch-id) → (version, applied, invalidated): the
    /// idempotent re-admission window. A batch the crash swallowed the
    /// ack for is re-sent by the admin and answered from here with its
    /// original ack. Keying on the request id too means a plain hash
    /// collision between unrelated requests can never alias batches.
    acked: HashMap<(u32, u64), (u64, u32, u32)>,
    /// Insertion order for bounded eviction of `acked`.
    acked_order: VecDeque<(u32, u64)>,
    ops_since_checkpoint: u64,
    checkpoint_every_ops: u64,
}

/// Most batch ids remembered for idempotent re-acks. Retries arrive
/// within a handful of batches of the original; the window is generous.
const ACKED_WINDOW: usize = 8192;

impl DurableState {
    fn remember(&mut self, key: (u32, u64), version: u64, applied: u32, invalidated: u32) {
        if self
            .acked
            .insert(key, (version, applied, invalidated))
            .is_none()
        {
            self.acked_order.push_back(key);
            while self.acked_order.len() > ACKED_WINDOW {
                if let Some(old) = self.acked_order.pop_front() {
                    self.acked.remove(&old);
                }
            }
        }
    }
}

/// What startup recovery found, frozen for the stats surface.
#[derive(Debug, Clone, Copy, Default)]
struct RecoveryFacts {
    checkpoint_version: u64,
    replayed_batches: u64,
    torn_bytes: u64,
    corrupt_checkpoints: u64,
}

pub(crate) struct Shared {
    world: World,
    pub(crate) config: ServerConfig,
    pub(crate) registry: SessionRegistry,
    subscriptions: SubscriptionRegistry,
    pub(crate) stats: ServerStats,
    pub(crate) shutdown: AtomicBool,
    connections: AtomicU64,
    started: Instant,
    /// Windowed telemetry, cost model, and SLO burn state (the
    /// [`metrics`] module's slice of the server).
    pub(crate) obs: Observability,
    /// Restart epoch: fresh per process start, surfaced in `HelloAck`
    /// and `Pong` so clients detect a crash/recovery cycle.
    epoch: u64,
    /// `Some` only under [`serve_durable`].
    durable: Option<Mutex<DurableState>>,
    /// `Some` when this process recovered a pre-existing data dir.
    recovery: Option<RecoveryFacts>,
    /// Sequence behind the seeded `Busy` retry-hint jitter: each shed
    /// draws the next value of a SplitMix64 stream keyed on
    /// `rng_seed`, so hints are deterministic per seed yet distinct
    /// per shed.
    busy_seq: AtomicU64,
}

impl Shared {
    /// The next jittered `retry_after_ms` hint: `RETRY_AFTER_MS` ±25%,
    /// drawn from the seeded per-server stream. Clients treat the hint
    /// as a backoff floor, so the spread directly desynchronizes
    /// lockstep retry herds.
    fn retry_after_hint(&self) -> u32 {
        let seq = self.busy_seq.fetch_add(1, Ordering::Relaxed);
        // SplitMix64 over (seed, seq): the same generator backoff.rs
        // uses for client-side jitter.
        let mut z = self
            .config
            .rng_seed
            .wrapping_add(seq.wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map to [-25%, +25%] around the center, never below 1ms.
        let span = (RETRY_AFTER_MS / 2).max(1);
        let offset = (z % (span as u64 + 1)) as u32;
        (RETRY_AFTER_MS - span / 2 + offset).max(1)
    }
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shared: Arc<Shared>,
    job_tx: Option<Sender<Job>>,
    acceptor: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
    metrics_listener: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The bound metrics-listener address, when
    /// [`ServerConfig::metrics_addr`] was set (useful with port 0).
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.shared.registry
    }

    /// The full telemetry snapshot — the same payload a wire `Stats`
    /// request is answered with: every pipeline-stage histogram and
    /// crypto op counter plus the service counters and load gauges.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        full_snapshot(&self.shared)
    }

    /// The compact health snapshot — the same payload `Pong` carries.
    pub fn health(&self) -> HealthSnapshot {
        health_snapshot(&self.shared)
    }

    /// The windowed telemetry snapshot over the newest `intervals`
    /// ticks of the 1 Hz observability ring (DESIGN.md §18).
    pub fn windowed_snapshot(&self, intervals: usize) -> WindowedSnapshot {
        self.shared.obs.windowed(intervals)
    }

    /// A point-in-time copy of the live calibrated cost model.
    pub fn cost_model(&self) -> CostModel {
        self.shared.obs.cost_model()
    }

    /// Forces one observability tick *now*: captures an interval
    /// delta, folds it into the cost model, and recomputes the SLO
    /// burn rates. Tests and short benchmark runs call this instead
    /// of sleeping out the 1 s ticker cadence.
    pub fn flush_windows(&self) {
        metrics::observability_tick(&self.shared);
    }

    /// A detached, cloneable probe for reading the same snapshots from
    /// another thread (the `--stats-json` dump loop) without owning the
    /// handle.
    pub fn stats_probe(&self) -> StatsProbe {
        StatsProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Signals shutdown and blocks until every thread exits. Queries
    /// already enqueued are processed and answered before workers stop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // The ticker runs a final capture + cost-model persist on its
        // way out; the metrics listener just stops accepting.
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        if let Some(h) = self.metrics_listener.take() {
            let _ = h.join();
        }
        // Connection threads notice the flag at their next poll, finish
        // any request they are waiting on, say Goodbye, and exit —
        // dropping their job senders.
        let conns = std::mem::take(&mut *lock_list(&self.conn_threads));
        for h in conns {
            let _ = h.join();
        }
        // With every sender gone the channel disconnects; workers drain
        // whatever is still queued, then exit, and the supervisor
        // collects them.
        drop(self.job_tx.take());
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || self.supervisor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// A cloneable, detached view of a running server's telemetry for
/// side threads (periodic `--stats-json` dumps, test assertions).
///
/// Holds only the shared state — deliberately *not* a job-queue sender,
/// which would keep the worker channel connected and block the drain at
/// shutdown. A probe outliving its [`ServerHandle`] keeps reading
/// frozen final counters; it never wedges the server.
#[derive(Clone)]
pub struct StatsProbe {
    shared: Arc<Shared>,
}

impl StatsProbe {
    /// Same payload as a wire `Stats` request.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        full_snapshot(&self.shared)
    }

    /// Same payload as a `Pong` health reply.
    pub fn health(&self) -> HealthSnapshot {
        health_snapshot(&self.shared)
    }

    /// Windowed telemetry over the newest `intervals` ring ticks.
    pub fn windowed(&self, intervals: usize) -> WindowedSnapshot {
        self.shared.obs.windowed(intervals)
    }

    /// A point-in-time copy of the live calibrated cost model.
    pub fn cost_model(&self) -> CostModel {
        self.shared.obs.cost_model()
    }
}

/// Recovers the connection-thread list from a poisoned lock: pushes and
/// takes are single operations that cannot leave the vec inconsistent.
fn lock_list(list: &Mutex<Vec<JoinHandle<()>>>) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    list.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The deployment shape handed to [`serve_world`]: which POI world the
/// server boots, and — for the durable variant — what seeds the data
/// dir on first boot.
///
/// `From` impls cover the in-memory shapes, so call sites pass an
/// `Arc<Lsp>` or `Arc<DynamicLsp>` directly.
pub enum WorldSeed {
    /// A fixed database; the `PoiUpdate` lane is a protocol error.
    Static(Arc<Lsp>),
    /// A live database behind versioned snapshots, in-memory only.
    Dynamic(Arc<DynamicLsp>),
    /// A crash-safe live world, recovered from (or bootstrapped into)
    /// the data dir named by [`ServerConfig::durability`] — which must
    /// be set. The seed fields are used only when the data dir has no
    /// checkpoint yet (first boot).
    Durable {
        initial_pois: Vec<Poi>,
        protocol: PpgnnConfig,
        space: Rect,
    },
}

impl From<Arc<Lsp>> for WorldSeed {
    fn from(lsp: Arc<Lsp>) -> Self {
        WorldSeed::Static(lsp)
    }
}

impl From<Arc<DynamicLsp>> for WorldSeed {
    fn from(world: Arc<DynamicLsp>) -> Self {
        WorldSeed::Dynamic(world)
    }
}

/// Binds `addr` and serves the world described by `seed` under
/// `config` — the single serving entrypoint (the pre-0.9 `serve` /
/// `serve_dynamic` / `serve_durable` trio is gone).
///
/// The world shape and [`ServerConfig::durability`] must agree: a
/// [`WorldSeed::Durable`] seed without a durability config, or a
/// durability config paired with an in-memory seed, fails with
/// [`ServerError::Recovery`] — never a silent downgrade to a world
/// that forgets on crash.
///
/// For [`WorldSeed::Durable`], boot order is: load the newest valid
/// checkpoint, replay the WAL tail (torn tail truncated, dropped bytes
/// logged), republish at the exact pre-crash version, *then* bind the
/// socket — a recovered server answers byte-identically to one that
/// never died.
///
/// Startup failures (bind, thread spawn) surface as
/// [`ServerError::Io`] instead of panicking.
pub fn serve_world(
    seed: impl Into<WorldSeed>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    let world = match seed.into() {
        WorldSeed::Durable {
            initial_pois,
            protocol,
            space,
        } => return serve_durable_inner(initial_pois, protocol, space, addr, config),
        WorldSeed::Static(lsp) => World::Static(lsp),
        WorldSeed::Dynamic(d) => World::Dynamic(d),
    };
    if config.durability.is_some() {
        return Err(ServerError::Recovery(
            "ServerConfig::durability is set but the world seed is in-memory; \
             pass WorldSeed::Durable so the world survives a crash"
                .into(),
        ));
    }
    serve_world_inner(world, addr, config, None, None)
}

fn serve_durable_inner(
    initial_pois: Vec<Poi>,
    protocol: PpgnnConfig,
    space: Rect,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    let Some(dur) = config.durability.clone() else {
        return Err(ServerError::Recovery(
            "WorldSeed::Durable requires ServerConfig::durability".into(),
        ));
    };
    let dir = dur.data_dir.clone();
    let (world, recovery, replayed) = match wal::recover(&dir)? {
        None => {
            // First boot: seed the dir so the world is durable from
            // version 1 on.
            wal::bootstrap(&dir, &initial_pois)?;
            let world = DynamicLsp::with_space(initial_pois, protocol, space)
                .with_parallelism(config.selection_parallelism)
                .with_naive_crypto(config.naive_crypto);
            (world, None, Vec::new())
        }
        Some(rec) => {
            eprintln!("[ppgnn-server] {}", rec.summary());
            let facts = RecoveryFacts {
                checkpoint_version: rec.checkpoint_version,
                replayed_batches: rec.batches.len() as u64,
                torn_bytes: rec.torn_bytes,
                corrupt_checkpoints: rec.corrupt_checkpoints,
            };
            let world = DynamicLsp::restore(rec.pois, protocol, space, rec.checkpoint_version)
                .with_parallelism(config.selection_parallelism)
                .with_naive_crypto(config.naive_crypto);
            let mut replayed = Vec::with_capacity(rec.batches.len());
            for b in &rec.batches {
                let (applied, version) = world.apply(&b.ops);
                debug_assert_eq!(version, b.version, "replay must track the log versions");
                replayed.push(((b.request_id, b.batch_id), version, applied as u32));
            }
            (world, Some(facts), replayed)
        }
    };
    // The WAL continues at the version recovery resumed at — after a
    // checkpoint fall-back that is a *later* file than the loaded
    // checkpoint's, and appending anywhere else would break the chain.
    let wal_file = Wal::open(&dir, world.version(), dur.fsync)?;
    let mut state = DurableState {
        wal: wal_file,
        acked: HashMap::new(),
        acked_order: VecDeque::new(),
        ops_since_checkpoint: 0,
        checkpoint_every_ops: dur.checkpoint_every_ops,
    };
    for (key, version, applied) in replayed {
        // Invalidation count 0 is truthful for a replayed ack: no
        // standing queries exist at boot, so a post-restart re-send
        // genuinely invalidates nothing.
        state.remember(key, version, applied, 0);
    }
    serve_world_inner(
        World::Dynamic(Arc::new(world)),
        addr,
        config,
        Some(Mutex::new(state)),
        recovery,
    )
}

/// A per-process restart epoch: wall-clock nanos mixed with the pid,
/// so two boots of the same data dir (even in quick succession, even
/// as respawned children of one harness) never collide.
fn fresh_epoch() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    (nanos ^ ((std::process::id() as u64) << 48)) | 1
}

fn serve_world_inner(
    world: World,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
    durable: Option<Mutex<DurableState>>,
    recovery: Option<RecoveryFacts>,
) -> Result<ServerHandle, ServerError> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));
    let registry = SessionRegistry::with_limits(RegistryLimits {
        max_sessions: config.max_sessions.max(1),
        idle_ttl: config.session_idle_ttl,
    });
    // The cost model lives in the durability data dir: the same place
    // the world survives a crash is where its calibration survives one.
    let cost_path = config
        .durability
        .as_ref()
        .map(|d| d.data_dir.join(COST_MODEL_FILE));
    let shared = Arc::new(Shared {
        world,
        config: config.clone(),
        registry,
        subscriptions: SubscriptionRegistry::new(config.max_subscriptions),
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        started: Instant::now(),
        obs: Observability::new(config.slo, cost_path),
        epoch: fresh_epoch(),
        durable,
        recovery,
        busy_seq: AtomicU64::new(0),
    });

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        workers.push(spawn_worker(&shared, &job_rx, i as u64)?);
    }

    let supervisor = {
        let shared = Arc::clone(&shared);
        let rx = job_rx.clone();
        std::thread::Builder::new()
            .name("ppgnn-supervisor".into())
            .spawn(move || supervisor_loop(shared, rx, workers))?
    };
    drop(job_rx);

    let conn_threads = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let job_tx = job_tx.clone();
        let conn_threads = Arc::clone(&conn_threads);
        std::thread::Builder::new()
            .name("ppgnn-acceptor".into())
            .spawn(move || accept_loop(listener, shared, job_tx, conn_threads))?
    };

    let ticker = metrics::spawn_ticker(Arc::clone(&shared))?;
    let (metrics_addr, metrics_listener) = match &config.metrics_addr {
        Some(addr) => {
            let (bound, handle) = metrics::spawn_metrics_listener(addr, Arc::clone(&shared))?;
            (Some(bound), Some(handle))
        }
        None => (None, None),
    };

    Ok(ServerHandle {
        local_addr,
        metrics_addr,
        shared,
        job_tx: Some(job_tx),
        acceptor: Some(acceptor),
        supervisor: Some(supervisor),
        ticker: Some(ticker),
        metrics_listener,
        conn_threads,
    })
}

fn spawn_worker(
    shared: &Arc<Shared>,
    job_rx: &Receiver<Job>,
    index: u64,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let rx = job_rx.clone();
    std::thread::Builder::new()
        .name(format!("ppgnn-worker-{index}"))
        .spawn(move || worker_loop(shared, rx, index))
}

/// Watches the pool; a worker that died (panic escape, or the
/// deliberate exit after a caught panic) is replaced as long as the
/// server is running. Exits once shutdown is signaled and every worker
/// has drained and stopped.
fn supervisor_loop(shared: Arc<Shared>, job_rx: Receiver<Job>, mut workers: Vec<JoinHandle<()>>) {
    let mut next_index = workers.len() as u64;
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        // Idle sessions age out even when no new Hello arrives to
        // trigger eviction on the registration path.
        shared.registry.sweep_idle();
        let mut alive = Vec::with_capacity(workers.len());
        for handle in workers {
            if handle.is_finished() {
                let _ = handle.join();
                // A spawn failure (out of threads) leaves the pool
                // degraded; the next sweep retries as long as any pool
                // slot is missing.
                if !shutting_down {
                    if let Ok(h) = spawn_worker(&shared, &job_rx, next_index) {
                        next_index += 1;
                        shared
                            .stats
                            .workers_respawned
                            .fetch_add(1, Ordering::Relaxed);
                        alive.push(h);
                    }
                }
            } else {
                alive.push(handle);
            }
        }
        // Top back up to the configured size if a respawn failed earlier.
        if !shutting_down {
            while alive.len() < shared.config.workers.max(1) {
                match spawn_worker(&shared, &job_rx, next_index) {
                    Ok(h) => {
                        next_index += 1;
                        shared
                            .stats
                            .workers_respawned
                            .fetch_add(1, Ordering::Relaxed);
                        alive.push(h);
                    }
                    Err(_) => break,
                }
            }
        }
        workers = alive;
        if shutting_down && workers.is_empty() {
            return;
        }
        std::thread::sleep(SUPERVISOR_SWEEP);
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    let mut conn_index: u64 = 0;
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = shared.connections.load(Ordering::SeqCst);
                if active >= shared.config.max_connections as u64 {
                    shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(&shared, stream);
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let index = conn_index;
                conn_index += 1;
                let shared2 = Arc::clone(&shared);
                let tx = job_tx.clone();
                let spawned =
                    std::thread::Builder::new()
                        .name("ppgnn-conn".into())
                        .spawn(move || {
                            let fault_plan = shared2
                                .config
                                .fault
                                .as_ref()
                                .filter(|f| f.is_active())
                                .map(|f| f.plan_for(index));
                            match fault_plan {
                                Some(plan) => {
                                    let counter = Arc::clone(&shared2.stats.faults_injected);
                                    let faulty = FaultyStream::new(stream, plan, counter);
                                    let _ = connection_loop(&shared2, faulty, tx, index);
                                }
                                None => {
                                    let _ = connection_loop(&shared2, stream, tx, index);
                                }
                            }
                            // Standing queries die with their socket —
                            // there is nowhere left to push to.
                            shared2.subscriptions.remove_conn(index);
                            shared2.connections.fetch_sub(1, Ordering::SeqCst);
                        });
                match spawned {
                    Ok(handle) => lock_list(&conn_threads).push(handle),
                    Err(_) => {
                        // Could not spawn a thread: undo the slot and
                        // shed the connection instead of crashing.
                        shared.connections.fetch_sub(1, Ordering::SeqCst);
                        shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn refuse(shared: &Shared, mut stream: TcpStream) {
    let payload = BusyPayload {
        request_id: 0,
        retry_after_ms: shared.retry_after_hint(),
    }
    .encode();
    // Pad-only: a refusal has no request to hold against, and sleeping
    // here would block the acceptor thread for every other client.
    let _ = send_shaped_unheld(
        &shared.config.shape,
        &mut stream,
        FrameType::Busy,
        &payload,
        Lane::Control,
    );
    let _ = stream.flush();
}

/// One request's response-shaping context: the server-wide policy plus
/// the instant the request's frame finished arriving, so held responses
/// release exactly on latency-quantum boundaries measured from arrival.
#[derive(Clone, Copy)]
struct ResponseShaper {
    policy: ShapePolicy,
    started: Instant,
}

impl ResponseShaper {
    /// Holds to the next quantum boundary, then writes the frame padded
    /// to its lane target. Every request-triggered response (`Answer`,
    /// `Busy`, `Error`, `SubscriptionUpdate`) goes through here; with
    /// shaping off this is exactly [`write_frame`].
    fn send(
        &self,
        stream: &mut impl std::io::Write,
        frame_type: FrameType,
        payload: &[u8],
        lane: Lane,
    ) -> Result<(), ServerError> {
        if !self.policy.is_padded() {
            return write_frame(stream, frame_type, payload);
        }
        let hold = self.policy.hold_for(self.started.elapsed());
        if !hold.is_zero() {
            let _t = telemetry::global().time(telemetry::Stage::LatencyHold);
            std::thread::sleep(hold);
        }
        let pad = self.policy.pad_for(lane, payload.len());
        let _t = telemetry::global().time(telemetry::Stage::ShapePad);
        write_frame_padded(stream, frame_type, payload, pad)
    }
}

/// Pad-only shaped write for lanes with no request to hold against
/// (subscription pushes from the outbox, connection refusals). Their
/// release timing is governed elsewhere — pushes by the poll interval,
/// refusals by the accept loop — so only the size channel is closed
/// here.
fn send_shaped_unheld(
    policy: &ShapePolicy,
    stream: &mut impl std::io::Write,
    frame_type: FrameType,
    payload: &[u8],
    lane: Lane,
) -> Result<(), ServerError> {
    if !policy.is_padded() {
        return write_frame(stream, frame_type, payload);
    }
    let pad = policy.pad_for(lane, payload.len());
    let _t = telemetry::global().time(telemetry::Stage::ShapePad);
    write_frame_padded(stream, frame_type, payload, pad)
}

/// Per-connection admission state: the token bucket and the strike
/// count this connection has accumulated (session strikes live in the
/// registry; the connection is dropped when either reaches the limit).
struct ConnGuard {
    bucket: TokenBucket,
    strikes: u32,
}

/// What a frame handler tells the connection loop to do next.
#[derive(PartialEq, Eq)]
enum ConnAction {
    Continue,
    Close,
}

/// Enforces the whole-frame read deadline: every partial read re-arms
/// the socket timeout with the time *remaining*, so the total wall
/// clock a peer can spend dribbling one frame is bounded no matter how
/// many one-byte reads it splits the frame into.
struct FrameDeadline<'a, S: Transport> {
    inner: &'a mut S,
    deadline: Instant,
}

impl<S: Transport> std::io::Read for FrameDeadline<'_, S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "whole-frame read deadline exhausted",
            ));
        }
        self.inner.set_read_timeout(Some(remaining))?;
        self.inner.read(buf)
    }
}

/// Writes every queued subscription push to the owning socket.
fn flush_outbox(
    shared: &Shared,
    stream: &mut impl std::io::Write,
    outbox: &Outbox,
) -> Result<(), ServerError> {
    for update in outbox.drain() {
        send_shaped_unheld(
            &shared.config.shape,
            stream,
            FrameType::SubscriptionUpdate,
            &update.encode(),
            Lane::Control,
        )?;
        shared
            .stats
            .notifications_sent
            .fetch_add(1, Ordering::Relaxed);
    }
    Ok(())
}

/// Serves one connection until the peer leaves or shutdown is signaled.
fn connection_loop<S: Transport>(
    shared: &Shared,
    mut stream: S,
    job_tx: Sender<Job>,
    conn_id: u64,
) -> Result<(), ServerError> {
    stream.set_nodelay(true).ok();
    stream
        .set_write_timeout(Some(shared.config.write_timeout))
        .ok();
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut conn = ConnGuard {
        bucket: TokenBucket::new(
            shared.config.rate_limit_burst,
            shared.config.rate_limit_per_sec,
        ),
        strikes: 0,
    };
    // This connection's subscription mailbox: the invalidation scan
    // (running wherever the `PoiUpdate` landed) pushes here, and the
    // flushes below put it on the wire within one poll interval.
    let outbox = Arc::new(Outbox::new());
    loop {
        // The first byte is the idle poll point: a timeout here leaves
        // the stream exactly at a frame boundary.
        let mut lead = [0u8; 1];
        match stream.read(&mut lead) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                let frame = {
                    let mut guarded = FrameDeadline {
                        deadline: Instant::now() + shared.config.frame_read_timeout,
                        inner: &mut stream,
                    };
                    read_frame_with_lead(&mut guarded, lead[0], shared.config.max_payload)
                };
                stream.set_read_timeout(Some(POLL_INTERVAL))?;
                // The latency-quantization clock starts the moment the
                // frame finished arriving: every response this request
                // triggers releases on a quantum boundary from here.
                let shaper = ResponseShaper {
                    policy: shared.config.shape,
                    started: Instant::now(),
                };
                let frame = match frame {
                    Ok(f) => f,
                    Err(ServerError::ConnectionClosed) => return Ok(()),
                    Err(ServerError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        // A slowloris peer: the frame did not complete
                        // within the whole-frame deadline. Reap it.
                        shared.stats.slow_reaped.fetch_add(1, Ordering::Relaxed);
                        return Ok(());
                    }
                    Err(ServerError::Io(e)) => return Err(ServerError::Io(e)),
                    Err(e) => {
                        // Frame-layer garbage (bad magic/version/type,
                        // oversized length, CRC mismatch): framing sync
                        // is gone, so give the peer a typed error and a
                        // clean close rather than a silent reset.
                        shared.stats.frame_garbage.fetch_add(1, Ordering::Relaxed);
                        shared.registry.count_violation();
                        let code = match e {
                            ServerError::FrameTooLarge { .. } => ErrorCode::Violation,
                            _ => ErrorCode::MalformedPayload,
                        };
                        let _ = send_error(&shaper, &mut stream, 0, code, &e.to_string());
                        return Ok(());
                    }
                };
                // Work-carrying frames pay a token; liveness traffic
                // (Ping, Goodbye) stays free so health probes see
                // through load.
                if matches!(
                    frame.frame_type,
                    FrameType::Hello
                        | FrameType::Query
                        | FrameType::Subscribe
                        | FrameType::PoiUpdate
                        | FrameType::Unsubscribe
                ) {
                    if let Err(wait) = conn.bucket.try_take() {
                        shared.stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                        let request_id = match frame.frame_type {
                            // request_id sits after a u64 (group_id, or
                            // the admin token) in all three payloads.
                            FrameType::Query | FrameType::Subscribe | FrameType::PoiUpdate => frame
                                .payload
                                .get(8..12)
                                .and_then(|b| b.try_into().ok())
                                .map(u32::from_le_bytes)
                                .unwrap_or(0),
                            _ => 0,
                        };
                        let busy = BusyPayload {
                            request_id,
                            retry_after_ms: (wait.as_millis() as u32).max(1),
                        };
                        shaper.send(&mut stream, FrameType::Busy, &busy.encode(), Lane::Control)?;
                        continue;
                    }
                }
                let action = match frame.frame_type {
                    FrameType::Hello => {
                        handle_hello(shared, &mut conn, &shaper, &mut stream, &frame.payload)?
                    }
                    // Queries accepted before the signal drain; ones
                    // arriving after it are refused.
                    FrameType::Query | FrameType::Subscribe
                        if shared.shutdown.load(Ordering::SeqCst) =>
                    {
                        let request_id = QueryPayload::decode(&frame.payload)
                            .map(|q| q.request_id)
                            .unwrap_or(0);
                        send_error(
                            &shaper,
                            &mut stream,
                            request_id,
                            ErrorCode::ShuttingDown,
                            "server is draining",
                        )?;
                        ConnAction::Continue
                    }
                    FrameType::Query => handle_query(
                        shared,
                        &mut conn,
                        &shaper,
                        &mut stream,
                        &frame.payload,
                        &job_tx,
                        None,
                    )?,
                    FrameType::Subscribe => handle_query(
                        shared,
                        &mut conn,
                        &shaper,
                        &mut stream,
                        &frame.payload,
                        &job_tx,
                        Some(SubscribeLane {
                            conn_id,
                            outbox: &outbox,
                        }),
                    )?,
                    FrameType::PoiUpdate => {
                        handle_poi_update(shared, &mut conn, &shaper, &mut stream, &frame.payload)?
                    }
                    FrameType::Unsubscribe => {
                        handle_unsubscribe(shared, &shaper, &mut stream, &frame.payload)?
                    }
                    FrameType::Ping => {
                        let pong = PongPayload {
                            health: health_snapshot(shared),
                            epoch: shared.epoch,
                        };
                        write_frame(&mut stream, FrameType::Pong, &pong.encode())?;
                        ConnAction::Continue
                    }
                    // Stats rides the liveness lane (no rate-limit
                    // token): operators probing a loaded server should
                    // see through the load, not queue behind it.
                    FrameType::Stats => {
                        let reply = StatsReplyPayload {
                            snapshot: full_snapshot(shared),
                        };
                        write_frame(&mut stream, FrameType::StatsReply, &reply.encode())?;
                        ConnAction::Continue
                    }
                    // Traces share the liveness lane: fetch-and-clear of
                    // the kept-segment ring, bounded by the frame cap.
                    FrameType::TraceFetch => {
                        let reply = TraceReplyPayload {
                            segments: trace::global().drain(),
                        };
                        let payload = reply.encode(shared.config.max_payload);
                        write_frame(&mut stream, FrameType::TraceReply, &payload)?;
                        ConnAction::Continue
                    }
                    FrameType::Goodbye => return Ok(()),
                    other => {
                        send_error(
                            &shaper,
                            &mut stream,
                            0,
                            ErrorCode::MalformedPayload,
                            &format!("unexpected {other:?} frame"),
                        )?;
                        ConnAction::Continue
                    }
                };
                // Invalidations that landed while this frame was being
                // handled go out right behind the reply.
                flush_outbox(shared, &mut stream, &outbox)?;
                if action == ConnAction::Close {
                    let _ = write_frame(&mut stream, FrameType::Goodbye, &[]);
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_frame(&mut stream, FrameType::Goodbye, &[]);
                    return Ok(());
                }
                // The idle poll is the push path: a quiet subscriber
                // still hears about invalidations within POLL_INTERVAL.
                flush_outbox(shared, &mut stream, &outbox)?;
            }
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
}

/// Compact load-and-health snapshot carried in every `Pong` reply.
pub(crate) fn health_snapshot(shared: &Shared) -> HealthSnapshot {
    let burns = shared.obs.burns();
    HealthSnapshot {
        queue_depth: shared.stats.queued.load(Ordering::SeqCst) as u32,
        inflight: shared.stats.inflight.load(Ordering::SeqCst) as u32,
        live_workers: shared.stats.live_workers.load(Ordering::SeqCst) as u32,
        sessions: shared.registry.len() as u32,
        worker_panics: shared.stats.worker_panics.load(Ordering::Relaxed),
        uptime_ms: shared.started.elapsed().as_millis() as u64,
        queries_ok: shared.stats.queries_ok.load(Ordering::Relaxed),
        sessions_evicted: shared.registry.evicted(),
        sessions_rejected: shared.registry.rejected(),
        violations: shared.registry.violations(),
        rate_limited: shared.stats.rate_limited.load(Ordering::Relaxed),
        strike_disconnects: shared.stats.strike_disconnects.load(Ordering::Relaxed),
        slow_reaped: shared.stats.slow_reaped.load(Ordering::Relaxed),
        frame_garbage: shared.stats.frame_garbage.load(Ordering::Relaxed),
        slo_latency_fast_burn_pm: burns[0],
        slo_latency_slow_burn_pm: burns[1],
        slo_error_fast_burn_pm: burns[2],
        slo_error_slow_burn_pm: burns[3],
    }
}

/// The full registry snapshot answered to a `Stats` request: every
/// pipeline stage histogram and crypto op counter from the global
/// [`telemetry`] registry, overlaid with the service counters
/// ([`ServerStats`], session registry) and the live load gauges.
pub(crate) fn full_snapshot(shared: &Shared) -> TelemetrySnapshot {
    let reg = telemetry::global();
    reg.set_gauge(
        Gauge::QueueDepth,
        shared.stats.queued.load(Ordering::SeqCst),
    );
    reg.set_gauge(
        Gauge::Inflight,
        shared.stats.inflight.load(Ordering::SeqCst),
    );
    reg.set_gauge(
        Gauge::LiveWorkers,
        shared.stats.live_workers.load(Ordering::SeqCst),
    );
    reg.set_gauge(Gauge::Sessions, shared.registry.len() as u64);
    let mut snap = reg.snapshot();
    let s = &shared.stats;
    for (name, value) in [
        ("accepted", s.accepted.load(Ordering::Relaxed)),
        ("refused", s.refused.load(Ordering::Relaxed)),
        ("queries-ok", s.queries_ok.load(Ordering::Relaxed)),
        ("queries-err", s.queries_err.load(Ordering::Relaxed)),
        ("busy-shed", s.busy_shed.load(Ordering::Relaxed)),
        (
            "deadline-expired",
            s.deadline_expired.load(Ordering::Relaxed),
        ),
        ("replayed", s.replayed.load(Ordering::Relaxed)),
        ("worker-panics", s.worker_panics.load(Ordering::Relaxed)),
        (
            "workers-respawned",
            s.workers_respawned.load(Ordering::Relaxed),
        ),
        ("rate-limited", s.rate_limited.load(Ordering::Relaxed)),
        (
            "strike-disconnects",
            s.strike_disconnects.load(Ordering::Relaxed),
        ),
        ("slow-reaped", s.slow_reaped.load(Ordering::Relaxed)),
        ("frame-garbage", s.frame_garbage.load(Ordering::Relaxed)),
        ("faults-injected", s.faults_injected.load(Ordering::Relaxed)),
        ("sessions-evicted", shared.registry.evicted()),
        ("sessions-rejected", shared.registry.rejected()),
        ("violations", shared.registry.violations()),
        ("poi-updates", s.poi_updates.load(Ordering::Relaxed)),
        ("poi-ops", s.poi_ops.load(Ordering::Relaxed)),
        ("subscribes-ok", s.subscribes_ok.load(Ordering::Relaxed)),
        (
            "subscribe-rejected",
            s.subscribe_rejected.load(Ordering::Relaxed),
        ),
        ("invalidations", s.invalidations.load(Ordering::Relaxed)),
        (
            "notifications-sent",
            s.notifications_sent.load(Ordering::Relaxed),
        ),
        ("unsubscribes", s.unsubscribes.load(Ordering::Relaxed)),
        (
            "poi-update-replays",
            s.poi_update_replays.load(Ordering::Relaxed),
        ),
        ("checkpoints", s.checkpoints.load(Ordering::Relaxed)),
    ] {
        snap.push_counter(name, value);
    }
    snap.push_gauge("uptime-ms", shared.started.elapsed().as_millis() as u64);
    snap.push_gauge("subscriptions", shared.subscriptions.len() as u64);
    snap.push_gauge("index-version", shared.world.version());
    if let Some(rec) = &shared.recovery {
        snap.push_gauge("recovered-checkpoint-version", rec.checkpoint_version);
        snap.push_gauge("recovered-batches", rec.replayed_batches);
        snap.push_gauge("recovered-torn-bytes", rec.torn_bytes);
        snap.push_gauge("recovered-corrupt-checkpoints", rec.corrupt_checkpoints);
    }
    if shared.obs.has_slo() {
        let burns = shared.obs.burns();
        snap.push_gauge("slo-latency-fast-burn-pm", burns[0] as u64);
        snap.push_gauge("slo-latency-slow-burn-pm", burns[1] as u64);
        snap.push_gauge("slo-error-fast-burn-pm", burns[2] as u64);
        snap.push_gauge("slo-error-slow-burn-pm", burns[3] as u64);
    }
    snap
}

/// Sends the typed `Violation` reply, counts the strike against both
/// the session and the connection, and decides whether the strike
/// limit escalates to a disconnect.
fn reject_violation(
    shared: &Shared,
    conn: &mut ConnGuard,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    group_id: u64,
    request_id: u32,
    violation: ProtocolViolation,
) -> Result<ConnAction, ServerError> {
    let session_strikes = shared.registry.strike(group_id);
    conn.strikes = conn.strikes.saturating_add(1);
    send_error(
        shaper,
        stream,
        request_id,
        ErrorCode::Violation,
        &violation.to_string(),
    )?;
    if session_strikes.max(conn.strikes) >= shared.config.max_strikes.max(1) {
        shared
            .stats
            .strike_disconnects
            .fetch_add(1, Ordering::Relaxed);
        // The penalty is this disconnect, not a permanent ban: the
        // session starts its next connection with a clean count.
        shared.registry.reset_strikes(group_id);
        let _ = send_error(
            shaper,
            stream,
            0,
            ErrorCode::QuotaExceeded,
            "strike limit reached; disconnecting",
        );
        return Ok(ConnAction::Close);
    }
    Ok(ConnAction::Continue)
}

fn handle_hello(
    shared: &Shared,
    conn: &mut ConnGuard,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    payload: &[u8],
) -> Result<ConnAction, ServerError> {
    let hello = match HelloPayload::decode(payload) {
        Ok(h) => h,
        Err(e) => {
            send_error(
                shaper,
                stream,
                0,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            )?;
            return Ok(ConnAction::Continue);
        }
    };
    if let Err(v) = validate_hello(&hello, &shared.config.hello_policy) {
        return reject_violation(shared, conn, shaper, stream, hello.group_id, 0, v);
    }
    // A padded server only admits sessions its shape envelope covers: a
    // session the targets cannot contain would burst the constant and
    // hand the observer back the very channel padding closes.
    let shape = &shared.config.shape;
    if !shape.admits(hello.key_bits as usize, hello.k as usize) {
        let v = if hello.key_bits as usize > shape.max_key_bits {
            ProtocolViolation::ShapeBoundExceeded {
                what: "key_bits",
                got: hello.key_bits as usize,
                max: shape.max_key_bits,
            }
        } else {
            ProtocolViolation::ShapeBoundExceeded {
                what: "k",
                got: hello.k as usize,
                max: shape.max_k,
            }
        };
        return reject_violation(shared, conn, shaper, stream, hello.group_id, 0, v);
    }
    if shared
        .registry
        .register(hello.group_id, SessionParams::from_hello(&hello))
        .is_err()
    {
        send_error(
            shaper,
            stream,
            0,
            ErrorCode::QuotaExceeded,
            &format!(
                "session table full ({} live sessions); retry later",
                shared.registry.len()
            ),
        )?;
        return Ok(ConnAction::Continue);
    }
    let ack = HelloAckPayload {
        group_id: hello.group_id,
        database_size: shared.world.database_size() as u64,
        max_payload: shared.config.max_payload as u32,
        workers: shared.config.workers as u32,
        epoch: shared.epoch,
        shape_mode: shape.mode.to_u8(),
        answer_target: shape.answer_target() as u32,
        control_target: shape.control_target() as u32,
        latency_quantum_ms: shape.latency_quantum.as_millis() as u32,
    };
    write_frame(stream, FrameType::HelloAck, &ack.encode())?;
    Ok(ConnAction::Continue)
}

/// What turns a `Query` into a `Subscribe`: the connection identity
/// and mailbox the resulting standing query is registered under.
struct SubscribeLane<'a> {
    conn_id: u64,
    outbox: &'a Arc<Outbox>,
}

fn handle_query(
    shared: &Shared,
    conn: &mut ConnGuard,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    payload: &[u8],
    job_tx: &Sender<Job>,
    subscribe: Option<SubscribeLane<'_>>,
) -> Result<ConnAction, ServerError> {
    let q = match QueryPayload::decode(payload) {
        Ok(q) => q,
        Err(e) => {
            shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            send_error(
                shaper,
                stream,
                0,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            )?;
            return Ok(ConnAction::Continue);
        }
    };
    // Pin the snapshot (and its version) this request will be served
    // from: the answer, and for subscriptions the safe regions too, are
    // all computed against this one consistent view of the index.
    let (snapshot, pinned_version) = shared.world.snapshot();
    // A full standing-query table turns `Subscribe`s away before any
    // worker time is spent on them.
    if subscribe.is_some() && shared.subscriptions.would_reject(q.group_id) {
        shared
            .stats
            .subscribe_rejected
            .fetch_add(1, Ordering::Relaxed);
        let v = ProtocolViolation::SubscriptionLimit {
            max: shared.subscriptions.cap(),
        };
        return reject_violation(shared, conn, shaper, stream, q.group_id, q.request_id, v);
    }
    // Resume the client's trace context: from here to the early returns
    // below, dropping `tracing` without finish commits the server
    // segment with the error flag — rejected queries stay visible.
    let mut tracing = trace::global().resume(&q.trace);
    let active = tracing.as_ref().map(|h| h.activate());
    let Some(params) = shared.registry.get(q.group_id) else {
        shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
        send_error(
            shaper,
            stream,
            q.request_id,
            ErrorCode::NoSession,
            &format!("group {} has no negotiated session", q.group_id),
        )?;
        return Ok(ConnAction::Continue);
    };
    // An idempotent retry: the request was already answered, so replay
    // the cached ciphertext without re-running the query or moving the
    // counters. This check is cheap (one map lookup) and happens before
    // the expensive wire decode.
    if let Some(hit) = shared.registry.cached_answer(q.group_id, q.request_id) {
        shared.stats.replayed.fetch_add(1, Ordering::Relaxed);
        let payload = AnswerPayload {
            request_id: q.request_id,
            two_phase: hit.two_phase,
            replayed: true,
            answer: hit.answer,
        };
        shaper.send(stream, FrameType::Answer, &payload.encode(), Lane::Answer)?;
        // A replay is a success: finish the segment instead of letting
        // the drop-path flag it as an error.
        drop(active);
        if let Some(h) = tracing.take() {
            h.finish();
        }
        return Ok(ConnAction::Continue);
    }
    // --- the validation gate: everything below is checked against the
    // session's own handshake before a worker spends a microsecond. The
    // set count is visible pre-decode; a rewound request ID is caught
    // next (replays of *cached* requests were already served above);
    // the full shape and ciphertext checks run after the wire decode.
    let vspan = trace::span(SpanName::Validate);
    vspan.attr(AttrKey::Users, q.location_sets.len() as u64);
    vspan.attr(AttrKey::Bytes, payload.len() as u64);
    if let Err(v) = validate_set_count(&params, q.location_sets.len()) {
        shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
        return reject_violation(shared, conn, shaper, stream, q.group_id, q.request_id, v);
    }
    if let Err(high_water) = shared.registry.admit_request_id(q.group_id, q.request_id) {
        shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
        let v = ProtocolViolation::RequestIdRewind {
            high_water,
            got: q.request_id,
        };
        return reject_violation(shared, conn, shaper, stream, q.group_id, q.request_id, v);
    }
    let ctx = params.wire_context();
    let query = match QueryMessage::from_wire(&q.query, &ctx) {
        Ok(m) => m,
        Err(e) => {
            shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            send_error(
                shaper,
                stream,
                q.request_id,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            )?;
            return Ok(ConnAction::Continue);
        }
    };
    let mut location_sets = Vec::with_capacity(q.location_sets.len());
    for set in &q.location_sets {
        match LocationSetMessage::from_wire(set) {
            Ok(m) => location_sets.push(m),
            Err(e) => {
                shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
                send_error(
                    shaper,
                    stream,
                    q.request_id,
                    ErrorCode::MalformedPayload,
                    &e.to_string(),
                )?;
                return Ok(ConnAction::Continue);
            }
        }
    }
    if let Err(v) = validate_query(&params, &query, &location_sets) {
        shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
        return reject_violation(shared, conn, shaper, stream, q.group_id, q.request_id, v);
    }
    drop(vspan);
    // For a subscription the candidate expansion is needed twice: the
    // worker runs it inside `process_query`, and the safe regions are
    // computed over the same candidate list after the answer lands.
    // Expand here, before the messages move into the job, so a query
    // the engine would reject is caught with a typed error up front.
    let candidates = match &subscribe {
        Some(_) => match expand_candidates(&query, &location_sets) {
            Ok(c) => Some(c),
            Err(e) => {
                shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
                send_error(
                    shaper,
                    stream,
                    q.request_id,
                    ErrorCode::Protocol,
                    &e.to_string(),
                )?;
                return Ok(ConnAction::Continue);
            }
        },
        None => None,
    };
    let deadline = if q.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(q.deadline_ms as u64)
    };
    let (reply_tx, reply_rx) = bounded::<Reply>(1);
    // Park the segment so the worker thread can activate it; from here
    // on the handle travels with the job.
    drop(active);
    let query_k = query.k;
    let job = Job {
        group_id: q.group_id,
        request_id: q.request_id,
        query,
        location_sets,
        lsp: Arc::clone(&snapshot),
        enqueued: Instant::now(),
        deadline,
        reply: reply_tx,
        trace: tracing.take(),
    };
    // The queued gauge rises *before* the send so a worker's decrement
    // (which can only follow a successful send) never underflows it.
    shared.stats.queued.fetch_add(1, Ordering::SeqCst);
    match job_tx.try_send(job) {
        Ok(()) => {
            shared.stats.inflight.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(job)) => {
            shared.stats.queued.fetch_sub(1, Ordering::SeqCst);
            shared.stats.busy_shed.fetch_add(1, Ordering::Relaxed);
            // The bounced job still owns the trace handle: flag the
            // segment as shed before the drop commits it.
            if let Some(h) = &job.trace {
                let _a = h.activate();
                trace::mark_shed();
            }
            let busy = BusyPayload {
                request_id: q.request_id,
                retry_after_ms: shared.retry_after_hint(),
            };
            shaper.send(stream, FrameType::Busy, &busy.encode(), Lane::Control)?;
            return Ok(ConnAction::Continue);
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.stats.queued.fetch_sub(1, Ordering::SeqCst);
            send_error(
                shaper,
                stream,
                q.request_id,
                ErrorCode::ShuttingDown,
                "server is draining",
            )?;
            return Ok(ConnAction::Continue);
        }
    }
    // Wait for the worker; grace past the deadline covers processing
    // time after a last-moment dequeue.
    let reply = reply_rx.recv_timeout(deadline + REPLY_GRACE);
    shared.stats.inflight.fetch_sub(1, Ordering::SeqCst);
    match reply {
        Ok(Reply::Answer {
            request_id,
            two_phase,
            answer,
        }) => {
            // Cache before replying; `record_answer` also dedups the
            // query counter if a duplicate raced us.
            let fresh = shared
                .registry
                .record_answer(q.group_id, request_id, two_phase, &answer);
            if fresh {
                shared.stats.queries_ok.fetch_add(1, Ordering::Relaxed);
                // A served honest query clears the session's slate.
                shared.registry.reset_strikes(q.group_id);
            } else {
                shared.stats.replayed.fetch_add(1, Ordering::Relaxed);
            }
            let payload = AnswerPayload {
                request_id,
                two_phase,
                replayed: !fresh,
                answer,
            };
            let encoded = payload.encode();
            telemetry::global().incr_by(telemetry::Op::AnswerBytes, encoded.len() as u64);
            shaper.send(stream, FrameType::Answer, &encoded, Lane::Answer)?;
            if let (Some(lane), Some(candidates)) = (subscribe, candidates) {
                return grant_subscription(
                    shared,
                    conn,
                    shaper,
                    stream,
                    &q,
                    &snapshot,
                    pinned_version,
                    query_k,
                    candidates,
                    lane,
                );
            }
            Ok(ConnAction::Continue)
        }
        Ok(Reply::Failure {
            request_id,
            code,
            message,
        }) => {
            if code == ErrorCode::DeadlineExceeded {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            }
            send_error(shaper, stream, request_id, code, &message)?;
            Ok(ConnAction::Continue)
        }
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            send_error(
                shaper,
                stream,
                q.request_id,
                ErrorCode::DeadlineExceeded,
                "no worker reply within the deadline",
            )?;
            Ok(ConnAction::Continue)
        }
    }
}

/// Registers the standing query once its answer is on the wire, sends
/// the `Granted` push with the safe-region token, and self-invalidates
/// if a mutation raced the registration.
#[allow(clippy::too_many_arguments)]
fn grant_subscription(
    shared: &Shared,
    conn: &mut ConnGuard,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    q: &QueryPayload,
    snapshot: &Lsp,
    pinned_version: u64,
    k: usize,
    candidates: Vec<Vec<ppgnn_geo::Point>>,
    lane: SubscribeLane<'_>,
) -> Result<ConnAction, ServerError> {
    let (regions, topk, token) = compute_regions(snapshot, &candidates, k);
    let sub = Subscription {
        group_id: q.group_id,
        request_id: q.request_id,
        conn_id: lane.conn_id,
        version: pinned_version,
        agg: snapshot.config().aggregate,
        margin: token.margin,
        drift_scale: token.drift_scale,
        regions,
        topk,
        outbox: Arc::clone(lane.outbox),
        stale: false,
    };
    if shared.subscriptions.register(sub).is_err() {
        // Lost the race to the cap since the pre-enqueue check.
        shared
            .stats
            .subscribe_rejected
            .fetch_add(1, Ordering::Relaxed);
        let v = ProtocolViolation::SubscriptionLimit {
            max: shared.subscriptions.cap(),
        };
        return reject_violation(shared, conn, shaper, stream, q.group_id, q.request_id, v);
    }
    shared.stats.subscribes_ok.fetch_add(1, Ordering::Relaxed);
    let granted = SubscriptionUpdatePayload {
        request_id: q.request_id,
        kind: SubscriptionKind::Granted,
        version: pinned_version,
        margin: token.margin,
        drift_scale: token.drift_scale,
    };
    // The `Granted` push follows the answer on the same lane; pad-only
    // (the answer's own hold already quantized this request's release).
    send_shaped_unheld(
        &shared.config.shape,
        stream,
        FrameType::SubscriptionUpdate,
        &granted.encode(),
        Lane::Control,
    )?;
    // A mutation can land between snapshot pinning and registration —
    // its invalidation scan ran before this subscription existed. The
    // version gap detects exactly that window; self-invalidating turns
    // a potential missed invalidation into a spurious one.
    let live = shared.world.version();
    if live != pinned_version
        && shared
            .subscriptions
            .invalidate_now(q.group_id, q.request_id, live)
    {
        shared.stats.invalidations.fetch_add(1, Ordering::Relaxed);
    }
    Ok(ConnAction::Continue)
}

/// The admin lane: applies a mutation batch to a dynamic world, scans
/// the standing queries for invalidated safe regions, and acks with
/// the new index version.
fn handle_poi_update(
    shared: &Shared,
    conn: &mut ConnGuard,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    payload: &[u8],
) -> Result<ConnAction, ServerError> {
    let p = match PoiUpdatePayload::decode(payload) {
        Ok(p) => p,
        Err(e) => {
            send_error(
                shaper,
                stream,
                0,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            )?;
            return Ok(ConnAction::Continue);
        }
    };
    // The token check runs first: whether the lane even exists is not
    // something an unauthenticated peer gets to probe.
    if shared.config.admin_token.is_none() || shared.config.admin_token != Some(p.admin_token) {
        return reject_violation(
            shared,
            conn,
            shaper,
            stream,
            0,
            p.request_id,
            ProtocolViolation::AdminUnauthorized,
        );
    }
    let World::Dynamic(dyn_lsp) = &shared.world else {
        send_error(
            shaper,
            stream,
            p.request_id,
            ErrorCode::Protocol,
            "server runs a static world; there is no index to mutate",
        )?;
        return Ok(ConnAction::Continue);
    };
    let (applied, version, invalidated) = match &shared.durable {
        // The durable path: predict the version, log, then apply — all
        // under the durability lock, which serializes every mutation
        // (queries only read published snapshots and never take it).
        Some(durable) => {
            let mut st = durable.lock().unwrap_or_else(|poison| poison.into_inner());
            let key = (p.request_id, wal::batch_id(p.request_id, &p.ops));
            if let Some(&(version, applied, invalidated)) = st.acked.get(&key) {
                // The admin re-sent a batch we already admitted —
                // typically because a crash swallowed the original
                // ack. Re-ack exactly what the original said (for a
                // batch replayed from the WAL at boot the remembered
                // invalidation count is 0, which is truthful: the
                // restart orphaned every standing query), no re-apply.
                shared
                    .stats
                    .poi_update_replays
                    .fetch_add(1, Ordering::Relaxed);
                let ack = PoiUpdateAckPayload {
                    request_id: p.request_id,
                    version,
                    applied,
                    invalidated,
                };
                write_frame(stream, FrameType::PoiUpdateAck, &ack.encode())?;
                return Ok(ConnAction::Continue);
            }
            let version = dyn_lsp.version() + 1;
            // Log-before-apply: a batch that cannot reach the platter
            // is refused outright, never half-admitted.
            if let Err(e) = st.wal.append(version, p.request_id, key.1, &p.ops) {
                send_error(
                    shaper,
                    stream,
                    p.request_id,
                    ErrorCode::Internal,
                    &format!("wal append failed; batch refused: {e}"),
                )?;
                return Ok(ConnAction::Continue);
            }
            // `DynamicLsp::apply` spans/times `index-mutate` itself.
            let (applied, published) = dyn_lsp.apply(&p.ops);
            debug_assert_eq!(published, version, "wal and index versions must agree");
            // Invalidate inside the lock so the remembered count is
            // the one this batch's ack carries — a later replayed ack
            // must echo it verbatim.
            let invalidated = shared.subscriptions.invalidate_for_ops(&p.ops, published);
            st.remember(key, published, applied as u32, invalidated as u32);
            st.ops_since_checkpoint += (p.ops.len() as u64).max(1);
            if st.ops_since_checkpoint >= st.checkpoint_every_ops {
                // The snapshot is consistent with `published`: this
                // lock is the only mutation path.
                match st.wal.checkpoint(&dyn_lsp.live_pois(), published) {
                    Ok(()) => {
                        shared.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
                        st.ops_since_checkpoint = 0;
                    }
                    Err(e) => {
                        // Durability degrades to the WAL alone; the
                        // next batch retries the checkpoint.
                        eprintln!("[ppgnn-server] checkpoint at v{published} failed: {e}");
                    }
                }
            }
            (applied, published, invalidated)
        }
        None => {
            // `DynamicLsp::apply` spans/times `index-mutate` itself.
            let (applied, version) = dyn_lsp.apply(&p.ops);
            let invalidated = shared.subscriptions.invalidate_for_ops(&p.ops, version);
            (applied, version, invalidated)
        }
    };
    shared.stats.poi_updates.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .poi_ops
        .fetch_add(p.ops.len() as u64, Ordering::Relaxed);
    shared
        .stats
        .invalidations
        .fetch_add(invalidated as u64, Ordering::Relaxed);
    let ack = PoiUpdateAckPayload {
        request_id: p.request_id,
        version,
        applied: applied as u32,
        invalidated: invalidated as u32,
    };
    write_frame(stream, FrameType::PoiUpdateAck, &ack.encode())?;
    Ok(ConnAction::Continue)
}

/// Drops a standing query; idempotent — the confirming `Ended` push is
/// sent whether or not the subscription still existed.
fn handle_unsubscribe(
    shared: &Shared,
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    payload: &[u8],
) -> Result<ConnAction, ServerError> {
    let u = match UnsubscribePayload::decode(payload) {
        Ok(u) => u,
        Err(e) => {
            send_error(
                shaper,
                stream,
                0,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            )?;
            return Ok(ConnAction::Continue);
        }
    };
    if shared.subscriptions.remove(u.group_id, u.request_id) {
        shared.stats.unsubscribes.fetch_add(1, Ordering::Relaxed);
    }
    let ended = SubscriptionUpdatePayload {
        request_id: u.request_id,
        kind: SubscriptionKind::Ended,
        version: shared.world.version(),
        margin: 0.0,
        drift_scale: 1,
    };
    shaper.send(
        stream,
        FrameType::SubscriptionUpdate,
        &ended.encode(),
        Lane::Control,
    )?;
    Ok(ConnAction::Continue)
}

fn send_error(
    shaper: &ResponseShaper,
    stream: &mut impl std::io::Write,
    request_id: u32,
    code: ErrorCode,
    message: &str,
) -> Result<(), ServerError> {
    let payload = ErrorPayload {
        request_id,
        code,
        message: to_owned_capped(message),
    };
    shaper.send(stream, FrameType::Error, &payload.encode(), Lane::Control)
}

fn to_owned_capped(message: &str) -> String {
    const CAP: usize = 512;
    if message.len() <= CAP {
        message.to_owned()
    } else {
        let mut end = CAP;
        while !message.is_char_boundary(end) {
            end -= 1;
        }
        message[..end].to_owned()
    }
}

/// Decrements the live-worker gauge however the thread exits — normal
/// drain, deliberate post-panic exit, or an unwind escaping the loop.
struct LiveWorkerGuard<'a>(&'a ServerStats);

impl Drop for LiveWorkerGuard<'_> {
    fn drop(&mut self) {
        self.0.live_workers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Receiver<Job>, index: u64) {
    shared.stats.live_workers.fetch_add(1, Ordering::SeqCst);
    let _guard = LiveWorkerGuard(&shared.stats);
    let mut rng = StdRng::seed_from_u64(shared.config.rng_seed.wrapping_add(index));
    // `recv` returns Err only when every sender is dropped AND the
    // queue is empty — exactly the drain semantics shutdown needs.
    while let Ok(mut job) = rx.recv() {
        shared.stats.queued.fetch_sub(1, Ordering::SeqCst);
        if job.enqueued.elapsed() >= job.deadline {
            // Dropping the handle with the shed flag set commits the
            // segment as shed — always kept by tail sampling.
            if let Some(h) = &job.trace {
                let _a = h.activate();
                trace::mark_shed();
            }
            // An expired query still burns the latency SLO: it spent at
            // least a full deadline in the queue.
            telemetry::global()
                .record_duration(telemetry::Stage::ServeQuery, job.enqueued.elapsed());
            let _ = job.reply.send(Reply::Failure {
                request_id: job.request_id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired while queued".into(),
            });
            continue;
        }
        // Spans opened inside the engine (candidate-eval, crypto
        // batches, sanitation) land in this query's server segment.
        let active = job.trace.as_ref().map(|h| h.activate());
        // Engine panics must not take the reply channel down with them:
        // catch the unwind, turn it into a typed failure, then let this
        // worker die for the supervisor to replace — after an unwind
        // the engine's internal state is not worth trusting.
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut ledger = CostLedger::new();
            job.lsp
                .process_query(&job.query, &job.location_sets, &mut ledger, &mut rng)
        }));
        let reply = match caught {
            Ok(Ok(answer)) => Reply::Answer {
                request_id: job.request_id,
                two_phase: matches!(answer, AnswerMessage::TwoPhase(_)),
                answer: answer.to_wire(&job.query.pk),
            },
            Ok(Err(e)) => {
                trace::mark_error();
                Reply::Failure {
                    request_id: job.request_id,
                    code: ErrorCode::Protocol,
                    message: e.to_string(),
                }
            }
            Err(panic) => {
                trace::mark_error();
                shared.stats.worker_panics.fetch_add(1, Ordering::Relaxed);
                let detail = panic_message(&panic);
                let reply = Reply::Failure {
                    request_id: job.request_id,
                    code: ErrorCode::Internal,
                    message: format!(
                        "worker panicked processing request {} of group {}: {detail}",
                        job.request_id, job.group_id
                    ),
                };
                let _ = job.reply.send(reply);
                return; // the supervisor respawns a clean replacement
            }
        };
        // The segment finishes here: error flags set above survive
        // `finish`, which runs the tail-sampling keep decision.
        drop(active);
        if let Some(h) = job.trace.take() {
            h.finish();
        }
        telemetry::global().record_duration(telemetry::Stage::ServeQuery, job.enqueued.elapsed());
        // A gone receiver means the connection died or timed out; the
        // query result is simply dropped.
        let _ = job.reply.send(reply);
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_default_passes_validation() {
        let built = ServerConfig::builder().build().unwrap();
        let default = ServerConfig::default();
        assert_eq!(built.workers, default.workers);
        assert_eq!(built.queue_depth, default.queue_depth);
        assert_eq!(built.max_payload, default.max_payload);
    }

    #[test]
    fn builder_setters_reach_the_config() {
        let c = ServerConfig::builder()
            .workers(7)
            .queue_depth(3)
            .max_connections(9)
            .default_deadline(Duration::from_millis(1234))
            .max_payload(4096)
            .rng_seed(0xfeed)
            .max_sessions(5)
            .session_idle_ttl(Duration::from_secs(60))
            .rate_limit_per_sec(10.0)
            .rate_limit_burst(20)
            .max_strikes(2)
            .build()
            .unwrap();
        assert_eq!(c.workers, 7);
        assert_eq!(c.queue_depth, 3);
        assert_eq!(c.max_connections, 9);
        assert_eq!(c.default_deadline, Duration::from_millis(1234));
        assert_eq!(c.max_payload, 4096);
        assert_eq!(c.rng_seed, 0xfeed);
        assert_eq!(c.max_sessions, 5);
        assert_eq!(c.session_idle_ttl, Duration::from_secs(60));
        assert_eq!(c.rate_limit_per_sec, 10.0);
        assert_eq!(c.rate_limit_burst, 20);
        assert_eq!(c.max_strikes, 2);
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        // Each case names the offending knob in its error message.
        let cases: [(ServerConfigBuilder, &str); 8] = [
            (ServerConfig::builder().workers(0), "workers"),
            (
                ServerConfig::builder().max_connections(0),
                "max_connections",
            ),
            (ServerConfig::builder().queue_depth(0), "queue_depth"),
            (
                ServerConfig::builder().default_deadline(Duration::ZERO),
                "default_deadline",
            ),
            (ServerConfig::builder().max_payload(63), "max_payload"),
            (ServerConfig::builder().max_sessions(0), "max_sessions"),
            (
                ServerConfig::builder().session_idle_ttl(Duration::ZERO),
                "session_idle_ttl",
            ),
            (ServerConfig::builder().max_strikes(0), "max_strikes"),
        ];
        for (builder, knob) in cases {
            let err = builder.build().unwrap_err();
            assert!(
                err.to_string().contains(knob),
                "error {err} does not name {knob}"
            );
        }
    }

    #[test]
    fn builder_rejects_inconsistent_rate_limiting() {
        let err = ServerConfig::builder()
            .rate_limit_per_sec(5.0)
            .rate_limit_burst(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rate_limit_burst"));

        let err = ServerConfig::builder()
            .rate_limit_per_sec(f64::NAN)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("rate_limit_per_sec"));

        // Zero per-sec disables limiting entirely; burst is then moot.
        assert!(ServerConfig::builder()
            .rate_limit_per_sec(0.0)
            .rate_limit_burst(0)
            .build()
            .is_ok());
    }

    #[test]
    fn builder_rejects_zero_timeouts() {
        for builder in [
            ServerConfig::builder().frame_read_timeout(Duration::ZERO),
            ServerConfig::builder().write_timeout(Duration::ZERO),
        ] {
            let err = builder.build().unwrap_err();
            assert!(err.to_string().contains("timeout"));
        }
    }

    #[test]
    fn builder_rejects_degenerate_shape_policies() {
        // Envelope below the Hello admission floor: every handshake
        // the server would otherwise accept bursts the padding.
        let err = ServerConfig::builder()
            .shape(ShapePolicy::padded(16, 4, Duration::from_millis(200)))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("min_key_bits"), "{err}");

        let err = ServerConfig::builder()
            .shape(ShapePolicy::padded(128, 0, Duration::from_millis(200)))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("max_k"), "{err}");

        let err = ServerConfig::builder()
            .shape(ShapePolicy::padded(128, 4, Duration::ZERO))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("latency_quantum"), "{err}");

        // Answer target past the frame cap: clients would reject every
        // padded answer against their own max_payload.
        let err = ServerConfig::builder()
            .shape(ShapePolicy::padded(4096, 64, Duration::from_millis(200)))
            .max_payload(1024)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("max_payload"), "{err}");
    }

    #[test]
    fn builder_accepts_a_sound_padded_policy() {
        let policy = ShapePolicy::padded(128, 8, Duration::from_millis(200));
        let c = ServerConfig::builder().shape(policy).build().unwrap();
        assert_eq!(c.shape, policy);
        assert!(c.shape.answer_target() > 0);
    }

    #[test]
    fn retry_hints_jitter_within_the_advertised_band() {
        let config = ServerConfig::builder().rng_seed(7).build().unwrap();
        let shared = Shared {
            world: World::Static(Arc::new(Lsp::new(Vec::new(), PpgnnConfig::fast_test()))),
            config,
            registry: SessionRegistry::new(),
            subscriptions: SubscriptionRegistry::new(16),
            stats: ServerStats::default(),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            started: Instant::now(),
            obs: Observability::new(None, None),
            epoch: 0,
            durable: None,
            recovery: None,
            busy_seq: AtomicU64::new(0),
        };
        let lo = RETRY_AFTER_MS - (RETRY_AFTER_MS / 2).max(1) / 2;
        let hi = lo + (RETRY_AFTER_MS / 2).max(1);
        let hints: Vec<u32> = (0..64).map(|_| shared.retry_after_hint()).collect();
        assert!(
            hints.iter().all(|&h| (lo..=hi).contains(&h)),
            "hint outside [{lo}, {hi}]: {hints:?}"
        );
        // Jitter actually jitters: a constant stream would re-create
        // the synchronized retry herd the hint exists to break up.
        assert!(hints.iter().any(|&h| h != hints[0]), "{hints:?}");
    }
}
