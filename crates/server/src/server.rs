//! The networked LSP: TCP acceptor, bounded worker pool, backpressure,
//! deadlines, and graceful drain.
//!
//! Threading model:
//!
//! * one **acceptor** thread polls a non-blocking listener and spawns a
//!   connection thread per socket, refusing (with a `Busy` frame) past
//!   `max_connections`;
//! * each **connection** thread parses frames, resolves the group's
//!   [`SessionParams`] from the registry, decodes the wire messages, and
//!   enqueues a job on a bounded channel — a full queue sheds the
//!   request with `Busy` instead of queueing unboundedly;
//! * a fixed pool of **worker** threads shares one `Arc<Lsp>` (the
//!   engine is `Send + Sync`), drops jobs whose deadline expired while
//!   queued, and replies through a per-request channel.
//!
//! Shutdown: the flag stops the acceptor and makes connection threads
//! say `Goodbye` at their next idle poll; requests already enqueued are
//! still processed and answered (the workers drain the channel before
//! exiting), so no accepted query is lost.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use ppgnn_core::messages::{AnswerMessage, LocationSetMessage, QueryMessage};
use ppgnn_core::Lsp;
use ppgnn_sim::CostLedger;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{ErrorCode, ServerError};
use crate::frame::{
    read_frame_with_lead, write_frame, AnswerPayload, BusyPayload, ErrorPayload, FrameType,
    HelloAckPayload, HelloPayload, QueryPayload, DEFAULT_MAX_PAYLOAD,
};
use crate::registry::{SessionParams, SessionRegistry};

/// How often an idle connection thread checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// Blocking-read guard while the rest of a frame is in flight.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(30);
/// Suggested client backoff carried in `Busy` frames.
const RETRY_AFTER_MS: u32 = 50;
/// Grace added to a request deadline while waiting for the worker reply.
const REPLY_GRACE: Duration = Duration::from_secs(5);

/// Tunables for [`serve`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads processing queries.
    pub workers: usize,
    /// Accepted connections at once; more are refused with `Busy`.
    pub max_connections: usize,
    /// Bounded depth of the job queue — the max in-flight backpressure
    /// limit; a full queue sheds with `Busy`.
    pub queue_depth: usize,
    /// Deadline applied when a query carries `deadline_ms == 0`.
    pub default_deadline: Duration,
    /// Largest accepted frame payload.
    pub max_payload: usize,
    /// Seed for the workers' randomizer RNGs.
    pub rng_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_connections: 64,
            queue_depth: 32,
            default_deadline: Duration::from_secs(30),
            max_payload: DEFAULT_MAX_PAYLOAD,
            rng_seed: 0x5eed_cafe,
        }
    }
}

/// Monotonic service counters.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub accepted: AtomicU64,
    /// Connections refused over `max_connections`.
    pub refused: AtomicU64,
    /// Queries answered.
    pub queries_ok: AtomicU64,
    /// Queries failed (malformed, protocol error, internal).
    pub queries_err: AtomicU64,
    /// Queries shed with `Busy` because the queue was full.
    pub busy_shed: AtomicU64,
    /// Queries dropped because their deadline expired in the queue.
    pub deadline_expired: AtomicU64,
    /// Jobs currently enqueued or being processed.
    pub inflight: AtomicU64,
}

struct Job {
    request_id: u32,
    query: QueryMessage,
    location_sets: Vec<LocationSetMessage>,
    enqueued: Instant,
    deadline: Duration,
    reply: Sender<Reply>,
}

enum Reply {
    Answer {
        request_id: u32,
        two_phase: bool,
        answer: Vec<u8>,
    },
    Failure {
        request_id: u32,
        code: ErrorCode,
        message: String,
    },
}

struct Shared {
    lsp: Arc<Lsp>,
    config: ServerConfig,
    registry: SessionRegistry,
    stats: ServerStats,
    shutdown: AtomicBool,
    connections: AtomicU64,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    job_tx: Option<Sender<Job>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Service counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.shared.registry
    }

    /// Signals shutdown and blocks until every thread exits. Queries
    /// already enqueued are processed and answered before workers stop.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads notice the flag at their next poll, finish
        // any request they are waiting on, say Goodbye, and exit —
        // dropping their job senders.
        let conns = std::mem::take(&mut *self.conn_threads.lock().expect("conn list poisoned"));
        for h in conns {
            let _ = h.join();
        }
        // With every sender gone the channel disconnects; workers drain
        // whatever is still queued, then exit.
        drop(self.job_tx.take());
        for h in std::mem::take(&mut self.workers) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Binds `addr` and starts serving `lsp` with `config`.
pub fn serve(
    lsp: Arc<Lsp>,
    addr: impl ToSocketAddrs,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;

    let (job_tx, job_rx) = bounded::<Job>(config.queue_depth.max(1));
    let shared = Arc::new(Shared {
        lsp,
        config: config.clone(),
        registry: SessionRegistry::new(),
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
        connections: AtomicU64::new(0),
    });

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            let rx = job_rx.clone();
            std::thread::Builder::new()
                .name(format!("ppgnn-worker-{i}"))
                .spawn(move || worker_loop(shared, rx, i as u64))
                .expect("spawn worker")
        })
        .collect();
    drop(job_rx);

    let conn_threads = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = Arc::clone(&shared);
        let job_tx = job_tx.clone();
        let conn_threads = Arc::clone(&conn_threads);
        std::thread::Builder::new()
            .name("ppgnn-acceptor".into())
            .spawn(move || accept_loop(listener, shared, job_tx, conn_threads))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        local_addr,
        shared,
        job_tx: Some(job_tx),
        acceptor: Some(acceptor),
        workers,
        conn_threads,
    })
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    job_tx: Sender<Job>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let active = shared.connections.load(Ordering::SeqCst);
                if active >= shared.config.max_connections as u64 {
                    shared.stats.refused.fetch_add(1, Ordering::Relaxed);
                    refuse(stream);
                    continue;
                }
                shared.connections.fetch_add(1, Ordering::SeqCst);
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let shared2 = Arc::clone(&shared);
                let tx = job_tx.clone();
                let handle = std::thread::Builder::new()
                    .name("ppgnn-conn".into())
                    .spawn(move || {
                        let _ = connection_loop(&shared2, stream, tx);
                        shared2.connections.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection");
                conn_threads
                    .lock()
                    .expect("conn list poisoned")
                    .push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn refuse(mut stream: TcpStream) {
    let payload = BusyPayload {
        request_id: 0,
        retry_after_ms: RETRY_AFTER_MS,
    }
    .encode();
    let _ = write_frame(&mut stream, FrameType::Busy, &payload);
    let _ = stream.flush();
}

/// Serves one connection until the peer leaves or shutdown is signaled.
fn connection_loop(
    shared: &Shared,
    mut stream: TcpStream,
    job_tx: Sender<Job>,
) -> Result<(), ServerError> {
    use std::io::Read as _;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    loop {
        // The first byte is the idle poll point: a timeout here leaves
        // the stream exactly at a frame boundary.
        let mut lead = [0u8; 1];
        match stream.read(&mut lead) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                stream.set_read_timeout(Some(FRAME_READ_TIMEOUT))?;
                let frame = read_frame_with_lead(&mut stream, lead[0], shared.config.max_payload)?;
                stream.set_read_timeout(Some(POLL_INTERVAL))?;
                match frame.frame_type {
                    FrameType::Hello => handle_hello(shared, &mut stream, &frame.payload)?,
                    // Queries accepted before the signal drain; ones
                    // arriving after it are refused.
                    FrameType::Query if shared.shutdown.load(Ordering::SeqCst) => {
                        let request_id = QueryPayload::decode(&frame.payload)
                            .map(|q| q.request_id)
                            .unwrap_or(0);
                        send_error(
                            &mut stream,
                            request_id,
                            ErrorCode::ShuttingDown,
                            "server is draining",
                        )?;
                    }
                    FrameType::Query => handle_query(shared, &mut stream, &frame.payload, &job_tx)?,
                    FrameType::Ping => write_frame(&mut stream, FrameType::Pong, &[])?,
                    FrameType::Goodbye => return Ok(()),
                    other => {
                        send_error(
                            &mut stream,
                            0,
                            ErrorCode::MalformedPayload,
                            &format!("unexpected {other:?} frame"),
                        )?;
                    }
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = write_frame(&mut stream, FrameType::Goodbye, &[]);
                    return Ok(());
                }
            }
            Err(e) => return Err(ServerError::Io(e)),
        }
    }
}

fn handle_hello(
    shared: &Shared,
    stream: &mut TcpStream,
    payload: &[u8],
) -> Result<(), ServerError> {
    let hello = match HelloPayload::decode(payload) {
        Ok(h) => h,
        Err(e) => {
            return send_error(stream, 0, ErrorCode::MalformedPayload, &e.to_string());
        }
    };
    shared
        .registry
        .register(hello.group_id, SessionParams::from_hello(&hello));
    let ack = HelloAckPayload {
        group_id: hello.group_id,
        database_size: shared.lsp.database_size() as u64,
        max_payload: shared.config.max_payload as u32,
        workers: shared.config.workers as u32,
    };
    write_frame(stream, FrameType::HelloAck, &ack.encode())
}

fn handle_query(
    shared: &Shared,
    stream: &mut TcpStream,
    payload: &[u8],
    job_tx: &Sender<Job>,
) -> Result<(), ServerError> {
    let q = match QueryPayload::decode(payload) {
        Ok(q) => q,
        Err(e) => {
            shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            return send_error(stream, 0, ErrorCode::MalformedPayload, &e.to_string());
        }
    };
    let Some(params) = shared.registry.get(q.group_id) else {
        shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
        return send_error(
            stream,
            q.request_id,
            ErrorCode::NoSession,
            &format!("group {} has no negotiated session", q.group_id),
        );
    };
    let ctx = params.wire_context();
    let query = match QueryMessage::from_wire(&q.query, &ctx) {
        Ok(m) => m,
        Err(e) => {
            shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            return send_error(
                stream,
                q.request_id,
                ErrorCode::MalformedPayload,
                &e.to_string(),
            );
        }
    };
    let mut location_sets = Vec::with_capacity(q.location_sets.len());
    for set in &q.location_sets {
        match LocationSetMessage::from_wire(set) {
            Ok(m) => location_sets.push(m),
            Err(e) => {
                shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
                return send_error(
                    stream,
                    q.request_id,
                    ErrorCode::MalformedPayload,
                    &e.to_string(),
                );
            }
        }
    }
    let deadline = if q.deadline_ms == 0 {
        shared.config.default_deadline
    } else {
        Duration::from_millis(q.deadline_ms as u64)
    };
    let (reply_tx, reply_rx) = bounded::<Reply>(1);
    let job = Job {
        request_id: q.request_id,
        query,
        location_sets,
        enqueued: Instant::now(),
        deadline,
        reply: reply_tx,
    };
    match job_tx.try_send(job) {
        Ok(()) => {
            shared.stats.inflight.fetch_add(1, Ordering::SeqCst);
        }
        Err(TrySendError::Full(_)) => {
            shared.stats.busy_shed.fetch_add(1, Ordering::Relaxed);
            let busy = BusyPayload {
                request_id: q.request_id,
                retry_after_ms: RETRY_AFTER_MS,
            };
            return write_frame(stream, FrameType::Busy, &busy.encode());
        }
        Err(TrySendError::Disconnected(_)) => {
            return send_error(
                stream,
                q.request_id,
                ErrorCode::ShuttingDown,
                "server is draining",
            );
        }
    }
    // Wait for the worker; grace past the deadline covers processing
    // time after a last-moment dequeue.
    let reply = reply_rx.recv_timeout(deadline + REPLY_GRACE);
    shared.stats.inflight.fetch_sub(1, Ordering::SeqCst);
    match reply {
        Ok(Reply::Answer {
            request_id,
            two_phase,
            answer,
        }) => {
            shared.stats.queries_ok.fetch_add(1, Ordering::Relaxed);
            shared.registry.record_query(q.group_id);
            let payload = AnswerPayload {
                request_id,
                two_phase,
                answer,
            };
            write_frame(stream, FrameType::Answer, &payload.encode())
        }
        Ok(Reply::Failure {
            request_id,
            code,
            message,
        }) => {
            if code == ErrorCode::DeadlineExceeded {
                shared
                    .stats
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.queries_err.fetch_add(1, Ordering::Relaxed);
            }
            send_error(stream, request_id, code, &message)
        }
        Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
            shared
                .stats
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            send_error(
                stream,
                q.request_id,
                ErrorCode::DeadlineExceeded,
                "no worker reply within the deadline",
            )
        }
    }
}

fn send_error(
    stream: &mut TcpStream,
    request_id: u32,
    code: ErrorCode,
    message: &str,
) -> Result<(), ServerError> {
    let payload = ErrorPayload {
        request_id,
        code,
        message: to_owned_capped(message),
    };
    write_frame(stream, FrameType::Error, &payload.encode())
}

fn to_owned_capped(message: &str) -> String {
    const CAP: usize = 512;
    if message.len() <= CAP {
        message.to_owned()
    } else {
        let mut end = CAP;
        while !message.is_char_boundary(end) {
            end -= 1;
        }
        message[..end].to_owned()
    }
}

fn worker_loop(shared: Arc<Shared>, rx: Receiver<Job>, index: u64) {
    let mut rng = StdRng::seed_from_u64(shared.config.rng_seed.wrapping_add(index));
    // `recv` returns Err only when every sender is dropped AND the
    // queue is empty — exactly the drain semantics shutdown needs.
    while let Ok(job) = rx.recv() {
        if job.enqueued.elapsed() >= job.deadline {
            let _ = job.reply.send(Reply::Failure {
                request_id: job.request_id,
                code: ErrorCode::DeadlineExceeded,
                message: "deadline expired while queued".into(),
            });
            continue;
        }
        let mut ledger = CostLedger::new();
        let result =
            shared
                .lsp
                .process_query(&job.query, &job.location_sets, &mut ledger, &mut rng);
        let reply = match result {
            Ok(answer) => Reply::Answer {
                request_id: job.request_id,
                two_phase: matches!(answer, AnswerMessage::TwoPhase(_)),
                answer: answer.to_wire(&job.query.pk),
            },
            Err(e) => Reply::Failure {
                request_id: job.request_id,
                code: ErrorCode::Protocol,
                message: e.to_string(),
            },
        };
        // A gone receiver means the connection died or timed out; the
        // query result is simply dropped.
        let _ = job.reply.send(reply);
    }
}
