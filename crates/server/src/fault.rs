//! Deterministic fault injection for the framed transport.
//!
//! Chaos testing needs the network to misbehave *reproducibly*: the
//! same seed must produce the same schedule of delays, corruptions,
//! truncations, and severed connections, so a failing soak run can be
//! replayed byte for byte. [`FaultConfig`] is the knob set, a
//! [`FaultPlan`] is the per-connection schedule derived from it, and
//! [`FaultyStream`] applies the plan to any [`Transport`].
//!
//! Faults are injected on the server side of the socket and hit both
//! directions of traffic: corrupting a read mangles client→server
//! frames, corrupting a write mangles server→client frames. Every
//! fault resolves quickly — a sever also shuts the underlying socket
//! down so the peer observes EOF instead of hanging until a timeout.
//!
//! The RNG here is a self-contained SplitMix64, deliberately not the
//! `rand` crate: the schedule stays identical across `rand` versions
//! and build configurations.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The transport surface the server needs from a connection: byte I/O
/// plus the socket controls `connection_loop` uses for its idle poll.
/// Implemented by [`TcpStream`] and by [`FaultyStream`] wrapping one.
pub trait Transport: Read + Write + Send {
    /// Sets (or clears) the blocking-read timeout.
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()>;
    /// Sets (or clears) the blocking-write timeout, so a peer that
    /// never drains its receive buffer cannot wedge a writer thread.
    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()>;
    /// Disables Nagle batching.
    fn set_nodelay(&self, on: bool) -> std::io::Result<()>;
    /// Closes both directions of the underlying socket.
    fn shutdown(&self) -> std::io::Result<()>;
}

impl Transport for TcpStream {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_read_timeout(self, dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        TcpStream::set_write_timeout(self, dur)
    }

    fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        TcpStream::set_nodelay(self, on)
    }

    fn shutdown(&self) -> std::io::Result<()> {
        TcpStream::shutdown(self, std::net::Shutdown::Both)
    }
}

/// Probabilities and bounds for injected transport faults.
///
/// Each probability is evaluated independently per I/O call (a frame is
/// typically one write and a handful of reads). All zeros means the
/// wrapper is transparent.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Seed for the whole schedule; each connection derives its own
    /// stream from this and its connection index.
    pub seed: u64,
    /// Probability of stalling an I/O call.
    pub delay_prob: f64,
    /// Upper bound on one injected stall.
    pub max_delay: Duration,
    /// Probability of flipping one byte passing through a call.
    pub corrupt_prob: f64,
    /// Probability of delivering only a prefix of a call's bytes and
    /// then severing — a mid-frame cut.
    pub truncate_prob: f64,
    /// Probability of severing the connection outright.
    pub sever_prob: f64,
}

impl FaultConfig {
    /// A transparent plan (all probabilities zero).
    pub fn off(seed: u64) -> Self {
        FaultConfig {
            seed,
            delay_prob: 0.0,
            max_delay: Duration::ZERO,
            corrupt_prob: 0.0,
            truncate_prob: 0.0,
            sever_prob: 0.0,
        }
    }

    /// A moderate all-faults mix, useful as a chaos-test default.
    pub fn mixed(seed: u64) -> Self {
        FaultConfig {
            seed,
            delay_prob: 0.05,
            max_delay: Duration::from_millis(20),
            corrupt_prob: 0.02,
            truncate_prob: 0.01,
            sever_prob: 0.01,
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.delay_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.truncate_prob > 0.0
            || self.sever_prob > 0.0
    }

    /// Derives the deterministic schedule for one connection.
    pub fn plan_for(&self, connection_index: u64) -> FaultPlan {
        // Splitting the seed through one SplitMix64 step decorrelates
        // consecutive connection indices.
        let mut mix = SplitMix64::new(self.seed ^ connection_index.wrapping_mul(0x9e37_79b9));
        FaultPlan {
            rng: SplitMix64::new(mix.next_u64()),
            config: self.clone(),
        }
    }
}

/// SplitMix64: tiny, seedable, and stable across builds.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// What the plan says to do to one I/O call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Pass the call through untouched.
    None,
    /// Stall for the given duration first, then pass through.
    Delay(Duration),
    /// Flip one byte (offset chosen modulo the buffer length).
    Corrupt { offset: u64 },
    /// Deliver only a prefix, then sever.
    Truncate,
    /// Sever immediately.
    Sever,
}

/// The deterministic per-connection fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: SplitMix64,
    config: FaultConfig,
}

impl FaultPlan {
    /// Rolls the dice for the next I/O call. Severing faults win over
    /// corrupting ones so a schedule cannot corrupt-after-cut.
    pub fn next_action(&mut self) -> FaultAction {
        // One roll per fault class keeps the stream aligned no matter
        // which classes are enabled.
        let sever = self.rng.next_f64();
        let truncate = self.rng.next_f64();
        let corrupt = self.rng.next_f64();
        let delay = self.rng.next_f64();
        let offset = self.rng.next_u64();
        if sever < self.config.sever_prob {
            FaultAction::Sever
        } else if truncate < self.config.truncate_prob {
            FaultAction::Truncate
        } else if corrupt < self.config.corrupt_prob {
            FaultAction::Corrupt { offset }
        } else if delay < self.config.delay_prob {
            let nanos = self.config.max_delay.as_nanos() as u64;
            let d = if nanos == 0 { 0 } else { offset % nanos };
            FaultAction::Delay(Duration::from_nanos(d))
        } else {
            FaultAction::None
        }
    }
}

/// A [`Transport`] that injects its plan's faults into every call.
pub struct FaultyStream<S: Transport> {
    inner: S,
    plan: FaultPlan,
    severed: bool,
    /// Counts every injected fault (shared with server stats).
    injected: Arc<AtomicU64>,
}

impl<S: Transport> FaultyStream<S> {
    /// Wraps `inner`, counting injected faults into `injected`.
    pub fn new(inner: S, plan: FaultPlan, injected: Arc<AtomicU64>) -> Self {
        FaultyStream {
            inner,
            plan,
            severed: false,
            injected,
        }
    }

    /// Severs now: shuts the socket down so the peer sees EOF promptly
    /// instead of stalling in a blocked read.
    fn sever(&mut self) -> std::io::Error {
        self.severed = true;
        let _ = self.inner.shutdown();
        std::io::Error::new(std::io::ErrorKind::ConnectionReset, "injected sever")
    }
}

impl<S: Transport> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.severed {
            // A severed connection reads as clean EOF mid-frame.
            return Ok(0);
        }
        match self.plan.next_action() {
            FaultAction::None => self.inner.read(buf),
            FaultAction::Delay(d) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.read(buf)
            }
            FaultAction::Corrupt { offset } => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    self.injected.fetch_add(1, Ordering::Relaxed);
                    buf[(offset % n as u64) as usize] ^= 0x55;
                }
                Ok(n)
            }
            FaultAction::Truncate => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let n = self.inner.read(buf)?;
                self.severed = true;
                let _ = self.inner.shutdown();
                // Deliver a strict prefix; the next read reports EOF.
                Ok(n / 2)
            }
            FaultAction::Sever => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(self.sever())
            }
        }
    }
}

impl<S: Transport> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.severed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected sever",
            ));
        }
        match self.plan.next_action() {
            FaultAction::None => self.inner.write(buf),
            FaultAction::Delay(d) => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(d);
                self.inner.write(buf)
            }
            FaultAction::Corrupt { offset } => {
                if buf.is_empty() {
                    return self.inner.write(buf);
                }
                self.injected.fetch_add(1, Ordering::Relaxed);
                let mut copy = buf.to_vec();
                copy[(offset % buf.len() as u64) as usize] ^= 0x55;
                // Write the mangled copy in full so the caller's
                // write_all sees success and the frame stays aligned:
                // the CRC, not a short write, must catch this.
                let mut sent = 0;
                while sent < copy.len() {
                    match self.inner.write(&copy[sent..]) {
                        Ok(0) => break,
                        Ok(n) => sent += n,
                        Err(e) => return Err(e),
                    }
                }
                Ok(buf.len())
            }
            FaultAction::Truncate => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                let half = buf.len() / 2;
                if half > 0 {
                    let _ = self.inner.write(&buf[..half]);
                    let _ = self.inner.flush();
                }
                Err(self.sever())
            }
            FaultAction::Sever => {
                self.injected.fetch_add(1, Ordering::Relaxed);
                Err(self.sever())
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.severed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "injected sever",
            ));
        }
        self.inner.flush()
    }
}

impl<S: Transport> Transport for FaultyStream<S> {
    fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_read_timeout(dur)
    }

    fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.inner.set_write_timeout(dur)
    }

    fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(on)
    }

    fn shutdown(&self) -> std::io::Result<()> {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// An in-memory Transport: reads from a script, collects writes.
    #[derive(Default)]
    struct MemStream {
        input: Mutex<Vec<u8>>,
        output: Mutex<Vec<u8>>,
    }

    struct MemRef<'a>(&'a MemStream);

    impl Read for MemRef<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let mut input = self.0.input.lock().unwrap();
            let n = buf.len().min(input.len());
            buf[..n].copy_from_slice(&input[..n]);
            input.drain(..n);
            Ok(n)
        }
    }

    impl Write for MemRef<'_> {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.output.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Transport for MemRef<'_> {
        fn set_read_timeout(&self, _dur: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn set_write_timeout(&self, _dur: Option<Duration>) -> std::io::Result<()> {
            Ok(())
        }

        fn set_nodelay(&self, _on: bool) -> std::io::Result<()> {
            Ok(())
        }

        fn shutdown(&self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::mixed(42);
        let mut a = cfg.plan_for(3);
        let mut b = cfg.plan_for(3);
        for _ in 0..256 {
            assert_eq!(a.next_action(), b.next_action());
        }
    }

    #[test]
    fn different_connections_differ() {
        let cfg = FaultConfig::mixed(42);
        let mut a = cfg.plan_for(1);
        let mut b = cfg.plan_for(2);
        let same = (0..256)
            .filter(|_| a.next_action() == b.next_action())
            .count();
        assert!(same < 256, "plans for different connections are identical");
    }

    #[test]
    fn off_config_is_transparent() {
        let cfg = FaultConfig::off(7);
        assert!(!cfg.is_active());
        let mut plan = cfg.plan_for(0);
        for _ in 0..64 {
            assert_eq!(plan.next_action(), FaultAction::None);
        }
        let mem = MemStream::default();
        mem.input.lock().unwrap().extend_from_slice(b"hello");
        let counter = Arc::new(AtomicU64::new(0));
        let mut s = FaultyStream::new(MemRef(&mem), cfg.plan_for(0), Arc::clone(&counter));
        let mut buf = [0u8; 5];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        s.write_all(b"world").unwrap();
        assert_eq!(&*mem.output.lock().unwrap(), b"world");
        assert_eq!(counter.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn corrupt_flips_exactly_one_byte() {
        let cfg = FaultConfig {
            corrupt_prob: 1.0,
            ..FaultConfig::off(9)
        };
        let mem = MemStream::default();
        let counter = Arc::new(AtomicU64::new(0));
        let mut s = FaultyStream::new(MemRef(&mem), cfg.plan_for(0), Arc::clone(&counter));
        let original = [0u8; 32];
        s.write_all(&original).unwrap();
        let written = mem.output.lock().unwrap().clone();
        assert_eq!(written.len(), 32);
        let flipped = written.iter().filter(|&&b| b != 0).count();
        assert_eq!(flipped, 1, "exactly one byte must differ");
        assert!(counter.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn sever_fails_fast_and_stays_dead() {
        let cfg = FaultConfig {
            sever_prob: 1.0,
            ..FaultConfig::off(11)
        };
        let mem = MemStream::default();
        mem.input.lock().unwrap().extend_from_slice(b"data");
        let counter = Arc::new(AtomicU64::new(0));
        let mut s = FaultyStream::new(MemRef(&mem), cfg.plan_for(0), counter);
        assert!(s.write_all(b"x").is_err());
        // After a sever, reads are EOF and writes keep failing.
        let mut buf = [0u8; 4];
        assert_eq!(s.read(&mut buf).unwrap(), 0);
        assert!(s.write_all(b"y").is_err());
        assert!(s.flush().is_err());
    }

    #[test]
    fn truncate_delivers_a_strict_prefix() {
        let cfg = FaultConfig {
            truncate_prob: 1.0,
            ..FaultConfig::off(13)
        };
        let mem = MemStream::default();
        mem.input.lock().unwrap().extend_from_slice(&[7u8; 16]);
        let counter = Arc::new(AtomicU64::new(0));
        let mut s = FaultyStream::new(MemRef(&mem), cfg.plan_for(0), counter);
        let mut buf = [0u8; 16];
        let n = s.read(&mut buf).unwrap();
        assert!(n < 16, "read must be cut short, got {n}");
        // The stream is dead afterwards: EOF.
        assert_eq!(s.read(&mut buf).unwrap(), 0);
    }
}
