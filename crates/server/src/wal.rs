//! Durability for the live world: a write-ahead log of admitted
//! `PoiOp` batches plus periodic checkpoints, and the recovery path
//! that replays them after a crash.
//!
//! ## Contract
//!
//! The dynamic index is in-memory; this module makes it *restart
//! transparent*. Every admitted `PoiUpdate` batch is appended here
//! **before** it is applied (log-before-apply), tagged with the exact
//! [`DynamicLsp`](ppgnn_core::DynamicLsp) version the apply will
//! publish. A recovered server loads the newest valid checkpoint,
//! replays the WAL tail in version order, and resumes at the exact
//! pre-crash version — so it answers byte-identically to a server that
//! never died, and a re-sent batch the crash swallowed the ack for is
//! recognized by its batch id and acknowledged idempotently at its
//! original version.
//!
//! ## On-disk layout (all integers big-endian)
//!
//! `<data-dir>/checkpoint-<V:016x>.ppck` — the full POI set at
//! version `V`, written atomically (temp file + fsync + rename):
//!
//! ```text
//! "PPCK" | format u8 | version u64 | n u32 | n x (id u32, x f64-bits, y f64-bits) | crc32
//! ```
//!
//! `<data-dir>/wal-<V:016x>.ppwal` — batches admitted after the
//! checkpoint at `V`. A file header, then framed records:
//!
//! ```text
//! header: "PWAL" | format u8 | base-version u64
//! record: len u32 | crc32(body) | body
//! body:   version u64 | batch-id u64 | request-id u32 | n-ops u16 | ops
//! op:     0x01 id u32 x-bits u64 y-bits u64   (insert)
//!         0x02 id u32                          (remove)
//! ```
//!
//! ## Torn-tail policy
//!
//! Appends are not atomic, so a crash can leave a half-written final
//! record. Recovery reads records until the first short read, bad CRC,
//! bad body, or version discontinuity, **truncates the file there**,
//! and reports how many bytes were dropped — the batch was never
//! acknowledged (fsync-before-ack under `FsyncPolicy::Always`; a
//! bounded ack-loss window otherwise), so dropping it is correct and
//! the admin's retry re-admits it. Recovery never panics on a torn or
//! corrupt tail and never serves stale state silently: a checkpoint
//! that fails its CRC is skipped for the next older one (replay then
//! *chains* across the rotated WAL files back up to the present — a
//! rotation's base version is the last version of the file it
//! supersedes, so the files are contiguous by construction), and a
//! data dir with no valid checkpoint at all is a typed startup error.
//! A newer WAL file the chain cannot reach (its base past the last
//! contiguously replayed version) is renamed aside with an
//! `.orphaned` suffix and counted in [`Recovered::orphaned_wal_files`]
//! — lost acked batches are reported, never silently dropped, and the
//! stale file can never collide with a later rotation.
//!
//! ## Panic policy
//!
//! No production path in this module panics. Every `unwrap_or*` is a
//! total fallback, not a disguised assertion: "newest batch version"
//! falls back to the checkpoint version when the tail is empty
//! ([`Recovered::recovered_version`], rotation orphan scan), the
//! fresh-boot probe treats an unreadable dir as "no checkpoint"
//! ([`has_checkpoint`]), append targets the base version itself when
//! no rotated file precedes it, and checkpoint retention keeps
//! everything when fewer than the keep-count exist. Bare
//! `unwrap`/`expect` appears only under `#[cfg(test)]`.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use ppgnn_geo::{Poi, PoiOp, Point};
use ppgnn_telemetry::trace::{self, AttrKey, SpanName};
use ppgnn_telemetry::{self as telemetry, Stage};

use crate::frame::{crc32, MAX_POI_OPS};

/// On-disk format revision for both file kinds.
const FORMAT: u8 = 1;
/// Checkpoint file magic.
const CK_MAGIC: &[u8; 4] = b"PPCK";
/// WAL file magic.
const WAL_MAGIC: &[u8; 4] = b"PWAL";
/// WAL header bytes: magic + format + base version.
const WAL_HEADER_BYTES: u64 = 4 + 1 + 8;
/// Largest well-formed record body: version + batch id + request id +
/// count + ops.
const MAX_RECORD_BYTES: usize = 8 + 8 + 4 + 2 + MAX_POI_OPS * 21;
/// How often `FsyncPolicy::Interval` forces data to the platter.
const FSYNC_INTERVAL: Duration = Duration::from_millis(25);
/// Checkpoints retained after a rotation (newest first). Older ones
/// only exist to survive disk corruption of the newest; their WAL
/// files are retained with them, so a fall-back replays the full
/// chain of rotated files back up to the present.
const KEEP_CHECKPOINTS: usize = 2;

/// When appended records are forced to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync before every ack: zero acked-batch loss, slowest.
    Always,
    /// fsync at most every [`FSYNC_INTERVAL`]: bounded ack-loss window
    /// (a crash may drop the last ~25 ms of *acked* batches — the
    /// admin's idempotent retry re-admits them), near-`Never` speed.
    Interval,
    /// Never fsync explicitly; the OS decides. Fastest, test-only.
    Never,
}

impl FsyncPolicy {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Interval => "interval",
            FsyncPolicy::Never => "never",
        }
    }

    /// Inverse of [`FsyncPolicy::name`].
    pub fn from_name(name: &str) -> Option<FsyncPolicy> {
        match name {
            "always" => Some(FsyncPolicy::Always),
            "interval" => Some(FsyncPolicy::Interval),
            "never" => Some(FsyncPolicy::Never),
            _ => None,
        }
    }
}

/// Everything the durability subsystem needs to know at boot.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding checkpoints and the WAL. Created if missing.
    pub data_dir: PathBuf,
    /// When appends reach the platter.
    pub fsync: FsyncPolicy,
    /// Checkpoint (and rotate the WAL) after this many applied ops.
    pub checkpoint_every_ops: u64,
}

impl DurabilityConfig {
    /// A config with the given data dir and tuned defaults: interval
    /// fsync, checkpoint every 4096 ops.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Interval,
            checkpoint_every_ops: 4096,
        }
    }
}

/// Typed WAL/recovery failure.
#[derive(Debug)]
pub enum WalError {
    /// The underlying filesystem failed.
    Io(io::Error),
    /// Every checkpoint in the data dir failed validation — recovery
    /// refuses to guess at a world rather than serve stale state.
    NoValidCheckpoint,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::NoValidCheckpoint => {
                write!(f, "data dir has checkpoints but none passed validation")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl From<WalError> for crate::error::ServerError {
    fn from(e: WalError) -> Self {
        match e {
            WalError::Io(io) => crate::error::ServerError::Io(io),
            WalError::NoValidCheckpoint => {
                crate::error::ServerError::Recovery(WalError::NoValidCheckpoint.to_string())
            }
        }
    }
}

/// One batch replayed from the WAL tail, in version order.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBatch {
    /// Content identity of the batch (see [`batch_id`]).
    pub batch_id: u64,
    /// The admin request id the batch arrived under; together with
    /// [`ReplayBatch::batch_id`] it keys the idempotent re-ack window.
    pub request_id: u32,
    /// The version the original apply published.
    pub version: u64,
    /// The ops, exactly as admitted.
    pub ops: Vec<PoiOp>,
}

/// What recovery found in a data dir.
#[derive(Debug)]
pub struct Recovered {
    /// The checkpointed POI set (unordered).
    pub pois: Vec<Poi>,
    /// The checkpoint's version.
    pub checkpoint_version: u64,
    /// WAL-tail batches to replay on top, version-ordered and
    /// contiguous from `checkpoint_version + 1`.
    pub batches: Vec<ReplayBatch>,
    /// Bytes cut off the WAL tail (torn/corrupt final records).
    pub torn_bytes: u64,
    /// Records lost to the cut (usually 0 or 1).
    pub torn_records: u64,
    /// Checkpoints that failed validation and were skipped.
    pub corrupt_checkpoints: u64,
    /// WAL files replay could not chain into (base past the last
    /// contiguous version) — acked batches lost to a checkpoint
    /// fall-back. The files were renamed aside with an `.orphaned`
    /// suffix; anything non-zero deserves an operator's eyes.
    pub orphaned_wal_files: u64,
}

impl Recovered {
    /// The version the world must republish at after replay.
    pub fn recovered_version(&self) -> u64 {
        self.batches
            .last()
            .map(|b| b.version)
            .unwrap_or(self.checkpoint_version)
    }

    /// One-line recovery summary for the server log.
    pub fn summary(&self) -> String {
        format!(
            "recovered checkpoint v{} + {} wal batches -> v{} \
             (torn tail: {} records / {} bytes dropped, {} corrupt checkpoints skipped, \
             {} unreachable wal files orphaned)",
            self.checkpoint_version,
            self.batches.len(),
            self.recovered_version(),
            self.torn_records,
            self.torn_bytes,
            self.corrupt_checkpoints,
            self.orphaned_wal_files,
        )
    }
}

/// Content identity of an admitted batch: FNV-1a over the request id
/// and the ops in wire order. Two sends of the same `(request_id,
/// ops)` — the admin retrying an unacked batch across a restart —
/// collide here by design, which is what makes the retry idempotent.
///
/// The dedup window keys on `(request_id, batch_id)`, so an
/// accidental hash collision between unrelated request ids can never
/// alias two batches. FNV-1a is *not* collision-resistant against a
/// deliberately crafted second batch under the same request id, but
/// crafting one requires the admin token, and a token holder can
/// already mutate the world at will — dedup correctness assumes a
/// non-adversarial admin.
pub fn batch_id(request_id: u32, ops: &[PoiOp]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(&request_id.to_be_bytes());
    for op in ops {
        match op {
            PoiOp::Insert(poi) => {
                eat(&[1]);
                eat(&poi.id.to_be_bytes());
                eat(&poi.location.x.to_bits().to_be_bytes());
                eat(&poi.location.y.to_bits().to_be_bytes());
            }
            PoiOp::Remove(id) => {
                eat(&[2]);
                eat(&id.to_be_bytes());
            }
        }
    }
    h
}

fn encode_ops(out: &mut Vec<u8>, ops: &[PoiOp]) {
    out.extend_from_slice(&(ops.len() as u16).to_be_bytes());
    for op in ops {
        match op {
            PoiOp::Insert(poi) => {
                out.push(1);
                out.extend_from_slice(&poi.id.to_be_bytes());
                out.extend_from_slice(&poi.location.x.to_bits().to_be_bytes());
                out.extend_from_slice(&poi.location.y.to_bits().to_be_bytes());
            }
            PoiOp::Remove(id) => {
                out.push(2);
                out.extend_from_slice(&id.to_be_bytes());
            }
        }
    }
}

/// Byte-slice cursor with bounds-checked reads; `None` = corrupt.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).map(|b| u16::from_be_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_be_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_ops(r: &mut Reader<'_>) -> Option<Vec<PoiOp>> {
    let n = r.u16()? as usize;
    if n > MAX_POI_OPS {
        return None;
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        match r.u8()? {
            1 => {
                let id = r.u32()?;
                let x = f64::from_bits(r.u64()?);
                let y = f64::from_bits(r.u64()?);
                if !x.is_finite() || !y.is_finite() {
                    return None;
                }
                ops.push(PoiOp::Insert(Poi::new(id, Point::new(x, y))));
            }
            2 => ops.push(PoiOp::Remove(r.u32()?)),
            _ => return None,
        }
    }
    Some(ops)
}

fn checkpoint_path(dir: &Path, version: u64) -> PathBuf {
    dir.join(format!("checkpoint-{version:016x}.ppck"))
}

fn wal_path(dir: &Path, base_version: u64) -> PathBuf {
    dir.join(format!("wal-{base_version:016x}.ppwal"))
}

/// Parses `<stem>-<hex16>.<ext>` names back to their version.
fn parse_versioned(name: &str, stem: &str, ext: &str) -> Option<u64> {
    let rest = name.strip_prefix(stem)?.strip_prefix('-')?;
    let hex = rest.strip_suffix(ext)?.strip_suffix('.')?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn list_versions(dir: &Path, stem: &str, ext: &str) -> io::Result<Vec<u64>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(name) = entry.file_name().to_str() {
            if let Some(v) = parse_versioned(name, stem, ext) {
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Best-effort directory fsync so renames/creates survive power loss.
fn sync_dir(dir: &Path) {
    #[cfg(unix)]
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    #[cfg(not(unix))]
    let _ = dir;
}

/// Writes the full POI set at `version` atomically: temp file, fsync,
/// rename, directory fsync. A reader can never observe a torn
/// checkpoint — it either has the old name list or the new one.
pub fn write_checkpoint(dir: &Path, pois: &[Poi], version: u64) -> io::Result<PathBuf> {
    let span = trace::span(SpanName::Checkpoint);
    let _timer = telemetry::global().time(Stage::Checkpoint);
    let mut body = Vec::with_capacity(4 + 1 + 8 + 4 + pois.len() * 20 + 4);
    body.extend_from_slice(CK_MAGIC);
    body.push(FORMAT);
    body.extend_from_slice(&version.to_be_bytes());
    body.extend_from_slice(&(pois.len() as u32).to_be_bytes());
    for poi in pois {
        body.extend_from_slice(&poi.id.to_be_bytes());
        body.extend_from_slice(&poi.location.x.to_bits().to_be_bytes());
        body.extend_from_slice(&poi.location.y.to_bits().to_be_bytes());
    }
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_be_bytes());
    span.attr(AttrKey::Bytes, body.len() as u64);
    span.attr(AttrKey::Records, pois.len() as u64);

    let path = checkpoint_path(dir, version);
    let tmp = path.with_extension("ppck.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &path)?;
    sync_dir(dir);
    Ok(path)
}

fn read_checkpoint(path: &Path) -> Option<(Vec<Poi>, u64)> {
    let buf = fs::read(path).ok()?;
    if buf.len() < 4 + 1 + 8 + 4 + 4 {
        return None;
    }
    let (body, crc_bytes) = buf.split_at(buf.len() - 4);
    let stored = u32::from_be_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != stored {
        return None;
    }
    let mut r = Reader { buf: body, pos: 0 };
    if r.take(4)? != CK_MAGIC || r.u8()? != FORMAT {
        return None;
    }
    let version = r.u64()?;
    let n = r.u32()? as usize;
    let mut pois = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let id = r.u32()?;
        let x = f64::from_bits(r.u64()?);
        let y = f64::from_bits(r.u64()?);
        if !x.is_finite() || !y.is_finite() {
            return None;
        }
        pois.push(Poi::new(id, Point::new(x, y)));
    }
    if !r.done() {
        return None;
    }
    Some((pois, version))
}

/// Seeds a fresh data dir: checkpoint of `pois` at version 1, empty
/// WAL. Idempotent bootstrap for first boot and for harnesses that
/// pre-seed a world before starting a server against the dir.
pub fn bootstrap(dir: &Path, pois: &[Poi]) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    write_checkpoint(dir, pois, 1)?;
    Ok(())
}

/// Whether `dir` holds any checkpoint at all (fresh-boot probe).
pub fn has_checkpoint(dir: &Path) -> bool {
    list_versions(dir, "checkpoint", "ppck")
        .map(|v| !v.is_empty())
        .unwrap_or(false)
}

/// Recovers the world from `dir`: newest valid checkpoint plus the
/// contiguous WAL tail on top, with the torn tail truncated in place.
///
/// Returns `Ok(None)` for a dir with no checkpoints (fresh boot —
/// call [`bootstrap`] first), [`WalError::NoValidCheckpoint`] when
/// checkpoints exist but all fail validation.
pub fn recover(dir: &Path) -> Result<Option<Recovered>, WalError> {
    let span = trace::span(SpanName::RecoverReplay);
    let _timer = telemetry::global().time(Stage::RecoverReplay);
    // A data dir that does not exist yet is a fresh boot, same as an
    // empty one — `bootstrap` will create it.
    if !dir.exists() {
        return Ok(None);
    }
    let mut versions = list_versions(dir, "checkpoint", "ppck")?;
    if versions.is_empty() {
        return Ok(None);
    }
    versions.reverse();
    let mut corrupt_checkpoints = 0u64;
    let mut loaded = None;
    for v in &versions {
        match read_checkpoint(&checkpoint_path(dir, *v)) {
            Some((pois, version)) if version == *v => {
                loaded = Some((pois, version));
                break;
            }
            _ => corrupt_checkpoints += 1,
        }
    }
    let Some((pois, checkpoint_version)) = loaded else {
        return Err(WalError::NoValidCheckpoint);
    };

    // The WAL whose records follow this checkpoint: the one with the
    // largest base version not past it (a crash between checkpoint
    // write and WAL rotation leaves the previous WAL carrying the
    // records; versions <= the checkpoint are simply skipped). When a
    // corrupt newest checkpoint forced a fall-back, the tail spans
    // several rotated files; a rotation's base is the last version of
    // the file it supersedes, so the files are contiguous by
    // construction and replay chains file to file as long as each
    // next base equals the last replayed version.
    let wal_bases = list_versions(dir, "wal", "ppwal")?;
    let mut batches = Vec::new();
    let mut torn_bytes = 0u64;
    let mut torn_records = 0u64;
    let mut next_version = checkpoint_version + 1;
    let mut base = wal_bases
        .iter()
        .copied()
        .filter(|&b| b <= checkpoint_version)
        .max();
    while let Some(b) = base {
        let clean = replay_wal_file(
            &wal_path(dir, b),
            checkpoint_version,
            &mut next_version,
            &mut batches,
            &mut torn_bytes,
            &mut torn_records,
        )?;
        if !clean {
            // A cut tail ends the chain: anything in a newer file is
            // no longer a contiguous continuation.
            break;
        }
        let last = next_version - 1;
        base = wal_bases.iter().copied().find(|&nb| nb > b && nb == last);
    }
    // Newer WAL files the chain cannot reach hold acked batches this
    // recovery loses (only possible after a checkpoint fall-back with
    // a broken chain). Never silent, and never load-bearing for a
    // later rotation: rename them aside and count them.
    let last_version = batches
        .last()
        .map(|b| b.version)
        .unwrap_or(checkpoint_version);
    let mut orphaned_wal_files = 0u64;
    for &nb in wal_bases.iter().filter(|&&nb| nb > last_version) {
        let from = wal_path(dir, nb);
        let to = from.with_extension("ppwal.orphaned");
        if fs::rename(&from, &to).is_ok() {
            orphaned_wal_files += 1;
        }
    }
    if orphaned_wal_files > 0 {
        sync_dir(dir);
    }
    span.attr(AttrKey::Records, batches.len() as u64);
    span.attr(
        AttrKey::PoiOps,
        batches.iter().map(|b| b.ops.len() as u64).sum(),
    );
    Ok(Some(Recovered {
        pois,
        checkpoint_version,
        batches,
        torn_bytes,
        torn_records,
        corrupt_checkpoints,
        orphaned_wal_files,
    }))
}

/// Replays one WAL file of the recovery chain: skips records at or
/// before `checkpoint_version`, pushes contiguous records (expected to
/// start at `*next_version`) onto `batches`, truncates a torn,
/// corrupt, or discontinuous tail in place, and returns whether the
/// file ended cleanly (no bytes cut) — the precondition for chaining
/// into a successor file.
fn replay_wal_file(
    path: &Path,
    checkpoint_version: u64,
    next_version: &mut u64,
    batches: &mut Vec<ReplayBatch>,
    torn_bytes: &mut u64,
    torn_records: &mut u64,
) -> io::Result<bool> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let mut buf = Vec::new();
    file.read_to_end(&mut buf)?;
    let mut good_end = buf.len().min(WAL_HEADER_BYTES as usize);
    let header_ok =
        buf.len() >= WAL_HEADER_BYTES as usize && &buf[..4] == WAL_MAGIC && buf[4] == FORMAT;
    if header_ok {
        let mut pos = WAL_HEADER_BYTES as usize;
        while let Some((record, end)) = read_record(&buf, pos) {
            if record.version > checkpoint_version {
                // Contiguity: a gap means the tail is not a valid
                // continuation of this checkpoint — cut it.
                if record.version != *next_version {
                    break;
                }
                *next_version += 1;
                batches.push(record);
            }
            pos = end;
            good_end = end;
        }
        if good_end < buf.len() {
            *torn_bytes += (buf.len() - good_end) as u64;
            *torn_records += 1;
            file.set_len(good_end as u64)?;
            file.sync_all()?;
            return Ok(false);
        }
    } else if !buf.is_empty() {
        // Header itself is torn or garbage: treat the whole file
        // as tail, so the next open lays down a clean header.
        *torn_bytes += buf.len() as u64;
        *torn_records += 1;
        file.set_len(0)?;
        file.sync_all()?;
        return Ok(false);
    }
    Ok(true)
}

/// Reads one framed record at `pos`; `None` on a short, oversized, or
/// corrupt record (the torn-tail cut point).
fn read_record(buf: &[u8], pos: usize) -> Option<(ReplayBatch, usize)> {
    if pos == buf.len() {
        return None; // clean EOF
    }
    let head = buf.get(pos..pos + 8)?;
    let len = u32::from_be_bytes(head[..4].try_into().ok()?) as usize;
    if len > MAX_RECORD_BYTES {
        return None;
    }
    let stored_crc = u32::from_be_bytes(head[4..8].try_into().ok()?);
    let body = buf.get(pos + 8..pos + 8 + len)?;
    if crc32(body) != stored_crc {
        return None;
    }
    let mut r = Reader { buf: body, pos: 0 };
    let version = r.u64()?;
    let batch_id = r.u64()?;
    let request_id = r.u32()?;
    let ops = decode_ops(&mut r)?;
    if !r.done() {
        return None;
    }
    Some((
        ReplayBatch {
            batch_id,
            request_id,
            version,
            ops,
        },
        pos + 8 + len,
    ))
}

/// The append half: an open WAL file plus the fsync policy state.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    base_version: u64,
    policy: FsyncPolicy,
    last_sync: Instant,
}

impl Wal {
    /// Opens (creating if needed) the WAL that continues `base_version`
    /// — the version recovery resumed at ([`Recovered::recovered_version`];
    /// the checkpoint version on a first boot). The file with the
    /// largest base not past it is exactly the file the recovery chain
    /// ended in (and already truncated). Appends go to the end.
    pub fn open(dir: &Path, base_version: u64, policy: FsyncPolicy) -> io::Result<Wal> {
        fs::create_dir_all(dir)?;
        // Continue the file recovery replayed last, if one exists for
        // a base at or before the resume point; otherwise start fresh.
        let base = list_versions(dir, "wal", "ppwal")?
            .into_iter()
            .filter(|&b| b <= base_version)
            .max()
            .unwrap_or(base_version);
        let path = wal_path(dir, base);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        if file.seek(SeekFrom::End(0))? == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.push(FORMAT);
            header.extend_from_slice(&base.to_be_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            sync_dir(dir);
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            file,
            base_version: base,
            policy,
            last_sync: Instant::now(),
        })
    }

    /// The version of the checkpoint this WAL continues.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// Appends one admitted batch, to be applied as `version`, and
    /// makes it as durable as the fsync policy promises. Called
    /// *before* the in-memory apply; an error here must abort the
    /// batch (typed reply, no apply), never half-admit it.
    pub fn append(
        &mut self,
        version: u64,
        request_id: u32,
        batch_id: u64,
        ops: &[PoiOp],
    ) -> io::Result<()> {
        let span = trace::span(SpanName::WalAppend);
        span.attr(AttrKey::PoiOps, ops.len() as u64);
        let _timer = telemetry::global().time(Stage::WalAppend);
        let mut body = Vec::with_capacity(8 + 8 + 4 + 2 + ops.len() * 21);
        body.extend_from_slice(&version.to_be_bytes());
        body.extend_from_slice(&batch_id.to_be_bytes());
        body.extend_from_slice(&request_id.to_be_bytes());
        encode_ops(&mut body, ops);
        let mut record = Vec::with_capacity(8 + body.len());
        record.extend_from_slice(&(body.len() as u32).to_be_bytes());
        record.extend_from_slice(&crc32(&body).to_be_bytes());
        record.extend_from_slice(&body);
        span.attr(AttrKey::Bytes, record.len() as u64);
        self.file.write_all(&record)?;
        match self.policy {
            FsyncPolicy::Always => {
                self.file.sync_data()?;
                self.last_sync = Instant::now();
            }
            FsyncPolicy::Interval => {
                if self.last_sync.elapsed() >= FSYNC_INTERVAL {
                    self.file.sync_data()?;
                    self.last_sync = Instant::now();
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }

    /// Cuts a checkpoint at `version` and rotates: writes the POI
    /// snapshot atomically, starts a fresh WAL based on it, and prunes
    /// files older than [`KEEP_CHECKPOINTS`] checkpoints back. The old
    /// WAL (the prefix the checkpoint absorbs) is deleted with its
    /// superseded checkpoint.
    pub fn checkpoint(&mut self, pois: &[Poi], version: u64) -> io::Result<()> {
        // Nothing acked may be lost by the rotation: flush the old WAL
        // before the checkpoint that supersedes it is written.
        self.file.sync_data()?;
        write_checkpoint(&self.dir, pois, version)?;
        let path = wal_path(&self.dir, version);
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        if file.seek(SeekFrom::End(0))? == 0 {
            let mut header = Vec::with_capacity(WAL_HEADER_BYTES as usize);
            header.extend_from_slice(WAL_MAGIC);
            header.push(FORMAT);
            header.extend_from_slice(&version.to_be_bytes());
            file.write_all(&header)?;
            file.sync_all()?;
            sync_dir(&self.dir);
        }
        let old_base = std::mem::replace(&mut self.base_version, version);
        self.file = file;
        self.last_sync = Instant::now();
        // Prune: keep the newest KEEP_CHECKPOINTS checkpoints and any
        // WAL not older than the oldest kept checkpoint.
        let mut cks = list_versions(&self.dir, "checkpoint", "ppck")?;
        cks.reverse();
        let keep_from = cks
            .get(KEEP_CHECKPOINTS - 1)
            .copied()
            .unwrap_or(old_base)
            .min(old_base);
        for v in cks.iter().skip(KEEP_CHECKPOINTS) {
            let _ = fs::remove_file(checkpoint_path(&self.dir, *v));
        }
        for b in list_versions(&self.dir, "wal", "ppwal")? {
            if b < keep_from {
                let _ = fs::remove_file(wal_path(&self.dir, b));
            }
        }
        sync_dir(&self.dir);
        Ok(())
    }

    /// Forces everything appended so far to the platter.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ppgnn-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn pois(n: u32) -> Vec<Poi> {
        (0..n)
            .map(|i| Poi::new(i, Point::new(i as f64 / 100.0, 1.0 - i as f64 / 100.0)))
            .collect()
    }

    fn batch(i: u32) -> Vec<PoiOp> {
        vec![
            PoiOp::Insert(Poi::new(1000 + i, Point::new(0.5, 0.25 + i as f64 / 50.0))),
            PoiOp::Remove(i),
        ]
    }

    #[test]
    fn bootstrap_append_recover_round_trip() {
        let dir = tmp_dir("round-trip");
        bootstrap(&dir, &pois(10)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        for i in 0..3u32 {
            let ops = batch(i);
            wal.append(2 + i as u64, i, batch_id(i, &ops), &ops)
                .unwrap();
        }
        drop(wal);
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.checkpoint_version, 1);
        assert_eq!(rec.pois.len(), 10);
        assert_eq!(rec.batches.len(), 3);
        assert_eq!(rec.recovered_version(), 4);
        assert_eq!(rec.torn_bytes, 0);
        for (i, b) in rec.batches.iter().enumerate() {
            assert_eq!(b.version, 2 + i as u64);
            assert_eq!(b.ops, batch(i as u32));
            assert_eq!(b.batch_id, batch_id(i as u32, &b.ops));
            assert_eq!(b.request_id, i as u32);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_recovers_to_none() {
        let dir = tmp_dir("empty");
        assert!(recover(&dir).unwrap().is_none());
        assert!(!has_checkpoint(&dir));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = tmp_dir("torn");
        bootstrap(&dir, &pois(5)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Never).unwrap();
        for i in 0..3u32 {
            let ops = batch(i);
            wal.append(2 + i as u64, i, batch_id(i, &ops), &ops)
                .unwrap();
        }
        drop(wal);
        // Tear the last record: chop off its final 5 bytes.
        let path = wal_path(&dir, 1);
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 5)
            .unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.batches.len(), 2, "only the torn record is lost");
        assert_eq!(rec.recovered_version(), 3);
        assert_eq!(rec.torn_records, 1);
        assert!(rec.torn_bytes > 0);
        // The truncation is durable: a second recovery sees a clean log.
        let rec2 = recover(&dir).unwrap().unwrap();
        assert_eq!(rec2.torn_bytes, 0);
        assert_eq!(rec2.batches.len(), 2);
        // And appends continue where the cut left off.
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        let ops = batch(9);
        wal.append(4, 9, batch_id(9, &ops), &ops).unwrap();
        drop(wal);
        assert_eq!(recover(&dir).unwrap().unwrap().recovered_version(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_record_cuts_the_tail_there() {
        let dir = tmp_dir("corrupt");
        bootstrap(&dir, &pois(5)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Never).unwrap();
        let first = batch(0);
        wal.append(2, 0, batch_id(0, &first), &first).unwrap();
        let offset_second = fs::metadata(wal_path(&dir, 1)).unwrap().len();
        let second = batch(1);
        wal.append(3, 1, batch_id(1, &second), &second).unwrap();
        drop(wal);
        // Flip one byte inside the second record's body.
        let path = wal_path(&dir, 1);
        let mut bytes = fs::read(&path).unwrap();
        let victim = offset_second as usize + 12;
        bytes[victim] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].ops, first);
        assert_eq!(rec.recovered_version(), 2);
        assert!(rec.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rotates_and_prunes() {
        let dir = tmp_dir("rotate");
        bootstrap(&dir, &pois(5)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        let ops = batch(0);
        wal.append(2, 0, batch_id(0, &ops), &ops).unwrap();
        // World at version 2 = pois(5) + insert 1000 - remove 0.
        let mut world = pois(5);
        world.retain(|p| p.id != 0);
        world.push(Poi::new(1000, Point::new(0.5, 0.25)));
        wal.checkpoint(&world, 2).unwrap();
        assert_eq!(wal.base_version(), 2);
        let ops2 = batch(1);
        wal.append(3, 1, batch_id(1, &ops2), &ops2).unwrap();
        drop(wal);
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.checkpoint_version, 2);
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.batches[0].version, 3);
        let mut ids: Vec<_> = rec.pois.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 1000]);
        // Repeated checkpoints prune beyond the retained window.
        let mut wal = Wal::open(&dir, 2, FsyncPolicy::Always).unwrap();
        wal.checkpoint(&world, 3).unwrap();
        wal.checkpoint(&world, 4).unwrap();
        let cks = list_versions(&dir, "checkpoint", "ppck").unwrap();
        assert_eq!(cks, vec![3, 4], "only the newest two checkpoints remain");
        drop(wal);
        assert_eq!(recover(&dir).unwrap().unwrap().checkpoint_version, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_older() {
        let dir = tmp_dir("ck-fallback");
        bootstrap(&dir, &pois(4)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        wal.checkpoint(&pois(4), 2).unwrap();
        drop(wal);
        // Corrupt the newest checkpoint's CRC.
        let path = checkpoint_path(&dir, 2);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.checkpoint_version, 1);
        assert_eq!(rec.corrupt_checkpoints, 1);
        // All checkpoints corrupt is a typed error, not a guess.
        let p1 = checkpoint_path(&dir, 1);
        let mut b1 = fs::read(&p1).unwrap();
        b1[0] ^= 0xff;
        fs::write(&p1, &b1).unwrap();
        assert!(matches!(recover(&dir), Err(WalError::NoValidCheckpoint)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fallback_checkpoint_replays_across_rotated_wal_files() {
        let dir = tmp_dir("chain");
        bootstrap(&dir, &pois(6)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        for i in 0..2u32 {
            let ops = batch(i);
            wal.append(2 + i as u64, i, batch_id(i, &ops), &ops)
                .unwrap();
        }
        // Rotate at v3 (checkpoint-3 + wal-3), then keep appending.
        wal.checkpoint(&pois(6), 3).unwrap();
        for i in 2..4u32 {
            let ops = batch(i);
            wal.append(2 + i as u64, i, batch_id(i, &ops), &ops)
                .unwrap();
        }
        drop(wal);
        // Newest checkpoint corrupt: recovery falls back to v1 and
        // must still reach v5 by chaining wal-1 into wal-3.
        let path = checkpoint_path(&dir, 3);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.checkpoint_version, 1);
        assert_eq!(rec.corrupt_checkpoints, 1);
        assert_eq!(
            rec.batches.len(),
            4,
            "replay must chain across the rotation"
        );
        assert_eq!(rec.recovered_version(), 5);
        assert_eq!(rec.orphaned_wal_files, 0);
        // Appends continue in the file the chain ended in (wal-3), so
        // the next recovery still sees one contiguous history.
        let mut wal = Wal::open(&dir, rec.recovered_version(), FsyncPolicy::Always).unwrap();
        assert_eq!(wal.base_version(), 3);
        let ops = batch(9);
        wal.append(6, 9, batch_id(9, &ops), &ops).unwrap();
        drop(wal);
        assert_eq!(recover(&dir).unwrap().unwrap().recovered_version(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreachable_wal_files_are_orphaned_loudly() {
        let dir = tmp_dir("orphan");
        bootstrap(&dir, &pois(4)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        let ops = batch(0);
        wal.append(2, 0, batch_id(0, &ops), &ops).unwrap();
        drop(wal);
        // A stale rotated file from a divergent history: base 7, past
        // anything the chain from v1 can reach.
        let mut header = Vec::new();
        header.extend_from_slice(WAL_MAGIC);
        header.push(FORMAT);
        header.extend_from_slice(&7u64.to_be_bytes());
        fs::write(wal_path(&dir, 7), &header).unwrap();
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.recovered_version(), 2);
        assert_eq!(rec.orphaned_wal_files, 1);
        assert!(rec.summary().contains("1 unreachable wal files orphaned"));
        assert!(!wal_path(&dir, 7).exists(), "orphan renamed aside");
        // Idempotent: a second recovery finds nothing left to orphan
        // and replays the same world.
        let rec2 = recover(&dir).unwrap().unwrap();
        assert_eq!(rec2.orphaned_wal_files, 0);
        assert_eq!(rec2.recovered_version(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_id_is_content_addressed() {
        let ops = batch(3);
        assert_eq!(batch_id(7, &ops), batch_id(7, &ops.clone()));
        assert_ne!(batch_id(7, &ops), batch_id(8, &ops));
        assert_ne!(batch_id(7, &ops), batch_id(7, &batch(4)));
        assert_ne!(batch_id(7, &[]), batch_id(8, &[]));
    }

    #[test]
    fn version_gap_cuts_the_tail() {
        let dir = tmp_dir("gap");
        bootstrap(&dir, &pois(5)).unwrap();
        let mut wal = Wal::open(&dir, 1, FsyncPolicy::Always).unwrap();
        let a = batch(0);
        wal.append(2, 0, batch_id(0, &a), &a).unwrap();
        let b = batch(1);
        wal.append(9, 1, batch_id(1, &b), &b).unwrap(); // discontinuous
        drop(wal);
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.batches.len(), 1);
        assert_eq!(rec.recovered_version(), 2);
        let _ = fs::remove_dir_all(&dir);
    }
}
