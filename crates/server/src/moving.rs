//! The moving-group soak harness: continuous PPGNN queries over a
//! live, mutating world, oracle-checked end to end.
//!
//! One deterministic [`MovingWorld`] drives everything: groups drift,
//! POIs churn, and the harness plays both sides — an admin connection
//! ships each tick's mutations down the `PoiUpdate` lane while every
//! group holds a standing `Subscribe` query. A plaintext mirror of the
//! live POI set acts as the oracle: after every tick, any group that
//! was *not* told to re-plan must still hold the exact top-k — a
//! mismatch is a **missed invalidation**, the one failure class the
//! safe-region design promises never happens (spurious re-plans are
//! allowed; silence on a changed answer is not).
//!
//! The same harness backs `loadgen --moving` and the
//! `tests/server_moving.rs` soak, so the CI smoke and the CLI walk the
//! identical code path.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppgnn_core::{DynamicLsp, PpgnnConfig};
use ppgnn_geo::{PoiId, Point};
use ppgnn_sim::moving::{MovingWorld, MovingWorldConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::client::{GroupClient, SafeRegionToken};
use crate::error::ServerError;
use crate::frame::SubscriptionKind;
use crate::server::{serve_world, ServerConfig, ServerHandle};

/// Everything a moving-group soak needs; `Default` is the tuned CI
/// smoke shape (seconds, not minutes).
#[derive(Debug, Clone)]
pub struct MovingSoakConfig {
    /// The world: groups, drift, churn, seed.
    pub world: MovingWorldConfig,
    /// Ticks to run.
    pub ticks: usize,
    /// Protocol parameters each group subscribes under.
    pub protocol: PpgnnConfig,
    /// Shared secret for the admin lane.
    pub admin_token: u64,
    /// How long one notification poll waits when pushes are expected.
    pub poll_wait: Duration,
}

impl Default for MovingSoakConfig {
    fn default() -> Self {
        MovingSoakConfig {
            world: MovingWorldConfig {
                seed: 7,
                n_groups: 4,
                users_per_group: 2,
                // Sentinel margins (gap between the k-th protected
                // answer and the runner-up) sit around 1e-4 on a
                // 300-POI unit square, giving drift radii near
                // margin/(4*users) = ~1e-5. A tick must stay well
                // inside so one subscription survives many ticks —
                // on a city-scale unit square this is walking pace.
                drift_step: 4e-6,
                churn_per_tick: 2,
                // Sparser worlds have wider sentinel gaps (typical
                // nearest-neighbor spacing scales as n^-1/2), so
                // subscriptions live longer before drifting out.
                initial_pois: 150,
                space: ppgnn_geo::Rect::UNIT,
            },
            ticks: 12,
            protocol: PpgnnConfig {
                k: 2,
                d: 3,
                delta: 6,
                keysize: 128,
                sanitize: false,
                ..PpgnnConfig::fast_test()
            },
            admin_token: 0xD00D_F00D,
            poll_wait: Duration::from_millis(400),
        }
    }
}

/// What one soak run observed. [`MovingSoakReport::passed`] is the
/// CI gate; [`MovingSoakReport::render`] the human view.
#[derive(Debug, Clone)]
pub struct MovingSoakReport {
    /// Ticks executed.
    pub ticks: usize,
    /// Groups holding standing queries.
    pub groups: usize,
    /// POI mutations shipped down the admin lane.
    pub poi_ops: u64,
    /// Re-plans triggered by a server invalidation push.
    pub invalidation_requeries: u64,
    /// Re-plans triggered by a user drifting out of its safe region.
    pub drift_requeries: u64,
    /// What per-tick re-issue would have cost: `groups × ticks`.
    pub naive_requeries: u64,
    /// Subscription pushes received (grants excluded).
    pub notifications: u64,
    /// Oracle says the answer changed but no push arrived. The design
    /// guarantees this is **zero**; anything else is a server bug.
    pub missed_invalidations: u64,
    /// Pushes whose re-plan returned the same answer — the price of
    /// conservative regions, tolerated but tracked.
    pub spurious_invalidations: u64,
    /// Re-plans whose answer disagreed with the plaintext oracle.
    pub answer_mismatches: u64,
    /// Wall-clock for the whole soak.
    pub wall: Duration,
}

impl MovingSoakReport {
    /// Total re-plans the subscription machinery actually performed.
    pub fn requeries(&self) -> u64 {
        self.invalidation_requeries + self.drift_requeries
    }

    /// How many× cheaper standing queries were than naive per-tick
    /// re-issue. The acceptance bar is ≥ 2.
    pub fn requery_savings(&self) -> f64 {
        self.naive_requeries as f64 / self.requeries().max(1) as f64
    }

    /// Pushes per wall-clock second.
    pub fn notifications_per_sec(&self) -> f64 {
        self.notifications as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// The acceptance gate: no missed invalidation, no wrong answer,
    /// and standing queries at least 2× cheaper than naive re-issue.
    pub fn passed(&self) -> bool {
        self.missed_invalidations == 0
            && self.answer_mismatches == 0
            && self.requery_savings() >= 2.0
    }

    /// Plain-text summary for the CLI and CI logs.
    pub fn render(&self) -> String {
        format!(
            "moving soak: {} groups x {} ticks, {} poi ops\n\
             re-queries     {:>6} ({} invalidation + {} drift) vs {} naive -> {:.1}x savings\n\
             notifications  {:>6} ({:.1}/s)\n\
             invalidations  missed {} | spurious {} | wrong answers {}\n\
             wall           {:.2?}\n\
             verdict        {}",
            self.groups,
            self.ticks,
            self.poi_ops,
            self.requeries(),
            self.invalidation_requeries,
            self.drift_requeries,
            self.naive_requeries,
            self.requery_savings(),
            self.notifications,
            self.notifications_per_sec(),
            self.missed_invalidations,
            self.spurious_invalidations,
            self.answer_mismatches,
            self.wall,
            if self.passed() { "PASS" } else { "FAIL" },
        )
    }
}

/// One group's standing-query state between ticks.
struct GroupState {
    client: GroupClient,
    /// User positions the current subscription was planned at.
    anchor: Vec<Point>,
    /// The answer granted at the anchor, as a POI-id set.
    answer: HashSet<PoiId>,
    token: SafeRegionToken,
}

/// Maps answer locations back to POI ids via the plaintext mirror.
/// PPGNN returns exact POI locations, so the match is (near-)exact;
/// `None` means the server answered with a location the oracle's world
/// does not contain — a hard correctness failure.
fn resolve_ids(world: &MovingWorld, answer: &[Point]) -> Option<HashSet<PoiId>> {
    let mut ids = HashSet::with_capacity(answer.len());
    for loc in answer {
        let poi = world
            .live_pois()
            .iter()
            .find(|p| p.location.dist(loc) < 1e-9)?;
        ids.insert(poi.id);
    }
    Some(ids)
}

/// Runs the full soak: boots a dynamic-world server, subscribes every
/// group, then ticks the world — mutating, polling, re-planning, and
/// oracle-checking — and reports what happened.
///
/// Fails with the transport error if the protocol itself breaks;
/// correctness deviations (missed invalidations, wrong answers) are
/// *reported*, not panicked, so callers choose their own severity.
pub fn run_moving_soak(config: &MovingSoakConfig) -> Result<MovingSoakReport, ServerError> {
    let mut world = MovingWorld::new(config.world.clone());
    let dyn_lsp = Arc::new(DynamicLsp::new(
        world.initial_pois(),
        config.protocol.clone(),
    ));
    let server_config = ServerConfig {
        admin_token: Some(config.admin_token),
        max_subscriptions: config.world.n_groups.max(1) * 2,
        ..ServerConfig::default()
    };
    let handle = serve_world(Arc::clone(&dyn_lsp), "127.0.0.1:0", server_config)?;
    let report = run_against(&mut world, &handle, config);
    handle.shutdown();
    report
}

fn run_against(
    world: &mut MovingWorld,
    handle: &ServerHandle,
    config: &MovingSoakConfig,
) -> Result<MovingSoakReport, ServerError> {
    let addr = handle.local_addr();
    let k = config.protocol.k;
    let agg = config.protocol.aggregate;
    let n_groups = world.groups.len();
    let started = Instant::now();

    // The admin connection: negotiates a session like any client (the
    // lane itself is gated by the token, not the handshake).
    let mut admin_rng = ChaCha8Rng::seed_from_u64(config.world.seed ^ 0xAD);
    let mut admin = GroupClient::connect(
        addr,
        0xAD317, // distinct from every group id
        config.protocol.clone(),
        config.world.space,
        config.world.users_per_group,
        &mut admin_rng,
    )?;

    let mut report = MovingSoakReport {
        ticks: config.ticks,
        groups: n_groups,
        poi_ops: 0,
        invalidation_requeries: 0,
        drift_requeries: 0,
        naive_requeries: (n_groups * config.ticks) as u64,
        notifications: 0,
        missed_invalidations: 0,
        spurious_invalidations: 0,
        answer_mismatches: 0,
        wall: Duration::ZERO,
    };

    // Subscribe every group at its starting position.
    let mut states: Vec<GroupState> = Vec::with_capacity(n_groups);
    for track in &world.groups {
        let mut rng = ChaCha8Rng::seed_from_u64(config.world.seed ^ track.group_id);
        let mut client = GroupClient::connect(
            addr,
            track.group_id,
            config.protocol.clone(),
            config.world.space,
            track.users.len(),
            &mut rng,
        )?;
        let (answer, token) = client.subscribe(&track.users, &mut rng)?;
        let ids = match resolve_ids(world, &answer) {
            Some(ids) => ids,
            None => {
                report.answer_mismatches += 1;
                HashSet::new()
            }
        };
        states.push(GroupState {
            client,
            anchor: track.users.clone(),
            answer: ids,
            token,
        });
    }

    let mut rngs: Vec<ChaCha8Rng> = (0..n_groups)
        .map(|i| ChaCha8Rng::seed_from_u64(config.world.seed ^ 0x9E37 ^ i as u64))
        .collect();

    for _tick in 0..config.ticks {
        // 1. The world moves: users drift, POIs churn.
        let ops = world.tick();
        report.poi_ops += ops.len() as u64;
        let ack = admin.poi_update(config.admin_token, &ops)?;

        for (i, state) in states.iter_mut().enumerate() {
            let current = world.groups[i].users.clone();
            // 2. Client-side half of the contract: a user leaving its
            // safe region re-plans without waiting for the server.
            let radius = state.token.drift_radius();
            let drifted = state
                .anchor
                .iter()
                .zip(&current)
                .any(|(a, c)| a.dist(c) > radius);
            // 3. Server-side half: did a push arrive? Only burn a real
            // wait when the ack says the batch invalidated someone.
            let wait = if ack.invalidated > 0 {
                config.poll_wait
            } else {
                Duration::from_millis(1)
            };
            let pushes = state.client.poll_notifications(wait)?;
            let invalidated = pushes
                .iter()
                .any(|p| p.kind == SubscriptionKind::Invalidated);
            report.notifications += pushes.len() as u64;

            if invalidated || drifted {
                let (answer, token) = state.client.subscribe(&current, &mut rngs[i])?;
                if invalidated {
                    report.invalidation_requeries += 1;
                } else {
                    report.drift_requeries += 1;
                }
                let ids = match resolve_ids(world, &answer) {
                    Some(ids) => ids,
                    None => {
                        report.answer_mismatches += 1;
                        HashSet::new()
                    }
                };
                let oracle: HashSet<PoiId> =
                    world.oracle_top_k(&current, k, agg).into_iter().collect();
                if ids != oracle {
                    report.answer_mismatches += 1;
                }
                if invalidated && ids == state.answer {
                    report.spurious_invalidations += 1;
                }
                state.anchor = current;
                state.answer = ids;
                state.token = token;
            } else {
                // 4. The oracle audit: silence is only correct if the
                // subscribed answer still holds in the mutated world.
                let oracle: HashSet<PoiId> = world
                    .oracle_top_k(&state.anchor, k, agg)
                    .into_iter()
                    .collect();
                if oracle != state.answer {
                    report.missed_invalidations += 1;
                    // Re-anchor so one miss is not counted every
                    // remaining tick.
                    state.answer = oracle;
                }
            }
        }
    }

    for state in &mut states {
        let token = state.token;
        state.client.unsubscribe(&token)?;
    }
    report.wall = started.elapsed();
    Ok(report)
}
