//! # ppgnn-server — the networked LSP
//!
//! The rest of the workspace runs the PPGNN protocols in-process with a
//! byte-exact cost ledger; this crate puts the LSP (Algorithm 2) behind
//! a real TCP service and gives groups a client for the coordinator
//! side (Algorithm 1):
//!
//! * [`frame`] — the length-prefixed, versioned frame layer wrapping
//!   the [`ppgnn_core::wire`] encodings; decoding never panics;
//! * [`registry`] — negotiated public session parameters per group ID,
//!   so frames decode against the right [`ppgnn_core::wire::WireContext`];
//! * [`server`] — acceptor + supervised bounded worker pool sharing one
//!   `Arc<Lsp>`, with per-request deadlines, `Busy` load shedding,
//!   per-session answer replay for idempotent retries, and graceful
//!   drain on shutdown;
//! * [`client`] — [`client::GroupClient`], one group's connection, with
//!   budgeted retry, backoff, and reconnect-resume built in;
//! * [`backoff`] — the client's jittered exponential retry schedule;
//! * [`fault`] — seeded fault injection ([`fault::FaultyStream`]) for
//!   chaos testing the whole stack;
//! * [`validate`] — the hostile-client validation gate (typed
//!   [`validate::ProtocolViolation`]s) and the per-connection
//!   [`validate::TokenBucket`] rate limiter;
//! * [`mallory`] — the seeded adversarial attack catalog driven by the
//!   `mallory` binary and the hostile soak tests;
//! * [`shape`] — the constant-shape response policy: frame padding to
//!   policy-bound targets and latency quantization (DESIGN.md §16);
//! * [`observer`] — the passive network adversary behind the
//!   `observer` binary: records (size, latency) distributions across
//!   known-different workloads and runs a permutation
//!   Kolmogorov–Smirnov distinguishability test against them;
//! * [`crash`] — the kill-mid-soak chaos harness: SIGKILLs a child
//!   `ppgnn-server` at seeded points and proves recovery against a
//!   plaintext oracle;
//! * [`wal`] — crash durability for the live world: a CRC-framed
//!   write-ahead log of admitted `PoiOp` batches, atomic checkpoints,
//!   and torn-tail-tolerant recovery replay;
//! * [`metrics`] — latency percentiles for the `loadgen` binary
//!   (re-exported from [`ppgnn_telemetry`], the shared observability
//!   crate that also backs the `Stats`/`Pong` snapshots).
//!
//! ```no_run
//! use std::sync::Arc;
//! use ppgnn_core::{Lsp, PpgnnConfig};
//! use ppgnn_geo::{Point, Poi, Rect};
//! use ppgnn_server::{serve_world, GroupClient, ServerConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let config = PpgnnConfig { k: 2, d: 3, delta: 6, sanitize: false, ..PpgnnConfig::fast_test() };
//! let pois: Vec<Poi> = (0..100)
//!     .map(|i| Poi::new(i, Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0)))
//!     .collect();
//! let lsp = Arc::new(Lsp::new(pois, config.clone()));
//! let handle = serve_world(lsp, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut client =
//!     GroupClient::connect(handle.local_addr(), 1, config, Rect::UNIT, 2, &mut rng).unwrap();
//! let answer = client
//!     .query(&[Point::new(0.2, 0.2), Point::new(0.4, 0.3)], &mut rng)
//!     .unwrap();
//! assert!(!answer.is_empty());
//! handle.shutdown();
//! ```

pub mod backoff;
pub mod client;
pub mod crash;
pub mod error;
pub mod fault;
pub mod frame;
pub mod mallory;
pub mod metrics;
pub mod moving;
pub mod observer;
pub mod registry;
pub mod server;
pub mod shape;
pub mod subscription;
pub mod validate;
pub mod wal;

pub use backoff::{BackoffSchedule, RetryPolicy};
pub use client::{session_params_for, ClientStats, GroupClient, SafeRegionToken, WireObservation};
pub use crash::{run_crash_soak, CrashSoakConfig, CrashSoakReport};
pub use error::{ErrorCode, ServerError};
pub use fault::{FaultAction, FaultConfig, FaultPlan, FaultyStream, Transport};
pub use frame::{
    Frame, FrameType, PoiUpdateAckPayload, PoiUpdatePayload, PongPayload, StatsReplyPayload,
    SubscriptionKind, SubscriptionUpdatePayload, TraceReplyPayload, UnsubscribePayload,
};
pub use mallory::{Attack, AttackContext, MalloryOutcome, MalloryReport, ATTACK_CATALOG};
pub use metrics::{percentile, summarize, LatencySummary, SloConfig};
pub use moving::{run_moving_soak, MovingSoakConfig, MovingSoakReport};
pub use observer::{run_observer, ChannelVerdict, ObserverConfig, ObserverReport, ScenarioResult};
pub use ppgnn_telemetry::{HealthSnapshot, StageSnapshot, TelemetrySnapshot};
pub use registry::{
    CachedAnswer, RegistryLimits, SessionParams, SessionRegistry, SessionTableFull,
};
pub use server::{
    serve_world, ConfigError, ServerConfig, ServerConfigBuilder, ServerHandle, ServerStats,
    StatsProbe, World, WorldSeed,
};
pub use shape::{Lane, ShapeMode, ShapePolicy};
pub use subscription::{
    compute_regions, CandidateRegion, SafeRegionSummary, Subscription, SubscriptionRegistry,
};
pub use validate::{HelloPolicy, ProtocolViolation, TokenBucket};
pub use wal::{DurabilityConfig, FsyncPolicy, Recovered, ReplayBatch, Wal, WalError};
