//! The group-side client: one TCP connection driving the coordinator's
//! side of the protocol (Algorithm 1) against a remote LSP.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ppgnn_core::messages::AnswerMessage;
use ppgnn_core::partition_cache::solve_partition_cached;
use ppgnn_core::{opt_split, PpgnnConfig, PpgnnSession, Variant};
use ppgnn_geo::{Point, Rect};
use rand::Rng;

use crate::error::{ErrorCode, ServerError};
use crate::frame::{
    read_frame, write_frame, AnswerPayload, BusyPayload, ErrorPayload, FrameType, HelloAckPayload,
    HelloPayload, QueryPayload, DEFAULT_MAX_PAYLOAD,
};
use crate::registry::SessionParams;

/// A connected group: holds the TCP stream, the [`PpgnnSession`] (keys
/// + query counter), and the negotiated public parameters.
pub struct GroupClient {
    stream: TcpStream,
    session: PpgnnSession,
    config: PpgnnConfig,
    space: Rect,
    group_id: u64,
    next_request_id: u32,
    /// Per-request deadline sent to the server; 0 uses the server default.
    pub deadline_ms: u32,
    max_payload: usize,
    negotiated: Option<SessionParams>,
    server_info: HelloAckPayload,
}

fn variant_tag(v: Variant) -> u8 {
    match v {
        Variant::Plain => 0,
        Variant::Opt => 1,
        Variant::Naive => 2,
    }
}

/// Derives the session parameters a group of `n_users` will need under
/// `config`: for PPGNN-OPT the indicator splits into ω blocks, and ω is
/// a deterministic function of the (cached) partition solution.
pub fn session_params_for(
    config: &PpgnnConfig,
    n_users: usize,
) -> Result<SessionParams, ServerError> {
    let two_phase_omega = match config.variant {
        Variant::Opt => {
            let partition = solve_partition_cached(n_users, config.d, config.delta)?;
            let delta_prime = partition.delta_prime();
            let delta_prime = usize::try_from(delta_prime)
                .map_err(|_| ServerError::Malformed("delta_prime overflows usize"))?;
            Some(opt_split(delta_prime).0)
        }
        Variant::Plain | Variant::Naive => None,
    };
    Ok(SessionParams {
        key_bits: config.keysize,
        variant: variant_tag(config.variant),
        two_phase_omega,
        has_partition: !matches!(config.variant, Variant::Naive),
    })
}

impl GroupClient {
    /// Connects, generating a fresh keypair of `config.keysize` bits,
    /// and negotiates the session for a group of `n_users`.
    pub fn connect<A: ToSocketAddrs, R: Rng + ?Sized>(
        addr: A,
        group_id: u64,
        config: PpgnnConfig,
        space: Rect,
        n_users: usize,
        rng: &mut R,
    ) -> Result<Self, ServerError> {
        let session = PpgnnSession::new(config.keysize, rng);
        Self::with_session(addr, group_id, config, space, n_users, session)
    }

    /// Connects with an existing session (restored keys).
    pub fn with_session<A: ToSocketAddrs>(
        addr: A,
        group_id: u64,
        config: PpgnnConfig,
        space: Rect,
        n_users: usize,
        session: PpgnnSession,
    ) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(120)))?;
        let mut client = GroupClient {
            stream,
            session,
            config,
            space,
            group_id,
            next_request_id: 1,
            deadline_ms: 0,
            max_payload: DEFAULT_MAX_PAYLOAD,
            negotiated: None,
            server_info: HelloAckPayload {
                group_id,
                database_size: 0,
                max_payload: 0,
                workers: 0,
            },
        };
        let params = session_params_for(&client.config, n_users)?;
        client.handshake(params)?;
        Ok(client)
    }

    /// Server facts from the last `HelloAck`.
    pub fn server_info(&self) -> &HelloAckPayload {
        &self.server_info
    }

    /// Queries issued by the underlying session (successful plans).
    pub fn queries_issued(&self) -> u64 {
        self.session.queries_issued()
    }

    /// The session's public key.
    pub fn public_key(&self) -> &ppgnn_paillier::PublicKey {
        self.session.public_key()
    }

    fn handshake(&mut self, params: SessionParams) -> Result<(), ServerError> {
        let hello = HelloPayload {
            group_id: self.group_id,
            key_bits: params.key_bits as u32,
            variant: params.variant,
            omega: params.two_phase_omega.unwrap_or(0) as u32,
            has_partition: params.has_partition,
        };
        write_frame(&mut self.stream, FrameType::Hello, &hello.encode())?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.frame_type {
            FrameType::HelloAck => {
                let ack = HelloAckPayload::decode(&frame.payload)?;
                if ack.group_id != self.group_id {
                    return Err(ServerError::Malformed("hello_ack for a different group"));
                }
                self.server_info = ack;
                self.negotiated = Some(params);
                Ok(())
            }
            FrameType::Busy => {
                let busy = BusyPayload::decode(&frame.payload)?;
                Err(ServerError::ServerBusy {
                    retry_after_ms: busy.retry_after_ms,
                })
            }
            FrameType::Error => {
                let err = ErrorPayload::decode(&frame.payload)?;
                Err(ServerError::Remote {
                    code: err.code,
                    message: err.message,
                })
            }
            other => Err(ServerError::UnexpectedFrame {
                expected: "HelloAck",
                got: other,
            }),
        }
    }

    /// Checks server liveness.
    pub fn ping(&mut self) -> Result<(), ServerError> {
        write_frame(&mut self.stream, FrameType::Ping, &[])?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.frame_type {
            FrameType::Pong => Ok(()),
            other => Err(ServerError::UnexpectedFrame {
                expected: "Pong",
                got: other,
            }),
        }
    }

    /// Runs one full group query: plans locally (Algorithm 1), ships
    /// the wire messages, and decrypts the answer.
    ///
    /// A shed request surfaces as [`ServerError::ServerBusy`]; callers
    /// decide whether to back off and retry.
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        real_locations: &[Point],
        rng: &mut R,
    ) -> Result<Vec<Point>, ServerError> {
        let plan = self
            .session
            .plan(&self.config, self.space, real_locations, rng)?;
        let ctx = plan.wire_context();
        // Re-negotiate if this plan's decode context drifted (e.g. the
        // group size changed, shifting ω).
        let params = SessionParams {
            key_bits: ctx.key_bits,
            variant: variant_tag(self.config.variant),
            two_phase_omega: ctx.two_phase_omega,
            has_partition: ctx.has_partition,
        };
        if self.negotiated != Some(params) {
            self.handshake(params)?;
        }
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        let payload = QueryPayload {
            group_id: self.group_id,
            request_id,
            deadline_ms: self.deadline_ms,
            location_sets: plan.location_sets.iter().map(|s| s.to_wire()).collect(),
            query: plan.query.to_wire(),
        };
        write_frame(&mut self.stream, FrameType::Query, &payload.encode())?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?;
            match frame.frame_type {
                FrameType::Answer => {
                    let ans = AnswerPayload::decode(&frame.payload)?;
                    if ans.request_id != request_id {
                        return Err(ServerError::Malformed("answer for a different request"));
                    }
                    if ans.two_phase != plan.two_phase {
                        return Err(ServerError::Malformed("answer encryption level mismatch"));
                    }
                    let msg = AnswerMessage::from_wire(
                        &ans.answer,
                        self.session.public_key(),
                        ans.two_phase,
                    )?;
                    return Ok(self.session.decode(self.config.k, &msg)?);
                }
                FrameType::Busy => {
                    let busy = BusyPayload::decode(&frame.payload)?;
                    return Err(ServerError::ServerBusy {
                        retry_after_ms: busy.retry_after_ms,
                    });
                }
                FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload)?;
                    return Err(ServerError::Remote {
                        code: err.code,
                        message: err.message,
                    });
                }
                // A server draining mid-request says Goodbye; surface it.
                FrameType::Goodbye => {
                    return Err(ServerError::Remote {
                        code: ErrorCode::ShuttingDown,
                        message: "server said goodbye".into(),
                    });
                }
                FrameType::Pong => continue,
                other => {
                    return Err(ServerError::UnexpectedFrame {
                        expected: "Answer",
                        got: other,
                    })
                }
            }
        }
    }

    /// Closes the connection cleanly.
    pub fn goodbye(mut self) {
        let _ = write_frame(&mut self.stream, FrameType::Goodbye, &[]);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
