//! The group-side client: one TCP connection driving the coordinator's
//! side of the protocol (Algorithm 1) against a remote LSP.
//!
//! The client is resilient by default: a query plans (and counts
//! against the session) **once**, and the resulting bytes are retried
//! under a [`RetryPolicy`] — jittered exponential backoff that honors
//! the server's `retry_after_ms` hint as a floor, a per-query
//! wall-clock budget, and a bounded attempt count. Transport failures
//! reconnect and resend the *same* request ID without re-running the
//! handshake (the server's session registry survives reconnects), so a
//! request the server already answered is replayed from its answer
//! cache instead of being recomputed or double-counted.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use ppgnn_core::messages::AnswerMessage;
use ppgnn_core::partition_cache::solve_partition_cached;
use ppgnn_core::{opt_split, PpgnnConfig, PpgnnSession, Variant};
use ppgnn_geo::{PoiOp, Point, Rect};
use ppgnn_telemetry::trace::{self, AttrKey, SpanName, TraceContext, TraceSegment};
use ppgnn_telemetry::{self as telemetry, TelemetrySnapshot};
use rand::Rng;

use crate::backoff::{BackoffSchedule, RetryPolicy};
use crate::error::{ErrorCode, ServerError};
use crate::frame::{
    read_frame, write_frame, AnswerPayload, BusyPayload, ErrorPayload, Frame, FrameType,
    HelloAckPayload, HelloPayload, PoiUpdateAckPayload, PoiUpdatePayload, PongPayload,
    QueryPayload, StatsReplyPayload, SubscriptionKind, SubscriptionUpdatePayload,
    TraceReplyPayload, UnsubscribePayload, DEFAULT_MAX_PAYLOAD, HEADER_BYTES,
};
use crate::registry::SessionParams;
use crate::shape::ShapeMode;

/// Ceiling on one attempt's blocking read (the per-query budget usually
/// binds first).
const READ_TIMEOUT: Duration = Duration::from_secs(120);
/// Smallest read timeout worth arming (0 would disable the timeout).
const MIN_READ_TIMEOUT: Duration = Duration::from_millis(10);

/// Client-side resilience counters for one [`GroupClient`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientStats {
    /// Send attempts beyond the first, across all queries.
    pub retries: u64,
    /// Fresh TCP connections established after the initial one.
    pub reconnects: u64,
    /// Answers served from the server's replay cache.
    pub replayed_answers: u64,
    /// `Busy` sheds observed (each one backed off and retried).
    pub busy_sheds: u64,
}

/// One response frame as a passive network observer would see it:
/// nothing here requires the session keys — only the bytes on the wire
/// and a clock. The `observer` binary builds its (size, latency)
/// distributions from exactly these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireObservation {
    /// Frame-type byte (plaintext on the wire either way).
    pub frame_type: FrameType,
    /// Total on-wire bytes: header + payload + pad.
    pub total_bytes: usize,
    /// Request write → response frame fully read.
    pub latency: Duration,
}

/// The server's promise about a granted subscription: the group's
/// answer cannot change while every user stays within
/// [`SafeRegionToken::drift_radius`] of their subscribed location.
/// The server pushes a `SubscriptionUpdate` the moment a POI mutation
/// threatens the region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeRegionToken {
    /// The request the subscription was granted under.
    pub request_id: u32,
    /// Index version the answer and region were computed against.
    pub version: u64,
    /// Safe-region margin M (aggregate-cost gap, min over candidates).
    pub margin: f64,
    /// Aggregate scale: `n` for Sum, 1 for Max/Min.
    pub drift_scale: u32,
}

impl SafeRegionToken {
    /// Per-user drift radius: the answer provably holds while every
    /// user stays within this distance of their subscribed location.
    /// `M/(4s)`: each user's drift moves the group's aggregate cost to
    /// any POI by at most `s·r`, so top-k costs rise by at most `M/4`
    /// and runner-up costs fall by at most `M/4` — the gap `M` cannot
    /// close.
    pub fn drift_radius(&self) -> f64 {
        self.margin / (4.0 * self.drift_scale.max(1) as f64)
    }
}

/// A connected group: holds the TCP stream, the [`PpgnnSession`] (keys
/// + query counter), and the negotiated public parameters.
pub struct GroupClient {
    stream: TcpStream,
    addr: SocketAddr,
    session: PpgnnSession,
    config: PpgnnConfig,
    space: Rect,
    group_id: u64,
    next_request_id: u32,
    /// Per-request deadline sent to the server; 0 uses the server default.
    pub deadline_ms: u32,
    /// Retry pacing and budget for [`GroupClient::query`].
    pub retry: RetryPolicy,
    max_payload: usize,
    negotiated: Option<SessionParams>,
    server_info: HelloAckPayload,
    /// The connection is known dead and must be re-established before
    /// the next attempt.
    broken: bool,
    stats: ClientStats,
    /// Server pushes (invalidations, endings) received while waiting
    /// for something else; drained by [`GroupClient::take_notifications`].
    pending_updates: Vec<SubscriptionUpdatePayload>,
    /// The standing query this client holds, if any — what a detected
    /// server restart must surface an invalidation for.
    standing: Option<SafeRegionToken>,
    /// When enabled, every query-lane response frame is recorded as a
    /// [`WireObservation`]; drained by
    /// [`GroupClient::take_wire_observations`].
    wire_tap: bool,
    wire_observations: Vec<WireObservation>,
}

fn variant_tag(v: Variant) -> u8 {
    match v {
        Variant::Plain => 0,
        Variant::Opt => 1,
        Variant::Naive => 2,
    }
}

/// Derives the session parameters a group of `n_users` will need under
/// `config`: for PPGNN-OPT the indicator splits into ω blocks, and ω is
/// a deterministic function of the (cached) partition solution.
pub fn session_params_for(
    config: &PpgnnConfig,
    n_users: usize,
) -> Result<SessionParams, ServerError> {
    let two_phase_omega = match config.variant {
        Variant::Opt => {
            let partition = solve_partition_cached(n_users, config.d, config.delta)?;
            let delta_prime = partition.delta_prime();
            let delta_prime = usize::try_from(delta_prime)
                .map_err(|_| ServerError::Malformed("delta_prime overflows usize"))?;
            Some(opt_split(delta_prime).0)
        }
        Variant::Plain | Variant::Naive => None,
    };
    Ok(SessionParams {
        key_bits: config.keysize,
        variant: variant_tag(config.variant),
        two_phase_omega,
        has_partition: !matches!(config.variant, Variant::Naive),
        n_users,
        delta: config.delta,
        k: config.k,
        // Naive ships the whole candidate set per user; the
        // partitioned variants ship d dummy slots.
        d: effective_set_len(config),
    })
}

/// Locations per user set under `config` — what the server's gate will
/// hold every query to.
fn effective_set_len(config: &PpgnnConfig) -> usize {
    match config.variant {
        Variant::Naive => config.delta,
        Variant::Plain | Variant::Opt => config.d,
    }
}

/// What the retry loop should do about one failed attempt.
struct Recovery {
    /// Whether retrying can help at all.
    retryable: bool,
    /// Server-suggested backoff floor, if any.
    retry_after_ms: Option<u32>,
    /// The stream is desynced or dead: reconnect before retrying.
    reconnect: bool,
    /// The server lost the session: re-handshake before retrying.
    rehandshake: bool,
}

/// Classifies an attempt failure. Transport-level failures (dead or
/// desynced streams) reconnect; typed remote failures retry in place;
/// deterministic failures (bad input, local protocol errors, a
/// deliberately draining server) surface immediately. A remote
/// `Violation` is deterministic by construction — the server's gate
/// rejects the same bytes the same way every time — so it must fail
/// fast instead of burning the wall-clock budget on backoff.
fn classify(e: &ServerError) -> Recovery {
    let (retryable, retry_after_ms, reconnect, rehandshake) = match e {
        ServerError::Io(_)
        | ServerError::ConnectionClosed
        | ServerError::BadMagic(_)
        | ServerError::BadVersion(_)
        | ServerError::UnknownFrameType(_)
        | ServerError::ChecksumMismatch { .. }
        | ServerError::Malformed(_)
        | ServerError::UnexpectedFrame { .. } => (true, None, true, false),
        // An oversized frame is deterministic in both directions: our
        // payload will not shrink on retry, and a server reply past
        // the cap will be past it again.
        ServerError::FrameTooLarge { .. } => (false, None, false, false),
        ServerError::ServerBusy { retry_after_ms } => (true, Some(*retry_after_ms), false, false),
        ServerError::Remote { code, .. } => match code {
            ErrorCode::NoSession => (true, None, false, true),
            ErrorCode::DeadlineExceeded | ErrorCode::Internal => (true, None, false, false),
            // Quota pressure (full session table, strike disconnect)
            // may drain; give the backoff a chance.
            ErrorCode::QuotaExceeded => (true, None, false, false),
            ErrorCode::ShuttingDown
            | ErrorCode::MalformedPayload
            | ErrorCode::Protocol
            | ErrorCode::Violation => (false, None, false, false),
        },
        ServerError::Protocol(_) | ServerError::Violation(_) | ServerError::Recovery(_) => {
            (false, None, false, false)
        }
    };
    Recovery {
        retryable,
        retry_after_ms,
        reconnect,
        rehandshake,
    }
}

impl GroupClient {
    /// Connects, generating a fresh keypair of `config.keysize` bits,
    /// and negotiates the session for a group of `n_users`.
    pub fn connect<A: ToSocketAddrs, R: Rng + ?Sized>(
        addr: A,
        group_id: u64,
        config: PpgnnConfig,
        space: Rect,
        n_users: usize,
        rng: &mut R,
    ) -> Result<Self, ServerError> {
        let session = PpgnnSession::new(config.keysize, rng);
        Self::with_session(addr, group_id, config, space, n_users, session)
    }

    /// Connects with an existing session (restored keys).
    pub fn with_session<A: ToSocketAddrs>(
        addr: A,
        group_id: u64,
        config: PpgnnConfig,
        space: Rect,
        n_users: usize,
        session: PpgnnSession,
    ) -> Result<Self, ServerError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        let addr = stream.peer_addr()?;
        let mut client = GroupClient {
            stream,
            addr,
            session,
            config,
            space,
            group_id,
            next_request_id: 1,
            deadline_ms: 0,
            retry: RetryPolicy::default(),
            max_payload: DEFAULT_MAX_PAYLOAD,
            negotiated: None,
            server_info: HelloAckPayload {
                group_id,
                database_size: 0,
                max_payload: 0,
                workers: 0,
                epoch: 0,
                shape_mode: 0,
                answer_target: 0,
                control_target: 0,
                latency_quantum_ms: 0,
            },
            broken: false,
            stats: ClientStats::default(),
            pending_updates: Vec::new(),
            standing: None,
            wire_tap: false,
            wire_observations: Vec::new(),
        };
        let params = session_params_for(&client.config, n_users)?;
        client.handshake(params)?;
        Ok(client)
    }

    /// Server facts from the last `HelloAck`.
    pub fn server_info(&self) -> &HelloAckPayload {
        &self.server_info
    }

    /// The response-shape mode the server negotiated in its `HelloAck`.
    pub fn shape_mode(&self) -> ShapeMode {
        ShapeMode::from_u8(self.server_info.shape_mode).unwrap_or(ShapeMode::Off)
    }

    /// Turns the passive wire tap on or off. While on, every
    /// query-lane response frame is recorded (type, total on-wire
    /// bytes, request→response latency) exactly as a network observer
    /// would see it.
    pub fn set_wire_tap(&mut self, enabled: bool) {
        self.wire_tap = enabled;
    }

    /// Drains the recorded [`WireObservation`]s.
    pub fn take_wire_observations(&mut self) -> Vec<WireObservation> {
        std::mem::take(&mut self.wire_observations)
    }

    /// Validates a response frame against the negotiated shape: under
    /// a padded server, every `Answer` must arrive at exactly the
    /// answer target and every `Busy`/`Error`/`SubscriptionUpdate` at
    /// exactly the control target — a deviation means the envelope
    /// burst (a server-side policy bug) and is surfaced, not ignored.
    fn check_shape(&self, frame: &Frame) -> Result<(), ServerError> {
        if self.server_info.shape_mode != ShapeMode::Padded.to_u8() {
            return Ok(());
        }
        let expected = match frame.frame_type {
            FrameType::Answer => self.server_info.answer_target as usize,
            FrameType::Busy | FrameType::Error | FrameType::SubscriptionUpdate => {
                self.server_info.control_target as usize
            }
            _ => return Ok(()),
        };
        if frame.payload.len() + frame.pad != expected {
            return Err(ServerError::Malformed(
                "response frame does not match the negotiated shape target",
            ));
        }
        Ok(())
    }

    /// Records a response frame on the wire tap, if enabled.
    fn observe_wire(&mut self, frame: &Frame, latency: Duration) {
        if self.wire_tap {
            self.wire_observations.push(WireObservation {
                frame_type: frame.frame_type,
                total_bytes: HEADER_BYTES + frame.payload.len() + frame.pad,
                latency,
            });
        }
    }

    /// The restart epoch last observed from the server (0 before the
    /// first handshake).
    pub fn server_epoch(&self) -> u64 {
        self.server_info.epoch
    }

    /// Folds in an epoch observed on the wire (`HelloAck` or `Pong`).
    /// A changed epoch means the server restarted since we last spoke:
    /// its subscription registry is gone, so the standing query (if
    /// any) gets a synthetic `Invalidated` push — the caller's normal
    /// invalidation handling then re-subscribes. A crash can only
    /// degrade to a spurious re-grant, never to silent staleness.
    fn observe_epoch(&mut self, epoch: u64) -> bool {
        let prev = std::mem::replace(&mut self.server_info.epoch, epoch);
        let restarted = prev != 0 && epoch != prev;
        if restarted {
            self.queue_standing_invalidated();
        }
        restarted
    }

    /// Queues the synthetic `Invalidated` push for the standing query,
    /// if any. Deduplicated against pushes already pending, so a
    /// reconnect followed by a restart detection yields one push, not
    /// two.
    fn queue_standing_invalidated(&mut self) {
        let Some(standing) = &self.standing else {
            return;
        };
        let request_id = standing.request_id;
        if self
            .pending_updates
            .iter()
            .any(|u| u.request_id == request_id && u.kind == SubscriptionKind::Invalidated)
        {
            return;
        }
        self.pending_updates.push(SubscriptionUpdatePayload {
            request_id,
            kind: SubscriptionKind::Invalidated,
            version: 0,
            margin: 0.0,
            drift_scale: 1,
        });
    }

    /// Reconnects (if the connection is broken) and re-handshakes,
    /// detecting a server restart via the `HelloAck` epoch. Returns
    /// `true` when the server restarted since this client last spoke
    /// to it. Whenever this had to reconnect — restart or not — a
    /// synthetic `Invalidated` push is queued for the standing query
    /// (a reconnect alone destroys the server-side subscription),
    /// retrievable via [`Self::take_notifications`]. Idempotent:
    /// resuming against a live server over a healthy connection is a
    /// cheap re-`Hello`.
    pub fn resume(&mut self) -> Result<bool, ServerError> {
        self.ensure_connected()?;
        let before = self.server_info.epoch;
        if let Err(first) = self.refresh_epoch() {
            // A crashed server kills the socket without this side
            // noticing until the next read; one reconnect-and-retry
            // covers exactly that window.
            self.broken = true;
            self.ensure_connected().map_err(|_| first)?;
            self.refresh_epoch()?;
        }
        Ok(before != 0 && self.server_info.epoch != before)
    }

    /// Re-learns the server's epoch: a re-`Hello` when parameters were
    /// already negotiated (restoring the session registry entry too),
    /// a bare `Ping` otherwise.
    fn refresh_epoch(&mut self) -> Result<(), ServerError> {
        match self.negotiated {
            Some(params) => self.handshake(params),
            None => self.ping().map(|_| ()),
        }
    }

    /// Queries issued by the underlying session (successful plans).
    /// Retries of one query never move this counter.
    pub fn queries_issued(&self) -> u64 {
        self.session.queries_issued()
    }

    /// Resilience counters for this client.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// The session's public key.
    pub fn public_key(&self) -> &ppgnn_paillier::PublicKey {
        self.session.public_key()
    }

    /// Re-establishes the TCP connection if the last attempt killed it.
    /// Deliberately does **not** re-handshake: the server's registry
    /// keeps the session across reconnects.
    fn ensure_connected(&mut self) -> Result<(), ServerError> {
        if !self.broken {
            return Ok(());
        }
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        self.stream = stream;
        self.broken = false;
        self.stats.reconnects += 1;
        // The session survives a reconnect, but the standing query
        // does not: the server reaps a connection's subscriptions
        // with the connection itself, even when it never restarted
        // (network reset, slow-consumer disconnect). The token this
        // client holds is therefore dead the moment a reconnect was
        // needed — queue the synthetic push here, not only on an
        // epoch change, or a same-epoch reconnect would leave the
        // caller trusting a safe region nobody watches any more.
        self.queue_standing_invalidated();
        Ok(())
    }

    fn handshake(&mut self, params: SessionParams) -> Result<(), ServerError> {
        let hello = HelloPayload {
            group_id: self.group_id,
            key_bits: params.key_bits as u32,
            variant: params.variant,
            omega: params.two_phase_omega.unwrap_or(0) as u32,
            has_partition: params.has_partition,
            n_users: params.n_users as u32,
            delta: params.delta as u32,
            k: params.k as u32,
            d: params.d as u32,
        };
        write_frame(&mut self.stream, FrameType::Hello, &hello.encode())?;
        let frame = read_frame(&mut self.stream, self.max_payload)?;
        match frame.frame_type {
            FrameType::HelloAck => {
                let ack = HelloAckPayload::decode(&frame.payload)?;
                if ack.group_id != self.group_id {
                    return Err(ServerError::Malformed("hello_ack for a different group"));
                }
                // A padded server must advertise a usable envelope; a
                // zero target would make every later shape check fail
                // in a confusing place, so reject the handshake here.
                if ack.shape_mode == ShapeMode::Padded.to_u8()
                    && (ack.answer_target == 0 || ack.control_target == 0)
                {
                    return Err(ServerError::Malformed(
                        "padded shape negotiated with an empty target",
                    ));
                }
                // Adopt the server's advertised frame cap so an
                // oversized query fails fast client-side instead of
                // earning a strike at the server's gate.
                if ack.max_payload > 0 {
                    self.max_payload = ack.max_payload as usize;
                }
                self.observe_epoch(ack.epoch);
                self.server_info = ack;
                self.negotiated = Some(params);
                Ok(())
            }
            FrameType::Busy => {
                let busy = BusyPayload::decode(&frame.payload)?;
                Err(ServerError::ServerBusy {
                    retry_after_ms: busy.retry_after_ms,
                })
            }
            FrameType::Error => {
                let err = ErrorPayload::decode(&frame.payload)?;
                Err(ServerError::Remote {
                    code: err.code,
                    message: err.message,
                })
            }
            other => Err(ServerError::UnexpectedFrame {
                expected: "HelloAck",
                got: other,
            }),
        }
    }

    /// Checks server liveness and returns its health snapshot.
    pub fn ping(&mut self) -> Result<PongPayload, ServerError> {
        self.ensure_connected()?;
        write_frame(&mut self.stream, FrameType::Ping, &[]).inspect_err(|_| {
            self.broken = true;
        })?;
        let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
            self.broken = true;
        })?;
        match frame.frame_type {
            FrameType::Pong => {
                let pong = PongPayload::decode(&frame.payload)?;
                self.observe_epoch(pong.epoch);
                Ok(pong)
            }
            other => Err(ServerError::UnexpectedFrame {
                expected: "Pong",
                got: other,
            }),
        }
    }

    /// Fetches the server's full telemetry snapshot with a `Stats`
    /// request: every pipeline-stage histogram, crypto op counter,
    /// service counter, and load gauge — the wire face of
    /// [`ServerHandle::telemetry_snapshot`].
    ///
    /// [`ServerHandle::telemetry_snapshot`]:
    /// crate::server::ServerHandle::telemetry_snapshot
    pub fn server_stats(&mut self) -> Result<TelemetrySnapshot, ServerError> {
        self.ensure_connected()?;
        write_frame(&mut self.stream, FrameType::Stats, &[]).inspect_err(|_| {
            self.broken = true;
        })?;
        let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
            self.broken = true;
        })?;
        match frame.frame_type {
            FrameType::StatsReply => Ok(StatsReplyPayload::decode(&frame.payload)?.snapshot),
            other => Err(ServerError::UnexpectedFrame {
                expected: "StatsReply",
                got: other,
            }),
        }
    }

    /// Fetches-and-clears the server's kept trace segments with a
    /// sessionless `TraceFetch` request (same liveness lane as `Ping`
    /// and `Stats`). Segments already shipped are removed server-side,
    /// so repeated polls see only new traces.
    pub fn server_traces(&mut self) -> Result<Vec<TraceSegment>, ServerError> {
        self.ensure_connected()?;
        write_frame(&mut self.stream, FrameType::TraceFetch, &[]).inspect_err(|_| {
            self.broken = true;
        })?;
        let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
            self.broken = true;
        })?;
        match frame.frame_type {
            FrameType::TraceReply => Ok(TraceReplyPayload::decode(&frame.payload)?.segments),
            other => Err(ServerError::UnexpectedFrame {
                expected: "TraceReply",
                got: other,
            }),
        }
    }

    /// Runs one full group query: plans locally (Algorithm 1), ships
    /// the wire messages, and decrypts the answer.
    ///
    /// The plan (and the session's query counter) happens exactly once;
    /// the encoded bytes are then attempted under [`Self::retry`]:
    /// `Busy` sheds and transient failures back off and resend the same
    /// request ID, reconnecting if the connection died, until the
    /// wall-clock budget or attempt count runs out — at which point the
    /// last error surfaces. Deterministic failures surface immediately.
    ///
    /// Every query mints a [`TraceContext`] that rides in the frame v5
    /// header; when tracing is enabled the client half of the query is
    /// recorded under it (see `ppgnn_telemetry::trace`).
    pub fn query<R: Rng + ?Sized>(
        &mut self,
        real_locations: &[Point],
        rng: &mut R,
    ) -> Result<Vec<Point>, ServerError> {
        self.issue(real_locations, rng, false)
            .map(|(answer, _)| answer)
    }

    /// Like [`Self::query`], but registers a *standing* query: along
    /// with the `k` answers the server returns a [`SafeRegionToken`],
    /// and pushes a `SubscriptionUpdate` the moment a POI mutation
    /// could change the answer (poll with [`Self::poll_notifications`]).
    ///
    /// Internally the query asks for `k+1` answers: the extra one is a
    /// runner-up *sentinel* that never leaves this method. Its cost gap
    /// to the k-th answer is the true safe-region margin, computed
    /// right here from the decrypted answers — so the token's margin is
    /// exact for *this* group's query, with zero extra disclosure from
    /// the server (Privacy III), and no dependence on the server's
    /// conservative min-over-candidates bound.
    ///
    /// A group holds at most one subscription — re-subscribing
    /// replaces the previous standing query. If the grant is lost to a
    /// retried attempt (the server replays the cached answer but a
    /// replay never re-registers), this fails fast; re-subscribe to
    /// recover.
    pub fn subscribe<R: Rng + ?Sized>(
        &mut self,
        real_locations: &[Point],
        rng: &mut R,
    ) -> Result<(Vec<Point>, SafeRegionToken), ServerError> {
        let (mut answer, token) = self.issue(real_locations, rng, true)?;
        let mut token = token.ok_or(ServerError::Malformed(
            "subscribe returned no safe-region token",
        ))?;
        let k = self.config.k;
        let agg = self.config.aggregate;
        if answer.len() > k {
            // The sentinel gap, on this client's own decrypted costs.
            let c_prot = agg.eval(&answer[k - 1], real_locations);
            let c_sent = agg.eval(&answer[k], real_locations);
            token.margin = (c_sent - c_prot).max(0.0);
            answer.truncate(k);
        } else {
            // Fewer answers than asked: the database itself is smaller
            // than k+1, so the answer set cannot change without a
            // mutation — and every mutation near a free slot notifies.
            token.margin = f64::INFINITY;
        }
        self.standing = Some(token);
        Ok((answer, token))
    }

    /// Shared driver behind [`Self::query`] and [`Self::subscribe`].
    fn issue<R: Rng + ?Sized>(
        &mut self,
        real_locations: &[Point],
        rng: &mut R,
        subscribe: bool,
    ) -> Result<(Vec<Point>, Option<SafeRegionToken>), ServerError> {
        let (tctx, tracing) = trace::global().start();
        // Activate before any stage timer is armed so timer drops still
        // see the active trace and record their bucket exemplars.
        let active = tracing.as_ref().map(|h| h.activate());
        trace::attr(AttrKey::Users, real_locations.len() as u64);
        let retries_before = self.stats.retries;
        let result = self.query_attempts(tctx, real_locations, rng, subscribe);
        let retries = self.stats.retries - retries_before;
        if retries > 0 {
            trace::attr(AttrKey::Retries, retries);
        }
        if result.is_err() {
            trace::mark_error();
        }
        drop(active);
        if let Some(handle) = tracing {
            match &result {
                Ok(_) => handle.finish(),
                // Dropping without finish commits the segment with the
                // error flag — exactly what tail sampling must keep.
                Err(_) => drop(handle),
            }
        }
        result
    }

    /// The body of [`Self::query`], run under its trace segment.
    fn query_attempts<R: Rng + ?Sized>(
        &mut self,
        tctx: TraceContext,
        real_locations: &[Point],
        rng: &mut R,
        subscribe: bool,
    ) -> Result<(Vec<Point>, Option<SafeRegionToken>), ServerError> {
        // End-to-end covers plan, encode, every wire attempt (including
        // backoff sleeps), and the final decrypt — the latency a group
        // member actually experiences.
        let _e2e = telemetry::global().time(telemetry::Stage::EndToEnd);
        // A subscription asks for one extra answer — the runner-up
        // sentinel `subscribe` turns into the safe-region margin.
        let config = if subscribe {
            PpgnnConfig {
                k: self.config.k + 1,
                ..self.config.clone()
            }
        } else {
            self.config.clone()
        };
        let plan = self
            .session
            .plan(&config, self.space, real_locations, rng)?;
        let ctx = plan.wire_context();
        // Re-negotiate if this plan's decode context drifted (e.g. the
        // group size changed, shifting ω — or `k` shifting by the
        // sentinel when a client alternates queries and subscribes).
        let params = SessionParams {
            key_bits: ctx.key_bits,
            variant: variant_tag(config.variant),
            two_phase_omega: ctx.two_phase_omega,
            has_partition: ctx.has_partition,
            n_users: real_locations.len(),
            delta: config.delta,
            k: config.k,
            d: effective_set_len(&config),
        };
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        // Encoded once: every retry resends these exact bytes, so the
        // server sees the identical ciphertexts and request ID.
        let payload = {
            let sp = trace::span(SpanName::ClientEncode);
            let _t = telemetry::global().time(telemetry::Stage::ClientEncode);
            let bytes = QueryPayload {
                group_id: self.group_id,
                request_id,
                deadline_ms: self.deadline_ms,
                trace: tctx,
                location_sets: plan.location_sets.iter().map(|s| s.to_wire()).collect(),
                query: plan.query.to_wire(),
            }
            .encode();
            sp.attr(AttrKey::Bytes, bytes.len() as u64);
            bytes
        };

        let started = Instant::now();
        let mut schedule = BackoffSchedule::new(
            self.retry.clone(),
            self.group_id ^ ((request_id as u64) << 32),
        );
        let frame_type = if subscribe {
            FrameType::Subscribe
        } else {
            FrameType::Query
        };
        loop {
            let remaining = self.retry.budget.saturating_sub(started.elapsed());
            let result = self.attempt(frame_type, params, &payload, request_id, remaining);
            let err = match result {
                Ok(ans) => {
                    if ans.replayed {
                        self.stats.replayed_answers += 1;
                    }
                    if ans.two_phase != plan.two_phase {
                        return Err(ServerError::Malformed("answer encryption level mismatch"));
                    }
                    let msg = AnswerMessage::from_wire(
                        &ans.answer,
                        self.session.public_key(),
                        ans.two_phase,
                    )?;
                    let answer = self.session.decode(config.k, &msg)?;
                    if !subscribe {
                        return Ok((answer, None));
                    }
                    // A replayed answer comes from the server's cache;
                    // the replay path never registers a subscription,
                    // so no `Granted` will follow. Fail fast —
                    // re-subscribing mints a fresh request ID.
                    if ans.replayed {
                        return Err(ServerError::Malformed(
                            "subscription grant lost in answer replay; re-subscribe",
                        ));
                    }
                    let token = self.wait_granted(request_id)?;
                    return Ok((answer, Some(token)));
                }
                Err(e) => e,
            };
            let recovery = classify(&err);
            if matches!(err, ServerError::ServerBusy { .. }) {
                self.stats.busy_sheds += 1;
                trace::mark_shed();
            }
            if recovery.reconnect {
                self.broken = true;
            }
            if recovery.rehandshake {
                self.negotiated = None;
            }
            if !recovery.retryable || !schedule.attempts_left() {
                return Err(err);
            }
            let delay = schedule.next_delay(recovery.retry_after_ms);
            if started.elapsed() + delay >= self.retry.budget {
                return Err(err);
            }
            std::thread::sleep(delay);
            self.stats.retries += 1;
        }
    }

    /// One send/receive attempt for an already-encoded query.
    fn attempt(
        &mut self,
        frame_type: FrameType,
        params: SessionParams,
        payload: &[u8],
        request_id: u32,
        remaining: Duration,
    ) -> Result<AnswerPayload, ServerError> {
        if remaining.is_zero() {
            return Err(ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "query retry budget exhausted",
            )));
        }
        self.ensure_connected()?;
        if self.negotiated != Some(params) {
            self.handshake(params)?;
        }
        // Bound the wait for this attempt by what is left of the
        // budget, so a lost reply cannot stall past it.
        self.stream
            .set_read_timeout(Some(remaining.min(READ_TIMEOUT).max(MIN_READ_TIMEOUT)))?;
        // Fail fast on a query the server's frame cap would reject
        // anyway; shipping it would only earn us a strike.
        if payload.len() > self.max_payload {
            return Err(ServerError::FrameTooLarge {
                len: payload.len(),
                max: self.max_payload,
            });
        }
        write_frame(&mut self.stream, frame_type, payload)?;
        // The tap clock starts when the request hits the wire: what an
        // on-path observer would measure as this request's latency.
        let sent = Instant::now();
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload)?;
            self.check_shape(&frame)?;
            self.observe_wire(&frame, sent.elapsed());
            match frame.frame_type {
                // An earlier subscription's push can land while this
                // query's answer is in flight; stash it, don't desync.
                FrameType::SubscriptionUpdate => {
                    let update = SubscriptionUpdatePayload::decode(&frame.payload)?;
                    self.pending_updates.push(update);
                }
                FrameType::Answer => {
                    let ans = AnswerPayload::decode(&frame.payload)?;
                    if ans.request_id != request_id {
                        return Err(ServerError::Malformed("answer for a different request"));
                    }
                    return Ok(ans);
                }
                FrameType::Busy => {
                    let busy = BusyPayload::decode(&frame.payload)?;
                    return Err(ServerError::ServerBusy {
                        retry_after_ms: busy.retry_after_ms,
                    });
                }
                FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload)?;
                    return Err(ServerError::Remote {
                        code: err.code,
                        message: err.message,
                    });
                }
                // A server draining mid-request says Goodbye; surface it.
                FrameType::Goodbye => {
                    return Err(ServerError::Remote {
                        code: ErrorCode::ShuttingDown,
                        message: "server said goodbye".into(),
                    });
                }
                FrameType::Pong => continue,
                other => {
                    return Err(ServerError::UnexpectedFrame {
                        expected: "Answer",
                        got: other,
                    })
                }
            }
        }
    }

    /// Waits for the `Granted` push that follows a `Subscribe` answer.
    fn wait_granted(&mut self, request_id: u32) -> Result<SafeRegionToken, ServerError> {
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
                self.broken = true;
            })?;
            match frame.frame_type {
                FrameType::SubscriptionUpdate => {
                    let update = SubscriptionUpdatePayload::decode(&frame.payload)?;
                    if update.request_id == request_id && update.kind == SubscriptionKind::Granted {
                        return Ok(SafeRegionToken {
                            request_id,
                            version: update.version,
                            margin: update.margin,
                            drift_scale: update.drift_scale,
                        });
                    }
                    self.pending_updates.push(update);
                }
                FrameType::Pong => continue,
                FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload)?;
                    return Err(ServerError::Remote {
                        code: err.code,
                        message: err.message,
                    });
                }
                other => {
                    return Err(ServerError::UnexpectedFrame {
                        expected: "SubscriptionUpdate",
                        got: other,
                    })
                }
            }
        }
    }

    /// Drains pushes already received (stashed while waiting for other
    /// replies) without touching the network.
    pub fn take_notifications(&mut self) -> Vec<SubscriptionUpdatePayload> {
        std::mem::take(&mut self.pending_updates)
    }

    /// Waits up to `wait` for subscription pushes. Returns whatever
    /// arrived (possibly none): stashed pushes immediately, otherwise
    /// whatever the server sends before the deadline. A quiet wire is
    /// not an error.
    pub fn poll_notifications(
        &mut self,
        wait: Duration,
    ) -> Result<Vec<SubscriptionUpdatePayload>, ServerError> {
        if !self.pending_updates.is_empty() {
            return Ok(self.take_notifications());
        }
        self.ensure_connected()?;
        self.stream
            .set_read_timeout(Some(wait.min(READ_TIMEOUT).max(MIN_READ_TIMEOUT)))?;
        loop {
            match read_frame(&mut self.stream, self.max_payload) {
                Ok(frame) => match frame.frame_type {
                    FrameType::SubscriptionUpdate => {
                        let update = SubscriptionUpdatePayload::decode(&frame.payload)?;
                        self.pending_updates.push(update);
                        // Drain whatever else is already in flight,
                        // but don't wait the full deadline again.
                        self.stream.set_read_timeout(Some(MIN_READ_TIMEOUT))?;
                    }
                    FrameType::Pong => continue,
                    other => {
                        self.broken = true;
                        return Err(ServerError::UnexpectedFrame {
                            expected: "SubscriptionUpdate",
                            got: other,
                        });
                    }
                },
                // A clean timeout means "nothing pushed" — the frame
                // header is read in one piece, so no bytes were lost.
                Err(ServerError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    break;
                }
                Err(e) => {
                    // A dead wire mid-poll is how a subscriber
                    // experiences a server crash *or* a plain network
                    // reset. Try one resume: the reconnect itself
                    // queues the synthetic invalidation the caller
                    // re-subscribes on (the server reaped the standing
                    // query with the old connection whether or not it
                    // restarted). If the server is still down, surface
                    // the original transport error.
                    self.broken = true;
                    return match self.resume() {
                        Ok(_) => Ok(self.take_notifications()),
                        Err(_) => Err(e),
                    };
                }
            }
        }
        self.stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(self.take_notifications())
    }

    /// Cancels the standing query granted under `token`. Idempotent:
    /// the server confirms with an `Ended` push either way.
    pub fn unsubscribe(&mut self, token: &SafeRegionToken) -> Result<(), ServerError> {
        self.ensure_connected()?;
        let payload = UnsubscribePayload {
            group_id: self.group_id,
            request_id: token.request_id,
        };
        write_frame(&mut self.stream, FrameType::Unsubscribe, &payload.encode()).inspect_err(
            |_| {
                self.broken = true;
            },
        )?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
                self.broken = true;
            })?;
            match frame.frame_type {
                FrameType::SubscriptionUpdate => {
                    let update = SubscriptionUpdatePayload::decode(&frame.payload)?;
                    if update.request_id == token.request_id
                        && update.kind == SubscriptionKind::Ended
                    {
                        if self.standing.map(|s| s.request_id) == Some(token.request_id) {
                            self.standing = None;
                        }
                        return Ok(());
                    }
                    self.pending_updates.push(update);
                }
                FrameType::Pong => continue,
                FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload)?;
                    return Err(ServerError::Remote {
                        code: err.code,
                        message: err.message,
                    });
                }
                other => {
                    return Err(ServerError::UnexpectedFrame {
                        expected: "SubscriptionUpdate",
                        got: other,
                    })
                }
            }
        }
    }

    /// The admin lane: ships a POI mutation batch. Requires the
    /// server's shared-secret `admin_token`; a wrong token earns a
    /// protocol-violation strike, exactly like any hostile frame.
    pub fn poi_update(
        &mut self,
        admin_token: u64,
        ops: &[PoiOp],
    ) -> Result<PoiUpdateAckPayload, ServerError> {
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1).max(1);
        self.poi_update_with_id(admin_token, request_id, ops)
    }

    /// As [`Self::poi_update`], but with a caller-chosen `request_id` —
    /// the at-least-once redelivery path. Re-sending a previously acked
    /// batch verbatim (same id, same ops) is safe against a durable
    /// server: it recognizes the batch and acks the *original* version
    /// without applying it twice.
    pub fn poi_update_with_id(
        &mut self,
        admin_token: u64,
        request_id: u32,
        ops: &[PoiOp],
    ) -> Result<PoiUpdateAckPayload, ServerError> {
        self.ensure_connected()?;
        let payload = PoiUpdatePayload {
            admin_token,
            request_id,
            ops: ops.to_vec(),
        };
        write_frame(&mut self.stream, FrameType::PoiUpdate, &payload.encode()).inspect_err(
            |_| {
                self.broken = true;
            },
        )?;
        loop {
            let frame = read_frame(&mut self.stream, self.max_payload).inspect_err(|_| {
                self.broken = true;
            })?;
            match frame.frame_type {
                FrameType::PoiUpdateAck => {
                    let ack = PoiUpdateAckPayload::decode(&frame.payload)?;
                    if ack.request_id != request_id {
                        return Err(ServerError::Malformed("ack for a different request"));
                    }
                    return Ok(ack);
                }
                FrameType::SubscriptionUpdate => {
                    let update = SubscriptionUpdatePayload::decode(&frame.payload)?;
                    self.pending_updates.push(update);
                }
                FrameType::Busy => {
                    let busy = BusyPayload::decode(&frame.payload)?;
                    return Err(ServerError::ServerBusy {
                        retry_after_ms: busy.retry_after_ms,
                    });
                }
                FrameType::Error => {
                    let err = ErrorPayload::decode(&frame.payload)?;
                    return Err(ServerError::Remote {
                        code: err.code,
                        message: err.message,
                    });
                }
                FrameType::Pong => continue,
                other => {
                    return Err(ServerError::UnexpectedFrame {
                        expected: "PoiUpdateAck",
                        got: other,
                    })
                }
            }
        }
    }

    /// Closes the connection cleanly.
    pub fn goodbye(mut self) {
        let _ = write_frame(&mut self.stream, FrameType::Goodbye, &[]);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}
