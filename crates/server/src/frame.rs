//! The length-prefixed frame layer.
//!
//! Every message on the socket is one frame:
//!
//! ```text
//! +------+---------+------+----------------+------------+-------------+---------+---------+
//! | PPGN | version | type | payload length | pad length | payload crc | payload | padding |
//! | 4 B  | 1 B     | 1 B  | u32 LE         | u32 LE     | u32 LE      | N bytes | P bytes |
//! +------+---------+------+----------------+------------+-------------+---------+---------+
//! ```
//!
//! The payload of `Query`/`Answer` frames wraps the byte-exact
//! [`ppgnn_core::wire`] encodings; the frame layer itself only does
//! framing, typing, length policing, and integrity (version 2 added a
//! CRC-32 of the payload: a flipped ciphertext byte would otherwise
//! decrypt to a plausible-but-wrong answer with no way to tell).
//! Version 8 added the pad-length field: under a padded
//! [`ShapePolicy`](crate::shape::ShapePolicy) the server stretches every
//! response frame to one policy-wide size by appending `P` zero bytes
//! that the reader discards. The CRC covers the real payload only — the
//! padding carries no information by construction, so there is nothing
//! to protect. Decoding never panics: every truncated, oversized,
//! corrupted, or garbage input maps to a typed [`ServerError`].

use std::io::{Read, Write};

use ppgnn_geo::{Poi, PoiOp, Point};
use ppgnn_telemetry::trace::{self, TraceContext, TraceSegment, TRACE_CONTEXT_BYTES};
use ppgnn_telemetry::{HealthSnapshot, TelemetrySnapshot};

use crate::error::{ErrorCode, ServerError};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PPGN";
/// Frame-layer version this build speaks (2 added a payload CRC in the
/// header; 3 widened `Hello` with the session shape — n/δ/k/d — that
/// the server's validation gate holds every query to, and `Pong` with
/// the admission-control counters; 4 added the `Stats`/`StatsReply`
/// telemetry exchange and rebased `Pong` on the fixed-width
/// [`HealthSnapshot`] encoding; 5 added the 16-byte [`TraceContext`]
/// to the `Query` header and the sessionless `TraceFetch`/`TraceReply`
/// exchange for pulling kept trace segments; 6 added the dynamic-world
/// lanes: `PoiUpdate`/`PoiUpdateAck` admin mutations of the POI index
/// and the `Subscribe`/`SubscriptionUpdate`/`Unsubscribe` standing-query
/// exchange for moving groups; 7 added the server's restart `epoch` to
/// `HelloAck` and `Pong` so clients detect a crash/recovery cycle and
/// idempotently re-subscribe their standing queries; 8 added the u32
/// pad-length header field and the shape facts in `HelloAck` so a
/// padded server can stretch every response lane to one constant size
/// that clients strip transparently; 9 widened [`HealthSnapshot`] — and
/// therefore `Pong` — with the four SLO burn-rate fields, permille of
/// the configured error budget over the fast and slow windows).
pub const VERSION: u8 = 9;
/// Fixed header width: magic + version + type + u32 length + u32 pad
/// length + u32 crc.
pub const HEADER_BYTES: usize = 18;
/// Default cap on a single frame payload (16 MiB).
pub const DEFAULT_MAX_PAYLOAD: usize = 16 << 20;
/// Cap on location sets per query (one per user; groups are small).
pub const MAX_LOCATION_SETS: usize = 4096;
/// Cap on mutations per `PoiUpdate` frame — bounds both decode memory
/// and the time the admin lane can hold the index's writer lock.
pub const MAX_POI_OPS: usize = 4096;

/// The frame type tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server: negotiate a group session.
    Hello,
    /// Server → client: session accepted, server facts attached.
    HelloAck,
    /// Client → server: one group query (sets + query message).
    Query,
    /// Server → client: the encrypted answer.
    Answer,
    /// Server → client: load shed, retry later.
    Busy,
    /// Server → client: typed failure for one request.
    Error,
    /// Either side: clean connection close.
    Goodbye,
    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,
    /// Client → server: request a full telemetry snapshot.
    Stats,
    /// Server → client: the telemetry snapshot.
    StatsReply,
    /// Client → server: drain the kept trace segments.
    TraceFetch,
    /// Server → client: the drained trace segments.
    TraceReply,
    /// Admin → server: a batch of POI insert/remove mutations.
    PoiUpdate,
    /// Server → admin: mutation batch applied, new index version.
    PoiUpdateAck,
    /// Client → server: a standing group query (payload is a
    /// [`QueryPayload`]); answered once, then watched for invalidation.
    Subscribe,
    /// Server → client: a subscription life-cycle push (granted /
    /// invalidated / ended) with the safe-region token.
    SubscriptionUpdate,
    /// Client → server: drop a standing query.
    Unsubscribe,
}

impl FrameType {
    /// Wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            FrameType::Hello => 0x01,
            FrameType::HelloAck => 0x02,
            FrameType::Query => 0x03,
            FrameType::Answer => 0x04,
            FrameType::Busy => 0x05,
            FrameType::Error => 0x06,
            FrameType::Goodbye => 0x07,
            FrameType::Ping => 0x08,
            FrameType::Pong => 0x09,
            FrameType::Stats => 0x0a,
            FrameType::StatsReply => 0x0b,
            FrameType::TraceFetch => 0x0c,
            FrameType::TraceReply => 0x0d,
            FrameType::PoiUpdate => 0x0e,
            FrameType::PoiUpdateAck => 0x0f,
            FrameType::Subscribe => 0x10,
            FrameType::SubscriptionUpdate => 0x11,
            FrameType::Unsubscribe => 0x12,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Result<Self, ServerError> {
        Ok(match v {
            0x01 => FrameType::Hello,
            0x02 => FrameType::HelloAck,
            0x03 => FrameType::Query,
            0x04 => FrameType::Answer,
            0x05 => FrameType::Busy,
            0x06 => FrameType::Error,
            0x07 => FrameType::Goodbye,
            0x08 => FrameType::Ping,
            0x09 => FrameType::Pong,
            0x0a => FrameType::Stats,
            0x0b => FrameType::StatsReply,
            0x0c => FrameType::TraceFetch,
            0x0d => FrameType::TraceReply,
            0x0e => FrameType::PoiUpdate,
            0x0f => FrameType::PoiUpdateAck,
            0x10 => FrameType::Subscribe,
            0x11 => FrameType::SubscriptionUpdate,
            0x12 => FrameType::Unsubscribe,
            other => return Err(ServerError::UnknownFrameType(other)),
        })
    }
}

/// One decoded frame: its type and raw payload bytes.
#[derive(Debug, Clone)]
pub struct Frame {
    /// The type tag.
    pub frame_type: FrameType,
    /// The raw payload (still to be parsed by the payload structs).
    pub payload: Vec<u8>,
    /// Shape-padding bytes that followed the payload (already read and
    /// discarded). `payload.len() + pad` is what an on-path observer
    /// sees past the fixed header.
    pub pad: usize,
}

fn map_eof(e: std::io::Error) -> ServerError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        ServerError::ConnectionClosed
    } else {
        ServerError::Io(e)
    }
}

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3) of `data`, as carried in the frame header.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = u32::MAX;
    for &b in data {
        c = CRC32_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Writes one frame as a single `write_all`.
pub fn write_frame(
    w: &mut impl Write,
    frame_type: FrameType,
    payload: &[u8],
) -> Result<(), ServerError> {
    write_frame_padded(w, frame_type, payload, 0)
}

/// Writes one frame with `pad` trailing zero bytes, as a single
/// `write_all` — the shaped-response path. The CRC covers the real
/// payload only; the padding is pure filler the reader discards.
pub fn write_frame_padded(
    w: &mut impl Write,
    frame_type: FrameType,
    payload: &[u8],
    pad: usize,
) -> Result<(), ServerError> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + payload.len() + pad);
    buf.extend_from_slice(&MAGIC);
    buf.push(VERSION);
    buf.push(frame_type.to_u8());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(pad as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.resize(buf.len() + payload.len() + pad, 0);
    let payload_at = HEADER_BYTES;
    buf[payload_at..payload_at + payload.len()].copy_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, rejecting payloads larger than `max_payload`.
pub fn read_frame(r: &mut impl Read, max_payload: usize) -> Result<Frame, ServerError> {
    let mut lead = [0u8; 1];
    r.read_exact(&mut lead).map_err(map_eof)?;
    read_frame_with_lead(r, lead[0], max_payload)
}

/// Completes a frame whose first byte was already consumed.
///
/// The server reads the first byte separately (with a short timeout, as
/// its shutdown poll point) and only then commits to a blocking read of
/// the rest — so a read timeout can never strand a half-consumed header.
pub fn read_frame_with_lead(
    r: &mut impl Read,
    lead: u8,
    max_payload: usize,
) -> Result<Frame, ServerError> {
    let mut rest = [0u8; HEADER_BYTES - 1];
    r.read_exact(&mut rest).map_err(map_eof)?;
    let magic = [lead, rest[0], rest[1], rest[2]];
    if magic != MAGIC {
        return Err(ServerError::BadMagic(magic));
    }
    if rest[3] != VERSION {
        return Err(ServerError::BadVersion(rest[3]));
    }
    let frame_type = FrameType::from_u8(rest[4])?;
    let len = u32::from_le_bytes([rest[5], rest[6], rest[7], rest[8]]) as usize;
    let pad = u32::from_le_bytes([rest[9], rest[10], rest[11], rest[12]]) as usize;
    let expected_crc = u32::from_le_bytes([rest[13], rest[14], rest[15], rest[16]]);
    // Payload and padding count against the cap together: the cap
    // bounds what one frame makes this side read, not just parse.
    let total = len.saturating_add(pad);
    if total > max_payload {
        return Err(ServerError::FrameTooLarge {
            len: total,
            max: max_payload,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(map_eof)?;
    let actual_crc = crc32(&payload);
    if actual_crc != expected_crc {
        return Err(ServerError::ChecksumMismatch {
            expected: expected_crc,
            actual: actual_crc,
        });
    }
    // Drain the padding. Its content is discarded by design (all-zero
    // on the wire, but nothing downstream may depend on that).
    let mut remaining = pad;
    let mut sink = [0u8; 4096];
    while remaining > 0 {
        let chunk = remaining.min(sink.len());
        r.read_exact(&mut sink[..chunk]).map_err(map_eof)?;
        remaining -= chunk;
    }
    Ok(Frame {
        frame_type,
        payload,
        pad,
    })
}

// ---- payload primitives -------------------------------------------------

fn take<'a>(
    buf: &'a [u8],
    pos: &mut usize,
    width: usize,
    what: &'static str,
) -> Result<&'a [u8], ServerError> {
    let end = pos.checked_add(width).ok_or(ServerError::Malformed(what))?;
    let slice = buf.get(*pos..end).ok_or(ServerError::Malformed(what))?;
    *pos = end;
    Ok(slice)
}

fn get_u8(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u8, ServerError> {
    Ok(take(buf, pos, 1, what)?[0])
}

fn get_u16(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u16, ServerError> {
    // `take` returned exactly 2 bytes, so the conversion cannot fail.
    let b: [u8; 2] = take(buf, pos, 2, what)?
        .try_into()
        .map_err(|_| ServerError::Malformed(what))?;
    Ok(u16::from_le_bytes(b))
}

fn get_u32(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u32, ServerError> {
    let b: [u8; 4] = take(buf, pos, 4, what)?
        .try_into()
        .map_err(|_| ServerError::Malformed(what))?;
    Ok(u32::from_le_bytes(b))
}

fn get_u64(buf: &[u8], pos: &mut usize, what: &'static str) -> Result<u64, ServerError> {
    let b: [u8; 8] = take(buf, pos, 8, what)?
        .try_into()
        .map_err(|_| ServerError::Malformed(what))?;
    Ok(u64::from_le_bytes(b))
}

fn expect_consumed(buf: &[u8], pos: usize, what: &'static str) -> Result<(), ServerError> {
    if pos != buf.len() {
        return Err(ServerError::Malformed(what));
    }
    Ok(())
}

// ---- payload structs ----------------------------------------------------

/// `Hello`: the public session parameters a decoder needs, keyed by
/// group ID in the server's registry.
///
/// Version 3 added the session *shape* — group size, δ, k, d. The
/// server pins every later query of the session to these numbers: a
/// query whose vectors disagree with its own handshake is a protocol
/// violation, not an honest decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloPayload {
    /// The group's stable identifier.
    pub group_id: u64,
    /// Negotiated Paillier key size in bits.
    pub key_bits: u32,
    /// Protocol variant tag (0 = Plain, 1 = Opt, 2 = Naive) — for
    /// observability; decoding is driven by `omega`/`has_partition`.
    pub variant: u8,
    /// Two-phase outer block count ω; 0 means a plain indicator.
    pub omega: u32,
    /// Whether queries carry a partition block (absent for Naive).
    pub has_partition: bool,
    /// Number of users in the group (= location sets per query).
    pub n_users: u32,
    /// Candidate-set size δ the group committed to.
    pub delta: u32,
    /// Neighbors requested per query.
    pub k: u32,
    /// Per-user dummy-set size d (Plain/Opt); equals δ for Naive.
    pub d: u32,
}

impl HelloPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(34);
        buf.extend_from_slice(&self.group_id.to_le_bytes());
        buf.extend_from_slice(&self.key_bits.to_le_bytes());
        buf.push(self.variant);
        buf.extend_from_slice(&self.omega.to_le_bytes());
        buf.push(self.has_partition as u8);
        buf.extend_from_slice(&self.n_users.to_le_bytes());
        buf.extend_from_slice(&self.delta.to_le_bytes());
        buf.extend_from_slice(&self.k.to_le_bytes());
        buf.extend_from_slice(&self.d.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let group_id = get_u64(buf, &mut pos, "hello.group_id")?;
        let key_bits = get_u32(buf, &mut pos, "hello.key_bits")?;
        let variant = get_u8(buf, &mut pos, "hello.variant")?;
        let omega = get_u32(buf, &mut pos, "hello.omega")?;
        let has_partition = match get_u8(buf, &mut pos, "hello.has_partition")? {
            0 => false,
            1 => true,
            _ => return Err(ServerError::Malformed("hello.has_partition")),
        };
        let n_users = get_u32(buf, &mut pos, "hello.n_users")?;
        let delta = get_u32(buf, &mut pos, "hello.delta")?;
        let k = get_u32(buf, &mut pos, "hello.k")?;
        let d = get_u32(buf, &mut pos, "hello.d")?;
        expect_consumed(buf, pos, "hello trailing bytes")?;
        if key_bits == 0 || key_bits > 1 << 16 {
            return Err(ServerError::Malformed("hello.key_bits out of range"));
        }
        if n_users == 0 || n_users as usize > MAX_LOCATION_SETS {
            return Err(ServerError::Malformed("hello.n_users out of range"));
        }
        Ok(HelloPayload {
            group_id,
            key_bits,
            variant,
            omega,
            has_partition,
            n_users,
            delta,
            k,
            d,
        })
    }
}

/// `HelloAck`: server facts echoed back on session acceptance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HelloAckPayload {
    /// Echo of the accepted group ID.
    pub group_id: u64,
    /// Number of POIs in the LSP's database.
    pub database_size: u64,
    /// Largest frame payload the server will accept.
    pub max_payload: u32,
    /// Worker threads serving queries.
    pub workers: u32,
    /// The server's restart epoch: a fresh value per process start that
    /// survives nothing. A client that sees the epoch change between
    /// handshakes knows the server crashed (or was restarted) and must
    /// re-subscribe its standing queries.
    pub epoch: u64,
    /// Shape mode tag (version 8): 0 = off, 1 = padded. Under `padded`
    /// the client can hold the server to the advertised targets below.
    pub shape_mode: u8,
    /// Constant on-wire size (payload + pad) of every `Answer` frame
    /// under `padded`; 0 when shaping is off.
    pub answer_target: u32,
    /// Constant on-wire size of every control-lane response
    /// (`Busy`/`Error`/`SubscriptionUpdate`) under `padded`; 0 when off.
    pub control_target: u32,
    /// Latency quantum in milliseconds: responses release only on
    /// multiples of this boundary; 0 when shaping is off.
    pub latency_quantum_ms: u32,
}

impl HelloAckPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(45);
        buf.extend_from_slice(&self.group_id.to_le_bytes());
        buf.extend_from_slice(&self.database_size.to_le_bytes());
        buf.extend_from_slice(&self.max_payload.to_le_bytes());
        buf.extend_from_slice(&self.workers.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.push(self.shape_mode);
        buf.extend_from_slice(&self.answer_target.to_le_bytes());
        buf.extend_from_slice(&self.control_target.to_le_bytes());
        buf.extend_from_slice(&self.latency_quantum_ms.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let group_id = get_u64(buf, &mut pos, "hello_ack.group_id")?;
        let database_size = get_u64(buf, &mut pos, "hello_ack.database_size")?;
        let max_payload = get_u32(buf, &mut pos, "hello_ack.max_payload")?;
        let workers = get_u32(buf, &mut pos, "hello_ack.workers")?;
        let epoch = get_u64(buf, &mut pos, "hello_ack.epoch")?;
        let shape_mode = get_u8(buf, &mut pos, "hello_ack.shape_mode")?;
        if shape_mode > 1 {
            return Err(ServerError::Malformed("hello_ack.shape_mode out of range"));
        }
        let answer_target = get_u32(buf, &mut pos, "hello_ack.answer_target")?;
        let control_target = get_u32(buf, &mut pos, "hello_ack.control_target")?;
        let latency_quantum_ms = get_u32(buf, &mut pos, "hello_ack.latency_quantum_ms")?;
        expect_consumed(buf, pos, "hello_ack trailing bytes")?;
        Ok(HelloAckPayload {
            group_id,
            database_size,
            max_payload,
            workers,
            epoch,
            shape_mode,
            answer_target,
            control_target,
            latency_quantum_ms,
        })
    }
}

/// `Query`: one group query — the coordinator's query message plus every
/// user's location set, each as its own length-prefixed `wire` blob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPayload {
    /// The session (group) this query decodes under.
    pub group_id: u64,
    /// Client-chosen request identifier, echoed in the reply.
    pub request_id: u32,
    /// Per-request deadline in milliseconds; 0 means the server default.
    pub deadline_ms: u32,
    /// The query's trace identity (version 5). Always present; the
    /// sampling bit says whether either side records spans for it.
    pub trace: TraceContext,
    /// `n` encoded [`ppgnn_core::messages::LocationSetMessage`]s.
    pub location_sets: Vec<Vec<u8>>,
    /// The encoded [`ppgnn_core::messages::QueryMessage`].
    pub query: Vec<u8>,
}

impl QueryPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let sets: usize = self.location_sets.iter().map(|s| 4 + s.len()).sum();
        let mut buf = Vec::with_capacity(20 + TRACE_CONTEXT_BYTES + sets + 4 + self.query.len());
        buf.extend_from_slice(&self.group_id.to_le_bytes());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.deadline_ms.to_le_bytes());
        buf.extend_from_slice(&self.trace.to_wire());
        buf.extend_from_slice(&(self.location_sets.len() as u32).to_le_bytes());
        for set in &self.location_sets {
            buf.extend_from_slice(&(set.len() as u32).to_le_bytes());
            buf.extend_from_slice(set);
        }
        buf.extend_from_slice(&(self.query.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.query);
        buf
    }

    /// Parses the payload. Inner blobs stay raw — they are decoded
    /// against the session's `WireContext` by the connection handler.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let group_id = get_u64(buf, &mut pos, "query.group_id")?;
        let request_id = get_u32(buf, &mut pos, "query.request_id")?;
        let deadline_ms = get_u32(buf, &mut pos, "query.deadline_ms")?;
        let trace =
            TraceContext::from_wire(take(buf, &mut pos, TRACE_CONTEXT_BYTES, "query.trace")?)
                .map_err(|e| ServerError::Malformed(e.as_str()))?;
        let set_count = get_u32(buf, &mut pos, "query.set_count")? as usize;
        if set_count > MAX_LOCATION_SETS {
            return Err(ServerError::Malformed("query.set_count out of range"));
        }
        let mut location_sets = Vec::with_capacity(set_count);
        for _ in 0..set_count {
            let len = get_u32(buf, &mut pos, "query.set_len")? as usize;
            location_sets.push(take(buf, &mut pos, len, "query.set_bytes")?.to_vec());
        }
        let qlen = get_u32(buf, &mut pos, "query.query_len")? as usize;
        let query = take(buf, &mut pos, qlen, "query.query_bytes")?.to_vec();
        expect_consumed(buf, pos, "query trailing bytes")?;
        Ok(QueryPayload {
            group_id,
            request_id,
            deadline_ms,
            trace,
            location_sets,
            query,
        })
    }
}

/// `Answer`: the LSP's encrypted answer to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerPayload {
    /// Echo of the request identifier.
    pub request_id: u32,
    /// Whether the answer is doubly encrypted (PPGNN-OPT).
    pub two_phase: bool,
    /// Whether this answer was replayed from the session's answer cache
    /// (an idempotent retry of an already-served request).
    pub replayed: bool,
    /// The encoded [`ppgnn_core::messages::AnswerMessage`].
    pub answer: Vec<u8>,
}

impl AnswerPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(6 + self.answer.len());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.push(self.two_phase as u8);
        buf.push(self.replayed as u8);
        buf.extend_from_slice(&self.answer);
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let request_id = get_u32(buf, &mut pos, "answer.request_id")?;
        let two_phase = match get_u8(buf, &mut pos, "answer.two_phase")? {
            0 => false,
            1 => true,
            _ => return Err(ServerError::Malformed("answer.two_phase")),
        };
        let replayed = match get_u8(buf, &mut pos, "answer.replayed")? {
            0 => false,
            1 => true,
            _ => return Err(ServerError::Malformed("answer.replayed")),
        };
        let answer = buf[pos..].to_vec();
        Ok(AnswerPayload {
            request_id,
            two_phase,
            replayed,
            answer,
        })
    }
}

/// `Busy`: backpressure shed for one request (or a refused connection,
/// with `request_id == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusyPayload {
    /// Echo of the shed request identifier (0 when refusing a connect).
    pub request_id: u32,
    /// Suggested client backoff.
    pub retry_after_ms: u32,
}

impl BusyPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8);
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.retry_after_ms.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let request_id = get_u32(buf, &mut pos, "busy.request_id")?;
        let retry_after_ms = get_u32(buf, &mut pos, "busy.retry_after_ms")?;
        expect_consumed(buf, pos, "busy trailing bytes")?;
        Ok(BusyPayload {
            request_id,
            retry_after_ms,
        })
    }
}

/// `Error`: a typed failure for one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPayload {
    /// Echo of the failed request identifier (0 for session-level errors).
    pub request_id: u32,
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail (truncated to 64 KiB on the wire).
    pub message: String,
}

impl ErrorPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let msg = self.message.as_bytes();
        let len = msg.len().min(u16::MAX as usize);
        let mut buf = Vec::with_capacity(8 + len);
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.code.to_u16().to_le_bytes());
        buf.extend_from_slice(&(len as u16).to_le_bytes());
        buf.extend_from_slice(&msg[..len]);
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let request_id = get_u32(buf, &mut pos, "error.request_id")?;
        let code = ErrorCode::from_u16(get_u16(buf, &mut pos, "error.code")?)
            .ok_or(ServerError::Malformed("error.code"))?;
        let len = get_u16(buf, &mut pos, "error.msg_len")? as usize;
        let bytes = take(buf, &mut pos, len, "error.message")?;
        let message = String::from_utf8_lossy(bytes).into_owned();
        expect_consumed(buf, pos, "error trailing bytes")?;
        Ok(ErrorPayload {
            request_id,
            code,
            message,
        })
    }
}

/// `Pong`: the health probe reply — a liveness check that carries the
/// server's compact [`HealthSnapshot`] (load gauges plus the
/// admission-control counters), so clients and operators can see queue
/// pressure and worker health without a side channel.
///
/// The payload is the snapshot's fixed-width encoding; `Deref` keeps
/// `pong.live_workers`-style field access working.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PongPayload {
    /// The server's health snapshot.
    pub health: HealthSnapshot,
    /// The server's restart epoch (see [`HelloAckPayload::epoch`]) —
    /// carried on every pong so a long-lived connection notices a
    /// restart without re-handshaking.
    pub epoch: u64,
}

impl std::ops::Deref for PongPayload {
    type Target = HealthSnapshot;

    fn deref(&self) -> &HealthSnapshot {
        &self.health
    }
}

impl std::ops::DerefMut for PongPayload {
    fn deref_mut(&mut self) -> &mut HealthSnapshot {
        &mut self.health
    }
}

impl PongPayload {
    /// Serializes the payload: the snapshot's fixed-width encoding
    /// followed by the epoch.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = self.health.encode();
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        if buf.len() < 8 {
            return Err(ServerError::Malformed("pong health snapshot"));
        }
        let (snap, tail) = buf.split_at(buf.len() - 8);
        let mut epoch_bytes = [0u8; 8];
        epoch_bytes.copy_from_slice(tail);
        HealthSnapshot::decode(snap)
            .map(|health| PongPayload {
                health,
                epoch: u64::from_le_bytes(epoch_bytes),
            })
            .map_err(|_| ServerError::Malformed("pong health snapshot"))
    }
}

/// `StatsReply`: the full [`TelemetrySnapshot`] in its compact binary
/// encoding. The `Stats` request itself has an empty payload.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReplyPayload {
    /// The server's full registry snapshot.
    pub snapshot: TelemetrySnapshot,
}

impl StatsReplyPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        self.snapshot.to_bytes()
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        TelemetrySnapshot::from_bytes(buf)
            .map(|snapshot| StatsReplyPayload { snapshot })
            .map_err(|_| ServerError::Malformed("stats snapshot"))
    }
}

/// `TraceReply`: the kept trace segments, drained from the server's
/// ring buffer. The `TraceFetch` request itself has an empty payload;
/// like `Stats`, the exchange lives on the sessionless liveness lane.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReplyPayload {
    /// Drained segments, oldest first.
    pub segments: Vec<TraceSegment>,
}

impl TraceReplyPayload {
    /// Serializes the payload, keeping it under `max_bytes` (segments
    /// that would overflow are left out).
    pub fn encode(&self, max_bytes: usize) -> Vec<u8> {
        trace::encode_segments(&self.segments, max_bytes)
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        trace::decode_segments(buf)
            .map(|segments| TraceReplyPayload { segments })
            .map_err(|_| ServerError::Malformed("trace segments"))
    }
}

/// `PoiUpdate`: the admin lane's mutation batch against the live POI
/// index. Only a session presenting the server's admin token may send
/// it; everyone else gets a typed violation (the index is the LSP's
/// asset — a client that could move POIs could trivially defeat the
/// sanitizer by planting answers).
#[derive(Debug, Clone, PartialEq)]
pub struct PoiUpdatePayload {
    /// Shared-secret admin token (compared in the clear; the threat
    /// model here is hostile *clients*, not a network MITM).
    pub admin_token: u64,
    /// Client-chosen request identifier, echoed in the ack.
    pub request_id: u32,
    /// The mutations, applied in order as one atomic batch.
    pub ops: Vec<PoiOp>,
}

impl PoiUpdatePayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.ops.len() * 21);
        buf.extend_from_slice(&self.admin_token.to_le_bytes());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match *op {
                PoiOp::Insert(poi) => {
                    buf.push(1);
                    buf.extend_from_slice(&poi.id.to_le_bytes());
                    buf.extend_from_slice(&poi.location.x.to_bits().to_le_bytes());
                    buf.extend_from_slice(&poi.location.y.to_bits().to_le_bytes());
                }
                PoiOp::Remove(id) => {
                    buf.push(2);
                    buf.extend_from_slice(&id.to_le_bytes());
                }
            }
        }
        buf
    }

    /// Parses the payload, rejecting oversized batches, unknown op tags
    /// and non-finite coordinates.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let admin_token = get_u64(buf, &mut pos, "poi_update.admin_token")?;
        let request_id = get_u32(buf, &mut pos, "poi_update.request_id")?;
        let count = get_u32(buf, &mut pos, "poi_update.op_count")? as usize;
        if count > MAX_POI_OPS {
            return Err(ServerError::Malformed("poi_update.op_count out of range"));
        }
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            match get_u8(buf, &mut pos, "poi_update.op_tag")? {
                1 => {
                    let id = get_u32(buf, &mut pos, "poi_update.insert_id")?;
                    let x = f64::from_bits(get_u64(buf, &mut pos, "poi_update.insert_x")?);
                    let y = f64::from_bits(get_u64(buf, &mut pos, "poi_update.insert_y")?);
                    if !x.is_finite() || !y.is_finite() {
                        return Err(ServerError::Malformed("poi_update.insert not finite"));
                    }
                    ops.push(PoiOp::Insert(Poi::new(id, Point::new(x, y))));
                }
                2 => {
                    let id = get_u32(buf, &mut pos, "poi_update.remove_id")?;
                    ops.push(PoiOp::Remove(id));
                }
                _ => return Err(ServerError::Malformed("poi_update.op_tag")),
            }
        }
        expect_consumed(buf, pos, "poi_update trailing bytes")?;
        Ok(PoiUpdatePayload {
            admin_token,
            request_id,
            ops,
        })
    }
}

/// `PoiUpdateAck`: the mutation batch landed; the new index version is
/// what freshly pinned snapshots answer from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoiUpdateAckPayload {
    /// Echo of the request identifier.
    pub request_id: u32,
    /// Index version published by this batch.
    pub version: u64,
    /// Operations that actually changed the live set.
    pub applied: u32,
    /// Standing subscriptions this batch invalidated.
    pub invalidated: u32,
}

impl PoiUpdateAckPayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(20);
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&self.applied.to_le_bytes());
        buf.extend_from_slice(&self.invalidated.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let request_id = get_u32(buf, &mut pos, "poi_update_ack.request_id")?;
        let version = get_u64(buf, &mut pos, "poi_update_ack.version")?;
        let applied = get_u32(buf, &mut pos, "poi_update_ack.applied")?;
        let invalidated = get_u32(buf, &mut pos, "poi_update_ack.invalidated")?;
        expect_consumed(buf, pos, "poi_update_ack trailing bytes")?;
        Ok(PoiUpdateAckPayload {
            request_id,
            version,
            applied,
            invalidated,
        })
    }
}

/// Life-cycle tag of a [`SubscriptionUpdatePayload`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionKind {
    /// The subscription is registered; the safe-region token rides
    /// along with the `Answer` frame that precedes this push.
    Granted,
    /// A POI mutation may have changed the group's answer — re-query.
    Invalidated,
    /// The server dropped the subscription (unsubscribe, disconnect,
    /// or registry eviction).
    Ended,
}

impl SubscriptionKind {
    /// Wire tag.
    pub fn to_u8(self) -> u8 {
        match self {
            SubscriptionKind::Granted => 1,
            SubscriptionKind::Invalidated => 2,
            SubscriptionKind::Ended => 3,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Result<Self, ServerError> {
        Ok(match v {
            1 => SubscriptionKind::Granted,
            2 => SubscriptionKind::Invalidated,
            3 => SubscriptionKind::Ended,
            _ => return Err(ServerError::Malformed("subscription_update.kind")),
        })
    }
}

/// `SubscriptionUpdate`: a server push on a standing query. `Granted`
/// carries the safe-region token (margin + drift scale) the client
/// turns into a per-user drift radius; `Invalidated` tells the group
/// its cached answer may be stale as of `version`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubscriptionUpdatePayload {
    /// Echo of the subscribing request identifier.
    pub request_id: u32,
    /// Which life-cycle edge this push is.
    pub kind: SubscriptionKind,
    /// Index version this push was computed against.
    pub version: u64,
    /// Safe-region margin M: the aggregate-cost gap between the last
    /// *protected* answer and the runner-up sentinel (a subscription
    /// for `k` wire answers protects the top-`k−1`; the k-th is the
    /// sentinel). On a grant the client recomputes the true M from its
    /// own decrypted answers — zero extra disclosure — and the
    /// protected set provably cannot change while every user stays
    /// within `M / (4 · drift_scale)` of their subscribed location.
    pub margin: f64,
    /// Aggregate scale: `n` for Sum (every user's drift adds up), 1
    /// for Max/Min.
    pub drift_scale: u32,
}

impl SubscriptionUpdatePayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(25);
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf.push(self.kind.to_u8());
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.extend_from_slice(&self.margin.to_bits().to_le_bytes());
        buf.extend_from_slice(&self.drift_scale.to_le_bytes());
        buf
    }

    /// Parses the payload. The margin may be infinite (fewer than k+1
    /// POIs: the answer can never change) but not NaN.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let request_id = get_u32(buf, &mut pos, "subscription_update.request_id")?;
        let kind = SubscriptionKind::from_u8(get_u8(buf, &mut pos, "subscription_update.kind")?)?;
        let version = get_u64(buf, &mut pos, "subscription_update.version")?;
        let margin = f64::from_bits(get_u64(buf, &mut pos, "subscription_update.margin")?);
        if margin.is_nan() || margin < 0.0 {
            return Err(ServerError::Malformed("subscription_update.margin"));
        }
        let drift_scale = get_u32(buf, &mut pos, "subscription_update.drift_scale")?;
        expect_consumed(buf, pos, "subscription_update trailing bytes")?;
        Ok(SubscriptionUpdatePayload {
            request_id,
            kind,
            version,
            margin,
            drift_scale,
        })
    }
}

/// `Unsubscribe`: drop the group's standing query. The server confirms
/// with a `SubscriptionUpdate` of kind `Ended`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsubscribePayload {
    /// The subscribed group.
    pub group_id: u64,
    /// The request identifier the subscription was granted under.
    pub request_id: u32,
}

impl UnsubscribePayload {
    /// Serializes the payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(12);
        buf.extend_from_slice(&self.group_id.to_le_bytes());
        buf.extend_from_slice(&self.request_id.to_le_bytes());
        buf
    }

    /// Parses the payload.
    pub fn decode(buf: &[u8]) -> Result<Self, ServerError> {
        let mut pos = 0;
        let group_id = get_u64(buf, &mut pos, "unsubscribe.group_id")?;
        let request_id = get_u32(buf, &mut pos, "unsubscribe.request_id")?;
        expect_consumed(buf, pos, "unsubscribe trailing bytes")?;
        Ok(UnsubscribePayload {
            group_id,
            request_id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let payload = vec![7u8; 100];
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, &payload).unwrap();
        assert_eq!(buf.len(), HEADER_BYTES + 100);
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(frame.frame_type, FrameType::Query);
        assert_eq!(frame.payload, payload);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Ping, &[]).unwrap();
        buf[0] = b'X';
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(ServerError::BadMagic(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Ping, &[]).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(ServerError::BadVersion(99))
        ));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Ping, &[]).unwrap();
        buf[5] = 0x7f;
        assert!(matches!(
            read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
            Err(ServerError::UnknownFrameType(0x7f))
        ));
    }

    #[test]
    fn oversize_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, &[]).unwrap();
        buf[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(ServerError::FrameTooLarge { .. })
        ));
        // A hostile pad-length claim is policed by the same cap: the
        // padding is read bytes too, even though it is discarded.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, &[]).unwrap();
        buf[10..14].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024),
            Err(ServerError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn padded_frame_round_trip() {
        let payload = vec![7u8; 100];
        let mut buf = Vec::new();
        write_frame_padded(&mut buf, FrameType::Answer, &payload, 412).unwrap();
        // The wire carries exactly header + payload + pad — what an
        // observer sees is total length, independent of payload split.
        assert_eq!(buf.len(), HEADER_BYTES + 100 + 412);
        let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(frame.frame_type, FrameType::Answer);
        assert_eq!(frame.payload, payload);
        assert_eq!(frame.pad, 412);
    }

    #[test]
    fn padded_frame_truncated_in_pad_is_connection_closed() {
        let mut buf = Vec::new();
        write_frame_padded(&mut buf, FrameType::Answer, &[1, 2, 3], 64).unwrap();
        for cut in 0..buf.len() {
            let err = read_frame(&mut &buf[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, ServerError::ConnectionClosed),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn zero_pad_is_the_unpadded_wire_image() {
        let payload = vec![9u8; 33];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        write_frame(&mut a, FrameType::Answer, &payload).unwrap();
        write_frame_padded(&mut b, FrameType::Answer, &payload, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn truncated_frame_is_connection_closed() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Query, &[1, 2, 3, 4]).unwrap();
        for cut in 0..buf.len() {
            let err = read_frame(&mut &buf[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, ServerError::ConnectionClosed),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn hello_round_trip() {
        let hello = HelloPayload {
            group_id: 42,
            key_bits: 128,
            variant: 1,
            omega: 7,
            has_partition: true,
            n_users: 5,
            delta: 12,
            k: 2,
            d: 4,
        };
        assert_eq!(HelloPayload::decode(&hello.encode()).unwrap(), hello);
    }

    #[test]
    fn hello_zero_or_huge_group_size_rejected() {
        let mut hello = HelloPayload {
            group_id: 42,
            key_bits: 128,
            variant: 0,
            omega: 0,
            has_partition: true,
            n_users: 0,
            delta: 12,
            k: 2,
            d: 4,
        };
        assert!(HelloPayload::decode(&hello.encode()).is_err());
        hello.n_users = MAX_LOCATION_SETS as u32 + 1;
        assert!(HelloPayload::decode(&hello.encode()).is_err());
        hello.n_users = MAX_LOCATION_SETS as u32;
        assert!(HelloPayload::decode(&hello.encode()).is_ok());
    }

    #[test]
    fn hello_ack_round_trip() {
        let ack = HelloAckPayload {
            group_id: 42,
            database_size: 10_000,
            max_payload: 1 << 20,
            workers: 8,
            epoch: 0xdead_beef_cafe_f00d,
            shape_mode: 1,
            answer_target: 4096,
            control_target: 576,
            latency_quantum_ms: 200,
        };
        let wire = ack.encode();
        assert_eq!(HelloAckPayload::decode(&wire).unwrap(), ack);
        for cut in 0..wire.len() {
            assert!(
                HelloAckPayload::decode(&wire[..cut]).is_err(),
                "hello_ack cut {cut}"
            );
        }
        // Unknown shape-mode tags are a typed rejection, not a guess.
        let mut bad = wire.clone();
        bad[32] = 2;
        assert!(HelloAckPayload::decode(&bad).is_err());
    }

    #[test]
    fn query_round_trip() {
        let q = QueryPayload {
            group_id: 3,
            request_id: 9,
            deadline_ms: 2500,
            trace: TraceContext::new(0x1234_5678_9abc, 0xfeed, true),
            location_sets: vec![vec![1, 2, 3], vec![], vec![5; 40]],
            query: vec![0xab; 17],
        };
        let back = QueryPayload::decode(&q.encode()).unwrap();
        assert_eq!(back, q);
        assert!(back.trace.sampled());
        assert_eq!(back.trace.trace_id(), 0x1234_5678_9abc);
    }

    #[test]
    fn query_with_corrupt_trace_context_rejected() {
        let q = QueryPayload {
            group_id: 3,
            request_id: 9,
            deadline_ms: 0,
            trace: TraceContext::new(7, 11, false),
            location_sets: vec![],
            query: vec![],
        };
        let mut wire = q.encode();
        // Zero out the trace id (bytes 16..24): typed error, no panic.
        wire[16..24].copy_from_slice(&[0u8; 8]);
        assert!(matches!(
            QueryPayload::decode(&wire),
            Err(ServerError::Malformed("zero trace id"))
        ));
        // Zero out the parent span id (bytes 24..32).
        let mut wire2 = q.encode();
        wire2[24..32].copy_from_slice(&[0u8; 8]);
        assert!(matches!(
            QueryPayload::decode(&wire2),
            Err(ServerError::Malformed("zero parent span id"))
        ));
    }

    #[test]
    fn corrupted_payload_byte_fails_checksum() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameType::Answer, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        for i in HEADER_BYTES..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(
                    read_frame(&mut bad.as_slice(), DEFAULT_MAX_PAYLOAD),
                    Err(ServerError::ChecksumMismatch { .. })
                ),
                "flip at {i} not caught"
            );
        }
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn pong_round_trip() {
        let p = PongPayload {
            health: HealthSnapshot {
                queue_depth: 3,
                inflight: 5,
                live_workers: 4,
                worker_panics: 1,
                uptime_ms: 123_456,
                queries_ok: 42,
                sessions: 17,
                sessions_evicted: 6,
                sessions_rejected: 2,
                violations: 9,
                rate_limited: 31,
                strike_disconnects: 7,
                slow_reaped: 3,
                frame_garbage: 11,
                slo_latency_fast_burn_pm: 1500,
                slo_latency_slow_burn_pm: 800,
                slo_error_fast_burn_pm: 0,
                slo_error_slow_burn_pm: 12,
            },
            epoch: 0x0123_4567_89ab_cdef,
        };
        let wire = p.encode();
        assert_eq!(PongPayload::decode(&wire).unwrap(), p);
        // Deref keeps the old field access working.
        assert_eq!(p.live_workers, 4);
        for cut in 0..wire.len() {
            assert!(PongPayload::decode(&wire[..cut]).is_err(), "pong cut {cut}");
        }
    }

    #[test]
    fn stats_reply_round_trip() {
        let reg = ppgnn_telemetry::MetricsRegistry::new();
        reg.record_us(ppgnn_telemetry::Stage::Validate, 17);
        let mut snapshot = reg.snapshot();
        snapshot.push_counter("queries-ok", 3);
        let p = StatsReplyPayload { snapshot };
        let wire = p.encode();
        let back = StatsReplyPayload::decode(&wire).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.snapshot.stage_count("validate"), 1);
        assert!(StatsReplyPayload::decode(&wire[..wire.len() - 2]).is_err());
    }

    #[test]
    fn stale_version_frames_rejected() {
        // The trace-context query header is a version-5 wire change (as
        // Stats was for v4, the restart epoch for v7, and the pad-length
        // header field for v8); a stale peer must get a typed rejection,
        // never a silently misparsed payload.
        for stale in [3u8, 4, 5, 6, 7] {
            let mut buf = Vec::new();
            write_frame(&mut buf, FrameType::Ping, &[]).unwrap();
            buf[4] = stale;
            assert!(matches!(
                read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD),
                Err(ServerError::BadVersion(v)) if v == stale
            ));
        }
    }

    #[test]
    fn trace_reply_round_trip() {
        // Segments produced by a real tracer survive the payload codec.
        let tracer = ppgnn_telemetry::trace::Tracer::new();
        tracer.configure(&ppgnn_telemetry::trace::TracerConfig {
            enabled: true,
            slow_us: 0,
            keep_permille: 1000,
            capacity: 8,
            slow_log: false,
            max_spans: 16,
        });
        let (ctx, client) = tracer.start();
        let server = tracer.resume(&ctx).unwrap();
        server.finish();
        if let Some(h) = client {
            h.finish();
        }
        let p = TraceReplyPayload {
            segments: tracer.segments(),
        };
        let wire = p.encode(DEFAULT_MAX_PAYLOAD);
        let back = TraceReplyPayload::decode(&wire).unwrap();
        assert_eq!(back, p);
        assert!(TraceReplyPayload::decode(&wire[..wire.len() - 1]).is_err());
        assert!(TraceReplyPayload::decode(&[0xff; 8]).is_err());
        // The empty reply is valid too.
        let empty = TraceReplyPayload::default();
        assert_eq!(
            TraceReplyPayload::decode(&empty.encode(1024)).unwrap(),
            empty
        );
    }

    #[test]
    fn answer_busy_error_round_trips() {
        let a = AnswerPayload {
            request_id: 1,
            two_phase: true,
            replayed: true,
            answer: vec![9; 96],
        };
        assert_eq!(AnswerPayload::decode(&a.encode()).unwrap(), a);
        let b = BusyPayload {
            request_id: 2,
            retry_after_ms: 50,
        };
        assert_eq!(BusyPayload::decode(&b.encode()).unwrap(), b);
        let e = ErrorPayload {
            request_id: 3,
            code: ErrorCode::DeadlineExceeded,
            message: "too slow".into(),
        };
        assert_eq!(ErrorPayload::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn payload_decoders_reject_all_truncations() {
        let hello = HelloPayload {
            group_id: 42,
            key_bits: 128,
            variant: 1,
            omega: 7,
            has_partition: true,
            n_users: 5,
            delta: 12,
            k: 2,
            d: 4,
        }
        .encode();
        let q = QueryPayload {
            group_id: 1,
            request_id: 9,
            deadline_ms: 0,
            trace: TraceContext::new(5, 6, false),
            location_sets: vec![vec![1, 2, 3]],
            query: vec![4; 8],
        }
        .encode();
        for cut in 0..hello.len() {
            assert!(
                HelloPayload::decode(&hello[..cut]).is_err(),
                "hello cut {cut}"
            );
        }
        for cut in 0..q.len() {
            assert!(QueryPayload::decode(&q[..cut]).is_err(), "query cut {cut}");
        }
    }

    #[test]
    fn oversized_set_count_rejected() {
        let mut q = QueryPayload {
            group_id: 1,
            request_id: 1,
            deadline_ms: 0,
            trace: TraceContext::new(5, 6, false),
            location_sets: vec![],
            query: vec![],
        }
        .encode();
        // set_count sits after group_id (8) + request_id (4) + deadline
        // (4) + trace context (16).
        q[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            QueryPayload::decode(&q),
            Err(ServerError::Malformed("query.set_count out of range"))
        ));
    }

    #[test]
    fn poi_update_round_trip() {
        let p = PoiUpdatePayload {
            admin_token: 0xdead_beef_cafe_f00d,
            request_id: 77,
            ops: vec![
                PoiOp::Insert(Poi::new(12, Point::new(0.25, 0.75))),
                PoiOp::Remove(9),
                PoiOp::Insert(Poi::new(13, Point::new(0.0, 1.0))),
            ],
        };
        let wire = p.encode();
        assert_eq!(PoiUpdatePayload::decode(&wire).unwrap(), p);
        for cut in 0..wire.len() {
            assert!(
                PoiUpdatePayload::decode(&wire[..cut]).is_err(),
                "poi_update cut {cut}"
            );
        }
        // The empty batch is legal on the wire (server acks it with a
        // version bump but no changes).
        let empty = PoiUpdatePayload {
            admin_token: 1,
            request_id: 0,
            ops: vec![],
        };
        assert_eq!(PoiUpdatePayload::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn poi_update_rejects_hostile_encodings() {
        let p = PoiUpdatePayload {
            admin_token: 5,
            request_id: 1,
            ops: vec![PoiOp::Insert(Poi::new(1, Point::new(0.5, 0.5)))],
        };
        // Oversized op count claims more than MAX_POI_OPS.
        let mut wire = p.encode();
        wire[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            PoiUpdatePayload::decode(&wire),
            Err(ServerError::Malformed("poi_update.op_count out of range"))
        ));
        // Unknown op tag.
        let mut wire = p.encode();
        wire[16] = 3;
        assert!(matches!(
            PoiUpdatePayload::decode(&wire),
            Err(ServerError::Malformed("poi_update.op_tag"))
        ));
        // Non-finite coordinate (NaN x).
        let mut wire = p.encode();
        wire[21..29].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            PoiUpdatePayload::decode(&wire),
            Err(ServerError::Malformed("poi_update.insert not finite"))
        ));
        // Infinite y.
        let mut wire = p.encode();
        wire[29..37].copy_from_slice(&f64::INFINITY.to_bits().to_le_bytes());
        assert!(PoiUpdatePayload::decode(&wire).is_err());
        // Trailing garbage.
        let mut wire = p.encode();
        wire.push(0);
        assert!(matches!(
            PoiUpdatePayload::decode(&wire),
            Err(ServerError::Malformed("poi_update trailing bytes"))
        ));
    }

    #[test]
    fn poi_update_ack_round_trip() {
        let a = PoiUpdateAckPayload {
            request_id: 77,
            version: 12,
            applied: 3,
            invalidated: 2,
        };
        let wire = a.encode();
        assert_eq!(PoiUpdateAckPayload::decode(&wire).unwrap(), a);
        for cut in 0..wire.len() {
            assert!(PoiUpdateAckPayload::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn subscription_update_round_trip() {
        for kind in [
            SubscriptionKind::Granted,
            SubscriptionKind::Invalidated,
            SubscriptionKind::Ended,
        ] {
            let s = SubscriptionUpdatePayload {
                request_id: 4,
                kind,
                version: 9,
                margin: 0.03125,
                drift_scale: 3,
            };
            let wire = s.encode();
            assert_eq!(SubscriptionUpdatePayload::decode(&wire).unwrap(), s);
            for cut in 0..wire.len() {
                assert!(SubscriptionUpdatePayload::decode(&wire[..cut]).is_err());
            }
        }
        // Infinite margin is legal (fewer than k+1 POIs)...
        let inf = SubscriptionUpdatePayload {
            request_id: 1,
            kind: SubscriptionKind::Granted,
            version: 1,
            margin: f64::INFINITY,
            drift_scale: 1,
        };
        assert_eq!(
            SubscriptionUpdatePayload::decode(&inf.encode()).unwrap(),
            inf
        );
        // ...NaN and negative margins are not.
        let mut wire = inf.encode();
        wire[13..21].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(SubscriptionUpdatePayload::decode(&wire).is_err());
        let mut wire = inf.encode();
        wire[13..21].copy_from_slice(&(-1.0f64).to_bits().to_le_bytes());
        assert!(SubscriptionUpdatePayload::decode(&wire).is_err());
        // Unknown kind tag.
        let mut wire = inf.encode();
        wire[4] = 9;
        assert!(matches!(
            SubscriptionUpdatePayload::decode(&wire),
            Err(ServerError::Malformed("subscription_update.kind"))
        ));
    }

    #[test]
    fn unsubscribe_round_trip() {
        let u = UnsubscribePayload {
            group_id: 88,
            request_id: 5,
        };
        let wire = u.encode();
        assert_eq!(UnsubscribePayload::decode(&wire).unwrap(), u);
        for cut in 0..wire.len() {
            assert!(UnsubscribePayload::decode(&wire[..cut]).is_err());
        }
    }

    #[test]
    fn v6_frame_tags_round_trip() {
        for ft in [
            FrameType::PoiUpdate,
            FrameType::PoiUpdateAck,
            FrameType::Subscribe,
            FrameType::SubscriptionUpdate,
            FrameType::Unsubscribe,
        ] {
            assert_eq!(FrameType::from_u8(ft.to_u8()).unwrap(), ft);
            let mut buf = Vec::new();
            write_frame(&mut buf, ft, &[1, 2, 3]).unwrap();
            let frame = read_frame(&mut buf.as_slice(), DEFAULT_MAX_PAYLOAD).unwrap();
            assert_eq!(frame.frame_type, ft);
        }
    }
}
