//! `observer` — the passive network adversary.
//!
//! Where [`crate::mallory`] attacks the server *actively*, this module
//! never sends a malformed byte: it plays an on-path eavesdropper who
//! only records what any network element between a group and the LSP
//! can record — the **size** of each response frame and the **latency**
//! between a request hitting the wire and its response arriving. The
//! question it asks is the one DESIGN.md §16 poses: *can those two
//! observables alone tell workloads apart?*
//!
//! The harness runs matched workload pairs that differ in exactly one
//! protocol parameter an adversary should not learn:
//!
//! * `delta` — candidate-set size δ′ 6 vs 12 (more LSP work per query);
//! * `k` — answers per query 2 vs 8 (more ciphertext per answer);
//! * `sanitize` — answer sanitation off vs on (extra per-candidate CPU).
//!
//! Each pair runs twice, against a [`ShapeMode::Off`] server and a
//! [`ShapeMode::Padded`] one, and every (scenario, mode, channel) cell
//! gets a two-sample Kolmogorov–Smirnov statistic whose p-value comes
//! from a seeded permutation test — exact, assumption-free, and
//! reproducible for a fixed seed and sample set.
//!
//! The CI gate then demands **both directions**: the off-mode server
//! must be distinguishable (the harness has real statistical power — a
//! null result against `padded` would otherwise be vacuous), and the
//! padded server must not be (the defense holds against the very test
//! that just proved its own sharpness).
//!
//! Latencies are quantized to [`ObserverConfig::latency_bin`] buckets
//! *before* the test, in both modes. This is what makes the padded
//! verdict deterministic instead of a 5%-per-cell coin flip: a padded
//! server releases every response on the same quantum boundary, so all
//! its samples collapse into one bucket and the KS statistic is exactly
//! zero — scheduling noise cannot fake a leak. The flip side is honest
//! too: an off-mode latency difference smaller than one bucket goes
//! uncounted, and the off-mode gate then rests on the size channel
//! (which uses raw byte counts and needs no binning).

use std::sync::Arc;
use std::time::Duration;

use ppgnn_core::{Lsp, PpgnnConfig};
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_telemetry::{json, percentile};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::client::GroupClient;
use crate::error::ServerError;
use crate::frame::FrameType;
use crate::server::{serve_world, ServerConfig};
use crate::shape::{ShapeMode, ShapePolicy};

/// Off-mode gate: a channel must separate at this level for the
/// harness to claim the unshaped server leaks.
pub const ALPHA_DISTINGUISH: f64 = 0.01;
/// Padded-mode gate: any channel separating at this (looser) level
/// fails the defense.
pub const ALPHA_LEAK: f64 = 0.05;

/// Tunables for one observer run.
#[derive(Debug, Clone, Copy)]
pub struct ObserverConfig {
    /// Seeds the POI world, every client keypair, the query positions,
    /// and the permutation test — one seed reproduces the whole run.
    pub seed: u64,
    /// Recorded queries per workload arm (after warmup).
    pub samples_per_arm: usize,
    /// Unrecorded queries per arm before sampling starts (first-query
    /// lazy-initialization cost would otherwise skew arm A).
    pub warmup_per_arm: usize,
    /// Permutation-test resamples per channel.
    pub permutations: usize,
    /// The padded server's latency quantum.
    pub quantum: Duration,
    /// Latency quantization applied before the KS test (see module
    /// docs); must be well below `quantum` and above loopback jitter.
    pub latency_bin: Duration,
    /// POIs in the seeded world.
    pub pois: usize,
}

impl Default for ObserverConfig {
    fn default() -> Self {
        ObserverConfig {
            seed: 7,
            samples_per_arm: 30,
            warmup_per_arm: 2,
            permutations: 1000,
            quantum: Duration::from_millis(200),
            latency_bin: Duration::from_millis(25),
            pois: 200,
        }
    }
}

/// One channel's verdict: the observed KS statistic over the gate's
/// (binned for latency, raw for size) samples and its permutation
/// p-value, plus the per-arm means for the human reading the report.
#[derive(Debug, Clone, Copy)]
pub struct ChannelVerdict {
    /// KS statistic of the gate samples.
    pub ks_stat: f64,
    /// Permutation p-value of `ks_stat` (seeded; ≥ 1/(R+1)).
    pub p_value: f64,
    /// Arm means of the *raw* samples (bytes, or microseconds).
    pub mean_a: f64,
    /// See [`ChannelVerdict::mean_a`].
    pub mean_b: f64,
}

impl ChannelVerdict {
    /// Whether this channel separates the arms at `alpha`.
    pub fn distinguishable_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// One (scenario, mode) cell of the run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario name (`delta`, `k`, `sanitize`).
    pub scenario: &'static str,
    /// Which server shape the pair ran against.
    pub mode: ShapeMode,
    /// Response-size channel (raw total on-wire bytes).
    pub size: ChannelVerdict,
    /// Response-latency channel (bucketed; see module docs).
    pub latency: ChannelVerdict,
}

impl ScenarioResult {
    /// Whether either channel separates the arms at `alpha`.
    pub fn distinguishable_at(&self, alpha: f64) -> bool {
        self.size.distinguishable_at(alpha) || self.latency.distinguishable_at(alpha)
    }
}

/// The whole run: every cell plus the two-direction gate and the
/// padded-mode overhead numbers recorded into `BENCH_server.json`.
#[derive(Debug, Clone)]
pub struct ObserverReport {
    /// The seed the run derived everything from.
    pub seed: u64,
    /// Recorded samples per arm.
    pub samples_per_arm: usize,
    /// Permutation resamples per channel.
    pub permutations: usize,
    /// The padded server's latency quantum, in ms.
    pub quantum_ms: u64,
    /// Every (scenario, mode) cell.
    pub scenarios: Vec<ScenarioResult>,
    /// Off-mode answer p50 latency (µs) pooled over every off arm.
    pub off_p50_us: u64,
    /// Padded-mode answer p50 latency (µs) pooled over every padded arm.
    pub padded_p50_us: u64,
    /// Off-mode answer frame size (bytes) of the largest off arm.
    pub off_answer_bytes: u64,
    /// Padded-mode answer frame size (constant across arms).
    pub padded_answer_bytes: u64,
}

impl ObserverReport {
    /// Whether any off-mode cell separates at [`ALPHA_DISTINGUISH`] —
    /// the harness's proof of statistical power.
    pub fn off_distinguishable(&self) -> bool {
        self.scenarios
            .iter()
            .filter(|s| s.mode == ShapeMode::Off)
            .any(|s| s.distinguishable_at(ALPHA_DISTINGUISH))
    }

    /// Whether any padded-mode cell separates at [`ALPHA_LEAK`] — a
    /// leak through the defense.
    pub fn padded_distinguishable(&self) -> bool {
        self.scenarios
            .iter()
            .filter(|s| s.mode == ShapeMode::Padded)
            .any(|s| s.distinguishable_at(ALPHA_LEAK))
    }

    /// The CI gate: off leaks, padded does not.
    pub fn gate_passed(&self) -> bool {
        self.off_distinguishable() && !self.padded_distinguishable()
    }

    /// The full run as a JSON document (the CI artifact).
    pub fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.field_u64("seed", self.seed);
        o.field_u64("samples_per_arm", self.samples_per_arm as u64);
        o.field_u64("permutations", self.permutations as u64);
        o.field_u64("quantum_ms", self.quantum_ms);
        o.field_bool("off_distinguishable", self.off_distinguishable());
        o.field_bool("padded_distinguishable", self.padded_distinguishable());
        o.field_bool("gate_passed", self.gate_passed());
        o.field_raw("shape", &self.shape_json());
        let cells = self.scenarios.iter().map(|s| {
            let mut c = json::Obj::new();
            c.field_str("scenario", s.scenario);
            c.field_str("mode", s.mode.name());
            for (name, ch) in [("size", &s.size), ("latency", &s.latency)] {
                let mut v = json::Obj::new();
                v.field_f64("ks_stat", ch.ks_stat);
                v.field_f64("p_value", ch.p_value);
                v.field_f64("mean_a", ch.mean_a);
                v.field_f64("mean_b", ch.mean_b);
                c.field_raw(name, &v.finish());
            }
            c.finish()
        });
        o.field_raw("cells", &json::arr(cells));
        o.finish()
    }

    /// The `"shape"` overhead section merged into `BENCH_server.json`.
    pub fn shape_json(&self) -> String {
        let mut o = json::Obj::new();
        o.field_u64("quantum_ms", self.quantum_ms);
        o.field_u64("off_p50_us", self.off_p50_us);
        o.field_u64("padded_p50_us", self.padded_p50_us);
        o.field_u64(
            "padded_overhead_us",
            self.padded_p50_us.saturating_sub(self.off_p50_us),
        );
        o.field_u64("off_answer_bytes", self.off_answer_bytes);
        o.field_u64("padded_answer_bytes", self.padded_answer_bytes);
        o.finish()
    }
}

/// One workload pair: two configs differing in a single parameter.
struct Scenario {
    name: &'static str,
    config_a: PpgnnConfig,
    config_b: PpgnnConfig,
}

/// The raw recordings of one arm.
struct ArmSamples {
    /// Total on-wire `Answer` frame bytes per query.
    sizes: Vec<f64>,
    /// Request→answer latency per query, in microseconds.
    latency_us: Vec<f64>,
}

fn scenarios() -> Vec<Scenario> {
    let base = PpgnnConfig {
        k: 2,
        d: 5,
        delta: 6,
        sanitize: false,
        keysize: 1024,
        ..PpgnnConfig::fast_test()
    };
    vec![
        Scenario {
            name: "delta",
            config_a: base.clone(),
            config_b: PpgnnConfig {
                delta: 24,
                ..base.clone()
            },
        },
        Scenario {
            name: "k",
            // 512-bit keys here: at that size k 2 vs k 8 packs to
            // different answer lengths, so this pair exercises the size
            // channel (the delta pair above exercises latency).
            config_a: PpgnnConfig {
                delta: 9,
                keysize: 512,
                ..base.clone()
            },
            config_b: PpgnnConfig {
                k: 8,
                delta: 9,
                keysize: 512,
                ..base.clone()
            },
        },
        Scenario {
            name: "sanitize",
            config_a: base.clone(),
            config_b: PpgnnConfig {
                sanitize: true,
                ..base
            },
        },
    ]
}

/// The seeded POI world every arm queries (same world, different
/// parameters — the only difference the observer could be detecting is
/// the one the scenario plants).
fn seeded_pois(count: usize, rng: &mut impl Rng) -> Vec<Poi> {
    (0..count)
        .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
        .collect()
}

/// Runs one arm: its own in-process server (so LSP-side parameters
/// like `sanitize` genuinely differ) and one client with the wire tap
/// on. Returns the recorded `Answer` observations.
fn run_arm(
    config: &PpgnnConfig,
    policy: ShapePolicy,
    pois: Vec<Poi>,
    oc: &ObserverConfig,
    arm_seed: u64,
) -> Result<ArmSamples, ServerError> {
    let server_config = ServerConfig::builder()
        .workers(2)
        .rng_seed(arm_seed)
        .shape(policy)
        // The distinguishability gate runs with the metrics endpoint
        // and SLO accounting live: an observability regression that
        // leaks workload shape onto the wire fails this test, not
        // just the redaction grep.
        .metrics_addr(Some("127.0.0.1:0".into()))
        .slo(Some(crate::metrics::SloConfig::default()))
        .build()
        .map_err(|e| ServerError::Recovery(e.0))?;
    let lsp = Arc::new(Lsp::new(pois, config.clone()));
    let handle = serve_world(lsp, "127.0.0.1:0", server_config)?;
    let mut rng = ChaCha8Rng::seed_from_u64(arm_seed);
    let result = (|| {
        let mut client = GroupClient::connect(
            handle.local_addr(),
            1,
            config.clone(),
            Rect::UNIT,
            2,
            &mut rng,
        )?;
        client.set_wire_tap(true);
        let mut sizes = Vec::with_capacity(oc.samples_per_arm);
        let mut latency_us = Vec::with_capacity(oc.samples_per_arm);
        for i in 0..oc.warmup_per_arm + oc.samples_per_arm {
            let users = [
                Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
                Point::new(rng.gen::<f64>(), rng.gen::<f64>()),
            ];
            client.query(&users, &mut rng)?;
            let observations = client.take_wire_observations();
            if i < oc.warmup_per_arm {
                continue;
            }
            for obs in observations {
                if obs.frame_type == FrameType::Answer {
                    sizes.push(obs.total_bytes as f64);
                    latency_us.push(obs.latency.as_micros() as f64);
                }
            }
        }
        Ok(ArmSamples { sizes, latency_us })
    })();
    handle.shutdown();
    result
}

/// Two-sample KS statistic: max CDF gap over the pooled support.
/// Handles ties (the whole point of the binning) exactly.
fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    let mut sa: Vec<f64> = a.to_vec();
    let mut sb: Vec<f64> = b.to_vec();
    sa.sort_unstable_by(f64::total_cmp);
    sb.sort_unstable_by(f64::total_cmp);
    let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / sa.len() as f64 - j as f64 / sb.len() as f64).abs();
        d = d.max(gap);
    }
    d
}

/// Exact-style permutation p-value for the observed KS statistic:
/// shuffles the pooled samples `rounds` times and counts permutations
/// at least as extreme. The `+1` on both sides keeps the estimate
/// valid (never zero) and the seeded RNG keeps it reproducible.
fn permutation_p(a: &[f64], b: &[f64], rounds: usize, rng: &mut impl Rng) -> f64 {
    let observed = ks_statistic(a, b);
    let mut pool: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
    let mut hits = 0usize;
    for _ in 0..rounds {
        // Fisher–Yates over the pool, then split at |a|.
        for k in (1..pool.len()).rev() {
            pool.swap(k, rng.gen_range(0..=k));
        }
        if ks_statistic(&pool[..a.len()], &pool[a.len()..]) >= observed - 1e-12 {
            hits += 1;
        }
    }
    (hits + 1) as f64 / (rounds + 1) as f64
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Quantizes latencies to `bin`-sized buckets (nearest boundary).
fn binned(latency_us: &[f64], bin: Duration) -> Vec<f64> {
    let bin_us = (bin.as_micros() as f64).max(1.0);
    latency_us.iter().map(|t| (t / bin_us).round()).collect()
}

fn channel_verdict(
    raw_a: &[f64],
    raw_b: &[f64],
    gate_a: &[f64],
    gate_b: &[f64],
    rounds: usize,
    rng: &mut impl Rng,
) -> ChannelVerdict {
    ChannelVerdict {
        ks_stat: ks_statistic(gate_a, gate_b),
        p_value: permutation_p(gate_a, gate_b, rounds, rng),
        mean_a: mean(raw_a),
        mean_b: mean(raw_b),
    }
}

/// Runs the full harness: every scenario against an off server and a
/// padded one, KS + permutation per channel, gate verdicts, and the
/// padded-overhead numbers.
pub fn run_observer(oc: &ObserverConfig) -> Result<ObserverReport, ServerError> {
    let mut world_rng = ChaCha8Rng::seed_from_u64(oc.seed);
    let pois = seeded_pois(oc.pois, &mut world_rng);
    let mut test_rng = ChaCha8Rng::seed_from_u64(oc.seed ^ 0x0b5e_22e2);
    let mut scenarios_out = Vec::new();
    let mut pooled: [(Vec<f64>, Vec<f64>); 2] = Default::default();
    for (mode_idx, mode) in [ShapeMode::Off, ShapeMode::Padded].into_iter().enumerate() {
        let policy = match mode {
            ShapeMode::Off => ShapePolicy::off(),
            ShapeMode::Padded => ShapePolicy::padded(1024, 8, oc.quantum),
        };
        for (s_idx, sc) in scenarios().iter().enumerate() {
            let arm_seed = |arm: u64| {
                oc.seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((mode_idx as u64) << 32 | (s_idx as u64) << 8 | arm)
            };
            let a = run_arm(&sc.config_a, policy, pois.clone(), oc, arm_seed(0))?;
            let b = run_arm(&sc.config_b, policy, pois.clone(), oc, arm_seed(1))?;
            let lat_gate_a = binned(&a.latency_us, oc.latency_bin);
            let lat_gate_b = binned(&b.latency_us, oc.latency_bin);
            scenarios_out.push(ScenarioResult {
                scenario: sc.name,
                mode,
                size: channel_verdict(
                    &a.sizes,
                    &b.sizes,
                    &a.sizes,
                    &b.sizes,
                    oc.permutations,
                    &mut test_rng,
                ),
                latency: channel_verdict(
                    &a.latency_us,
                    &b.latency_us,
                    &lat_gate_a,
                    &lat_gate_b,
                    oc.permutations,
                    &mut test_rng,
                ),
            });
            pooled[mode_idx].0.extend(a.sizes.iter().chain(&b.sizes));
            pooled[mode_idx]
                .1
                .extend(a.latency_us.iter().chain(&b.latency_us));
        }
    }
    let p50 = |lat: &[f64]| {
        let mut us: Vec<u64> = lat.iter().map(|&t| t as u64).collect();
        us.sort_unstable();
        percentile(&us, 50.0)
    };
    let max_bytes = |sizes: &[f64]| sizes.iter().copied().fold(0.0f64, f64::max) as u64;
    Ok(ObserverReport {
        seed: oc.seed,
        samples_per_arm: oc.samples_per_arm,
        permutations: oc.permutations,
        quantum_ms: oc.quantum.as_millis() as u64,
        scenarios: scenarios_out,
        off_p50_us: p50(&pooled[0].1),
        padded_p50_us: p50(&pooled[1].1),
        off_answer_bytes: max_bytes(&pooled[0].0),
        padded_answer_bytes: max_bytes(&pooled[1].0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_of_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 3.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn ks_of_disjoint_samples_is_one() {
        let a = [1.0, 1.0, 2.0];
        let b = [5.0, 6.0, 7.0];
        assert_eq!(ks_statistic(&a, &b), 1.0);
    }

    #[test]
    fn ks_handles_ties_across_samples() {
        // F_a jumps to 1 at 1.0; F_b is 0.5 there: D = 0.5.
        let a = [1.0, 1.0];
        let b = [1.0, 2.0];
        assert!((ks_statistic(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn permutation_p_is_one_for_identical_samples() {
        // D_obs = 0, every permutation ties it: p = 1 exactly. This is
        // the determinism the padded gate rests on.
        let a = [3.0; 20];
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(permutation_p(&a, &a, 200, &mut rng), 1.0);
    }

    #[test]
    fn permutation_p_is_minimal_for_disjoint_samples() {
        let a: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..20).map(|i| 100.0 + i as f64).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = permutation_p(&a, &b, 999, &mut rng);
        // No permutation of a clean split reproduces D = 1 (any mixed
        // split has D < 1), so only the +1 numerator survives.
        assert!(p <= 1.0 / 1000.0 + 1e-12, "p = {p}");
    }

    #[test]
    fn binning_collapses_quantized_latencies() {
        // Padded-mode latencies: quantum + jitter well inside bin/2.
        let a = [200_100.0, 200_900.0, 200_400.0];
        let b = [200_200.0, 200_700.0, 200_300.0];
        let bin = Duration::from_millis(25);
        assert_eq!(ks_statistic(&binned(&a, bin), &binned(&b, bin)), 0.0);
    }
}
