//! The standing-query registry: server-side safe regions and the
//! one-mutation→many-sessions invalidation fanout.
//!
//! A `Subscribe` is a PPGNN query the group intends to keep: the server
//! answers it once (through the normal encrypted pipeline), then keeps
//! watching the POI index on the group's behalf. Because Privacy II
//! hides the group's true query among its δ′ candidates, the server
//! cannot know *which* candidate the group cares about — so it tracks a
//! safe region **per candidate** and invalidates when a mutation
//! threatens *any* of them. That makes invalidations conservative
//! (spurious pushes are possible) but never missed: the oracle-checked
//! soak in `tests/server_moving.rs` holds the subsystem to exactly that
//! contract.
//!
//! ## The safe-region math — sentinel semantics
//!
//! A `Subscribe` asking for `k` answers protects the **top-(k−1)** set;
//! the k-th answer is a *runner-up sentinel*. This convention exists
//! for Privacy III: the margin both sides need is the cost gap between
//! the last two answers, `M = C_k − C_{k−1}`, which the client can
//! compute **from its own decrypted answers** — no plaintext cost gap
//! beyond the requested answer ever crosses the wire. (The naive
//! alternative, disclosing the gap *above* the k-th answer, would leak
//! database structure the answer does not contain; and minimizing that
//! gap over all δ′ candidates — the only way to disclose it without
//! breaking Privacy II — yields margins orders of magnitude too small
//! to be useful, since the minimum of δ′ near-tie gaps collapses.)
//! [`crate::client::GroupClient::subscribe`] hides the convention:
//! it plans for `k+1` answers and hands back `k` plus the token.
//!
//! * **Client side**: each user may drift up to `r = M / (4·s)` from
//!   the subscribed location, where `s = n` for `Sum` (all drifts add)
//!   and `s = 1` for `Max`/`Min`. Any single cost then moves by at most
//!   `M/4`, so the gap `C_k − C_{k−1} ≥ M/2 > 0` survives and the
//!   protected top-(k−1) set is provably unchanged.
//! * **Server side**: an inserted POI `p` can only enter a candidate's
//!   protected set if `F(p, Q) ≤ C_{k−1} + M/2` (the client may have
//!   drifted, so `M/2` of slack is kept); a removed POI only matters if
//!   it *was* in some candidate's protected set (removing anything else
//!   cannot promote costs). An insert that reuses a live protected id
//!   is a move and always invalidates.
//!
//! The `Granted` push still carries a server-side margin — the minimum
//! over every candidate's gap — as a conservative public bound; clients
//! prefer their self-computed true margin, which is sharper and free.
//!
//! Versions make the check race-free: a subscription records the index
//! version its regions were computed on; `Subscribe` handlers compare
//! against the live version after registering and self-invalidate if a
//! mutation slipped between snapshot and registration.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use ppgnn_core::Lsp;
use ppgnn_geo::{Aggregate, PoiId, PoiOp, Point};
use ppgnn_telemetry::trace::{self, AttrKey, SpanName};
use ppgnn_telemetry::{self as telemetry, Stage};

use crate::frame::{SubscriptionKind, SubscriptionUpdatePayload};

/// A per-connection mailbox of subscription pushes. The invalidation
/// scan (running on whatever connection thread carried the `PoiUpdate`)
/// pushes here; the owning connection thread drains it after every
/// frame and at every idle poll, so a notification reaches the wire
/// within one poll interval without any cross-thread socket sharing.
#[derive(Debug, Default)]
pub struct Outbox {
    pending: Mutex<Vec<SubscriptionUpdatePayload>>,
}

impl Outbox {
    /// An empty mailbox.
    pub fn new() -> Self {
        Outbox::default()
    }

    /// Queues one push for the owning connection.
    pub fn push(&self, update: SubscriptionUpdatePayload) {
        self.pending
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(update);
    }

    /// Takes everything queued so far, oldest first.
    pub fn drain(&self) -> Vec<SubscriptionUpdatePayload> {
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// One candidate's safe region: its locations and the cost gap a
/// mutation must close to threaten its protected top-(k−1) set.
#[derive(Debug, Clone)]
pub struct CandidateRegion {
    /// The candidate's query locations.
    pub points: Vec<Point>,
    /// Aggregate cost of the last *protected* answer, `C_{k−1}`
    /// (infinite when the database holds fewer than `k` POIs — any
    /// insert then fills a free slot; negative-infinite when `k < 2`
    /// and there is nothing to protect).
    pub k_cost: f64,
    /// The sentinel gap `C_k − C_{k−1}` (infinite when no sentinel
    /// exists).
    pub margin: f64,
}

/// One registered standing query.
#[derive(Debug)]
pub struct Subscription {
    /// The subscribed group.
    pub group_id: u64,
    /// The request the subscription was granted under (echoed in every
    /// push about it).
    pub request_id: u32,
    /// The connection that owns the outbox (subscriptions die with it).
    pub conn_id: u64,
    /// Index version the regions were computed on.
    pub version: u64,
    /// Aggregate the safe regions were computed under.
    pub agg: Aggregate,
    /// Minimum margin across regions — the token the client received.
    pub margin: f64,
    /// Drift scale `s` of the token (`n` for Sum, 1 for Max/Min).
    pub drift_scale: u32,
    /// Per-candidate safe regions.
    pub regions: Vec<CandidateRegion>,
    /// Union of every candidate's *protected* POI ids (sentinels
    /// excluded — losing a sentinel cannot shrink any protected set).
    pub topk: HashSet<PoiId>,
    /// The owning connection's mailbox.
    pub outbox: Arc<Outbox>,
    /// Set once invalidated: the regions are meaningless until the
    /// group re-subscribes, so the scan skips stale entries.
    pub stale: bool,
}

/// The safe-region token pushed with `Granted`, plus everything the
/// registry needs to watch the subscription.
#[derive(Debug, Clone, Copy)]
pub struct SafeRegionSummary {
    /// Minimum margin across all candidate regions.
    pub margin: f64,
    /// Drift scale `s` (`n` users for Sum, 1 for Max/Min).
    pub drift_scale: u32,
}

/// Computes every candidate's safe region on one pinned snapshot,
/// under the sentinel convention: a `k`-answer subscription protects
/// the top-(k−1) ids, and the margin is the gap `C_k − C_{k−1}`
/// between the sentinel and the last protected answer.
///
/// Returns the regions, the protected-id union, and the token summary.
pub fn compute_regions(
    snapshot: &Lsp,
    candidates: &[Vec<Point>],
    k: usize,
) -> (Vec<CandidateRegion>, HashSet<PoiId>, SafeRegionSummary) {
    let agg = snapshot.config().aggregate;
    let mut regions = Vec::with_capacity(candidates.len());
    let mut topk = HashSet::new();
    let mut min_margin = f64::INFINITY;
    for cand in candidates {
        let answers = snapshot.plaintext_answer(cand, k);
        let (k_cost, margin) = if k < 2 {
            // No protected set at all — nothing can invalidate.
            (f64::NEG_INFINITY, f64::INFINITY)
        } else if answers.len() < k {
            // A free slot: any insert joins the answer unconditionally.
            (f64::INFINITY, f64::INFINITY)
        } else {
            let c_prot = agg.eval(&answers[k - 2].location, cand);
            let c_sent = agg.eval(&answers[k - 1].location, cand);
            (c_prot, (c_sent - c_prot).max(0.0))
        };
        // Protected ids: everything but the sentinel. When the database
        // is smaller than `k` every answered id is protected (the set
        // *is* the database).
        let protected = if answers.len() < k {
            answers.len()
        } else {
            k.saturating_sub(1)
        };
        for poi in answers.iter().take(protected) {
            topk.insert(poi.id);
        }
        min_margin = min_margin.min(margin);
        regions.push(CandidateRegion {
            points: cand.clone(),
            k_cost,
            margin,
        });
    }
    let drift_scale = match agg {
        Aggregate::Sum => candidates.first().map(|c| c.len()).unwrap_or(1).max(1) as u32,
        Aggregate::Max | Aggregate::Min => 1,
    };
    (
        regions,
        topk,
        SafeRegionSummary {
            margin: min_margin,
            drift_scale,
        },
    )
}

/// Whether one mutation threatens one subscription's answer.
fn op_invalidates(sub: &Subscription, op: &PoiOp) -> bool {
    match op {
        PoiOp::Insert(poi) => {
            // Moving a POI that is already protected always counts.
            if sub.topk.contains(&poi.id) {
                return true;
            }
            sub.regions.iter().any(|r| {
                let cost = sub.agg.eval(&poi.location, &r.points);
                // `M/2` of slack covers the client's allowed drift.
                let slack = if r.margin.is_finite() {
                    r.margin / 2.0
                } else {
                    0.0
                };
                cost <= r.k_cost + slack
            })
        }
        PoiOp::Remove(id) => sub.topk.contains(id),
    }
}

/// The bounded standing-query table, shared by every connection thread.
#[derive(Debug)]
pub struct SubscriptionRegistry {
    inner: Mutex<Vec<Subscription>>,
    cap: usize,
}

impl SubscriptionRegistry {
    /// An empty registry holding at most `cap` subscriptions.
    pub fn new(cap: usize) -> Self {
        SubscriptionRegistry {
            inner: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Subscription>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The registry cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Live (non-stale and stale) subscription count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a fresh registration for `group_id` would be refused —
    /// the cheap pre-query check, so a flood of `Subscribe`s is turned
    /// away before it can burn worker time on answers.
    pub fn would_reject(&self, group_id: u64) -> bool {
        let subs = self.lock();
        subs.len() >= self.cap && !subs.iter().any(|s| s.group_id == group_id)
    }

    /// Registers (or, for a re-subscribing group, replaces) a standing
    /// query. `Err(cap)` when the table is full.
    pub fn register(&self, sub: Subscription) -> Result<(), usize> {
        let mut subs = self.lock();
        if let Some(existing) = subs.iter_mut().find(|s| s.group_id == sub.group_id) {
            *existing = sub;
            return Ok(());
        }
        if subs.len() >= self.cap {
            return Err(self.cap);
        }
        subs.push(sub);
        Ok(())
    }

    /// Drops the subscription granted to `group_id` under `request_id`.
    pub fn remove(&self, group_id: u64, request_id: u32) -> bool {
        let mut subs = self.lock();
        let before = subs.len();
        subs.retain(|s| !(s.group_id == group_id && s.request_id == request_id));
        subs.len() != before
    }

    /// Immediately invalidates one just-granted subscription — used
    /// when a mutation races the grant, so the scan for that mutation
    /// ran before this entry existed and could never have flagged it.
    pub fn invalidate_now(&self, group_id: u64, request_id: u32, version: u64) -> bool {
        let mut subs = self.lock();
        match subs
            .iter_mut()
            .find(|s| s.group_id == group_id && s.request_id == request_id && !s.stale)
        {
            Some(s) => {
                s.stale = true;
                s.outbox.push(SubscriptionUpdatePayload {
                    request_id: s.request_id,
                    kind: SubscriptionKind::Invalidated,
                    version,
                    margin: s.margin,
                    drift_scale: s.drift_scale,
                });
                true
            }
            None => false,
        }
    }

    /// Drops every subscription owned by a closed connection.
    pub fn remove_conn(&self, conn_id: u64) -> usize {
        let mut subs = self.lock();
        let before = subs.len();
        subs.retain(|s| s.conn_id != conn_id);
        before - subs.len()
    }

    /// The invalidation scan: checks every live subscription against a
    /// just-applied mutation batch and pushes an `Invalidated` to each
    /// threatened group's outbox. Returns how many were invalidated.
    pub fn invalidate_for_ops(&self, ops: &[PoiOp], new_version: u64) -> usize {
        let mut subs = self.lock();
        let scan = trace::span(SpanName::InvalidateScan);
        scan.attr(AttrKey::Subscriptions, subs.len() as u64);
        scan.attr(AttrKey::PoiOps, ops.len() as u64);
        let hit: Vec<usize> = {
            let _t = telemetry::global().time(Stage::InvalidateScan);
            subs.iter()
                .enumerate()
                .filter(|(_, s)| !s.stale && ops.iter().any(|op| op_invalidates(s, op)))
                .map(|(i, _)| i)
                .collect()
        };
        scan.attr(AttrKey::Invalidated, hit.len() as u64);
        drop(scan);
        if !hit.is_empty() {
            let fanout = trace::span(SpanName::FanoutNotify);
            fanout.attr(AttrKey::Invalidated, hit.len() as u64);
            let _t = telemetry::global().time(Stage::FanoutNotify);
            for &i in &hit {
                let sub = &mut subs[i];
                sub.stale = true;
                sub.outbox.push(SubscriptionUpdatePayload {
                    request_id: sub.request_id,
                    kind: SubscriptionKind::Invalidated,
                    version: new_version,
                    margin: sub.margin,
                    drift_scale: sub.drift_scale,
                });
            }
        }
        hit.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_core::PpgnnConfig;
    use ppgnn_geo::Poi;

    fn snapshot() -> Lsp {
        let pois: Vec<Poi> = (0..100)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0),
                )
            })
            .collect();
        Lsp::new(
            pois,
            PpgnnConfig {
                k: 3,
                d: 3,
                delta: 6,
                keysize: 128,
                sanitize: false,
                ..PpgnnConfig::paper_defaults()
            },
        )
    }

    fn sub_for(candidates: &[Vec<Point>], outbox: Arc<Outbox>) -> Subscription {
        let snap = snapshot();
        let (regions, topk, token) = compute_regions(&snap, candidates, 3);
        Subscription {
            group_id: 7,
            request_id: 1,
            conn_id: 0,
            version: 1,
            agg: snap.config().aggregate,
            margin: token.margin,
            drift_scale: token.drift_scale,
            regions,
            topk,
            outbox,
            stale: false,
        }
    }

    #[test]
    fn margin_is_the_sentinel_gap() {
        let snap = snapshot();
        let q = vec![Point::new(0.21, 0.31), Point::new(0.39, 0.29)];
        let (regions, topk, token) = compute_regions(&snap, std::slice::from_ref(&q), 3);
        assert_eq!(regions.len(), 1);
        assert_eq!(topk.len(), 2, "the sentinel answer is not protected");
        let answers = snap.plaintext_answer(&q, 3);
        let agg = snap.config().aggregate;
        let expected = agg.eval(&answers[2].location, &q) - agg.eval(&answers[1].location, &q);
        assert!((regions[0].margin - expected).abs() < 1e-12);
        assert!(!topk.contains(&answers[2].id), "sentinel excluded");
        assert_eq!(token.drift_scale, 2, "Sum scales with group size");
        assert!(token.margin <= regions[0].margin);
    }

    #[test]
    fn sentinel_removal_does_not_invalidate() {
        let outbox = Arc::new(Outbox::new());
        let reg = SubscriptionRegistry::new(8);
        let snap = snapshot();
        let q = vec![Point::new(0.21, 0.31), Point::new(0.39, 0.29)];
        let sentinel = snap.plaintext_answer(&q, 3)[2].id;
        reg.register(sub_for(std::slice::from_ref(&q), Arc::clone(&outbox)))
            .unwrap();
        // Losing the runner-up cannot shrink the protected set; the
        // client's margin only grows.
        assert_eq!(reg.invalidate_for_ops(&[PoiOp::Remove(sentinel)], 2), 0);
        assert!(outbox.drain().is_empty());
    }

    #[test]
    fn tiny_database_margin_is_infinite() {
        let pois = vec![Poi::new(1, Point::new(0.5, 0.5))];
        let snap = Lsp::new(
            pois,
            PpgnnConfig {
                k: 3,
                d: 3,
                delta: 6,
                keysize: 128,
                sanitize: false,
                ..PpgnnConfig::paper_defaults()
            },
        );
        let (regions, topk, token) = compute_regions(&snap, &[vec![Point::new(0.1, 0.1)]], 3);
        assert!(regions[0].margin.is_infinite());
        assert!(
            regions[0].k_cost.is_infinite(),
            "free slots: any insert hits"
        );
        assert_eq!(topk.len(), 1);
        assert!(token.margin.is_infinite());
    }

    #[test]
    fn far_insert_does_not_invalidate_near_insert_does() {
        let outbox = Arc::new(Outbox::new());
        let reg = SubscriptionRegistry::new(8);
        let q = vec![Point::new(0.21, 0.31), Point::new(0.39, 0.29)];
        reg.register(sub_for(std::slice::from_ref(&q), Arc::clone(&outbox)))
            .unwrap();

        // An insert on the far corner threatens nothing.
        let far = vec![PoiOp::Insert(Poi::new(9000, Point::new(0.99, 0.99)))];
        assert_eq!(reg.invalidate_for_ops(&far, 2), 0);
        assert!(outbox.drain().is_empty());

        // An insert right on the centroid beats every current answer.
        let near = vec![PoiOp::Insert(Poi::new(9001, Point::new(0.3, 0.3)))];
        assert_eq!(reg.invalidate_for_ops(&near, 3), 1);
        let pushed = outbox.drain();
        assert_eq!(pushed.len(), 1);
        assert_eq!(pushed[0].kind, SubscriptionKind::Invalidated);
        assert_eq!(pushed[0].version, 3);

        // Stale subscriptions are not re-notified.
        assert_eq!(reg.invalidate_for_ops(&near, 4), 0);
        assert!(outbox.drain().is_empty());
    }

    #[test]
    fn removing_a_topk_poi_invalidates() {
        let outbox = Arc::new(Outbox::new());
        let reg = SubscriptionRegistry::new(8);
        let q = vec![Point::new(0.21, 0.31)];
        let sub = sub_for(std::slice::from_ref(&q), Arc::clone(&outbox));
        let victim = *sub.topk.iter().next().unwrap();
        reg.register(sub).unwrap();
        // Removing a POI no candidate holds is harmless.
        assert_eq!(reg.invalidate_for_ops(&[PoiOp::Remove(99)], 2), 0);
        assert_eq!(reg.invalidate_for_ops(&[PoiOp::Remove(victim)], 3), 1);
        assert_eq!(outbox.drain().len(), 1);
    }

    #[test]
    fn cap_enforced_but_resubscribe_replaces() {
        let outbox = Arc::new(Outbox::new());
        let reg = SubscriptionRegistry::new(2);
        let q = vec![Point::new(0.5, 0.5)];
        for gid in [1u64, 2] {
            let mut s = sub_for(std::slice::from_ref(&q), Arc::clone(&outbox));
            s.group_id = gid;
            reg.register(s).unwrap();
        }
        let mut third = sub_for(std::slice::from_ref(&q), Arc::clone(&outbox));
        third.group_id = 3;
        assert!(reg.would_reject(3));
        assert_eq!(reg.register(third), Err(2));
        // Group 2 re-subscribing replaces its own slot, no cap hit.
        assert!(!reg.would_reject(2));
        let mut again = sub_for(std::slice::from_ref(&q), Arc::clone(&outbox));
        again.group_id = 2;
        again.request_id = 9;
        reg.register(again).unwrap();
        assert_eq!(reg.len(), 2);
        // Cleanup paths.
        assert!(reg.remove(2, 9));
        assert!(!reg.remove(2, 9));
        assert_eq!(reg.remove_conn(0), 1);
        assert!(reg.is_empty());
    }
}
