//! Server-side observability: windowed telemetry, cost-model
//! calibration, SLO burn accounting, and the OpenMetrics scrape
//! endpoint (DESIGN.md §18).
//!
//! The cumulative registry in [`ppgnn_telemetry`] answers "what has
//! this process done since boot"; this module adds the time dimension
//! and the operator-facing faces on top:
//!
//! * a **ticker thread** drives a [`WindowRing`] at 1 Hz on a
//!   deadline-anchored schedule, feeding it the server's own
//!   `queries-ok` / `queries-err` counters as extras;
//! * each tick folds the newest window into the [`CostModel`] —
//!   per-element crypto costs keyed by the dominant session key size —
//!   and recomputes the four **SLO burn rates** (latency and error
//!   budget, fast and slow window) that ride every `Pong`;
//! * the cost model is **persisted** next to the WAL data dir
//!   (`costmodel.v1`) so a restarted server plans against calibrated
//!   constants instead of cold guesses;
//! * a second listener serves `GET /metrics` (OpenMetrics text) and
//!   `GET /healthz` (the health snapshot as JSON). Both faces emit
//!   only closed-enum names and integer magnitudes — never
//!   coordinates, POI ids, group ids, or any other per-session data —
//!   enforced by `tests/metrics_redaction.rs`.
//!
//! The legacy latency-percentile helpers for `loadgen` are re-exported
//! unchanged from the shared telemetry crate.

pub use ppgnn_telemetry::{percentile, summarize, LatencySummary};

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ppgnn_telemetry::costmodel::CostModel;
use ppgnn_telemetry::openmetrics::{self, SloBurn};
use ppgnn_telemetry::window::{WindowRing, WindowedSnapshot, DEFAULT_CAPACITY, DEFAULT_INTERVAL};
use ppgnn_telemetry::{self as telemetry, Stage};

use crate::server::{full_snapshot, health_snapshot, Shared};

/// Declarative service-level objectives: the latency and error budgets
/// the burn rates in [`ppgnn_telemetry::HealthSnapshot`] are measured
/// against.
///
/// A burn rate of 1000 permille means the service is consuming its
/// error budget exactly as fast as the objective allows; sustained
/// values above 1000 on the slow window mean the objective will be
/// missed. The fast window catches sharp regressions (page), the slow
/// window catches slow leaks (ticket) — the standard multi-window
/// burn-rate alerting shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloConfig {
    /// A query slower than this burns the latency budget. Measured on
    /// [`Stage::ServeQuery`] (enqueue → reply, queue wait included).
    pub latency_target_us: u64,
    /// Fraction of queries allowed over the latency target, in parts
    /// per million (50_000 = 5 %).
    pub latency_budget_ppm: u32,
    /// Fraction of queries allowed to fail, in parts per million.
    pub error_budget_ppm: u32,
    /// Short burn window (sharp-regression signal).
    pub fast_window: Duration,
    /// Long burn window (slow-leak signal). Must fit the telemetry
    /// ring: at most [`DEFAULT_CAPACITY`] × [`DEFAULT_INTERVAL`].
    pub slow_window: Duration,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_target_us: 100_000,
            latency_budget_ppm: 50_000,
            error_budget_ppm: 10_000,
            fast_window: Duration::from_secs(10),
            slow_window: Duration::from_secs(60),
        }
    }
}

/// File the calibrated cost model is persisted to, inside the
/// durability data dir (it rides the same directory as the WAL so a
/// recovered server warm-starts its planner too).
pub const COST_MODEL_FILE: &str = "costmodel.v1";

/// How many ticks between cost-model persists (~30 s at 1 Hz); the
/// model is also persisted once at shutdown.
const PERSIST_EVERY_TICKS: u64 = 30;

/// Burn-rate atomics: latency-fast, latency-slow, error-fast,
/// error-slow — the order [`health_snapshot`] reads them in.
const BURN_SLOTS: usize = 4;

/// The server's windowed-observability state, one per [`Shared`].
///
/// Lock order: `windows` before `cost`, never the reverse; neither is
/// held across I/O except the cost-model persist (a dedicated clone).
pub(crate) struct Observability {
    windows: Mutex<WindowRing>,
    cost: Mutex<CostModel>,
    cost_path: Option<PathBuf>,
    slo: Option<SloConfig>,
    burns: [AtomicU32; BURN_SLOTS],
}

/// Recovers from a poisoned observability lock: every critical section
/// leaves the ring/model structurally consistent (worst case a lost
/// tick), so serving stale telemetry beats wedging the scrape path.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Observability {
    /// Fresh state; when `cost_path` names an existing persisted model
    /// it is loaded so calibration resumes instead of restarting —
    /// a corrupt or missing file just means a cold model.
    pub(crate) fn new(slo: Option<SloConfig>, cost_path: Option<PathBuf>) -> Self {
        let cost = cost_path
            .as_deref()
            .and_then(|p| CostModel::load(p).ok().flatten())
            .unwrap_or_default();
        Observability {
            windows: Mutex::new(WindowRing::new(DEFAULT_INTERVAL, DEFAULT_CAPACITY)),
            cost: Mutex::new(cost),
            cost_path,
            slo,
            burns: [const { AtomicU32::new(0) }; BURN_SLOTS],
        }
    }

    /// One observation cycle: capture an interval delta, fold the
    /// fresh window into the cost model (attributed to `key_bits`),
    /// and recompute the SLO burn rates. Driven by the ticker thread
    /// and by [`crate::ServerHandle::flush_windows`].
    fn tick(&self, extras: &[(&str, u64)], key_bits: Option<u32>) {
        let mut ring = lock(&self.windows);
        ring.tick_with_extras(telemetry::global(), extras);
        if let Some(bits) = key_bits {
            // Calibrate over the fast window: wide enough for stable
            // ratios, fresh enough to track load shifts. Overlapping
            // windows are fine — the model folds ratios by EWMA, so
            // re-observing mostly-identical intervals only smooths.
            let intervals = self.intervals_for(self.fast_window(), &ring);
            let w = ring.windowed(intervals);
            lock(&self.cost).observe(bits, &w);
        }
        if let Some(slo) = self.slo {
            let fast = self.intervals_for(slo.fast_window, &ring);
            let slow = self.intervals_for(slo.slow_window, &ring);
            let (over_f, tot_f) =
                ring.stage_over_threshold(Stage::ServeQuery, fast, slo.latency_target_us);
            let (over_s, tot_s) =
                ring.stage_over_threshold(Stage::ServeQuery, slow, slo.latency_target_us);
            let err_f = ring.counter_delta("queries-err", fast);
            let ok_f = ring.counter_delta("queries-ok", fast);
            let err_s = ring.counter_delta("queries-err", slow);
            let ok_s = ring.counter_delta("queries-ok", slow);
            drop(ring);
            let values = [
                burn_permille(over_f, tot_f, slo.latency_budget_ppm),
                burn_permille(over_s, tot_s, slo.latency_budget_ppm),
                burn_permille(err_f, err_f + ok_f, slo.error_budget_ppm),
                burn_permille(err_s, err_s + ok_s, slo.error_budget_ppm),
            ];
            for (slot, v) in self.burns.iter().zip(values) {
                slot.store(v, Ordering::Relaxed);
            }
        }
    }

    fn fast_window(&self) -> Duration {
        self.slo
            .map(|s| s.fast_window)
            .unwrap_or(Duration::from_secs(10))
    }

    /// How many ring intervals cover `window`, at least one.
    fn intervals_for(&self, window: Duration, ring: &WindowRing) -> usize {
        let iv = ring.interval().as_millis().max(1);
        window.as_millis().div_ceil(iv).max(1) as usize
    }

    /// The windowed snapshot over the newest `intervals` ticks.
    pub(crate) fn windowed(&self, intervals: usize) -> WindowedSnapshot {
        lock(&self.windows).windowed(intervals)
    }

    /// A point-in-time copy of the calibrated cost model.
    pub(crate) fn cost_model(&self) -> CostModel {
        lock(&self.cost).clone()
    }

    /// The four burn rates, in [`health_snapshot`] field order:
    /// latency-fast, latency-slow, error-fast, error-slow.
    pub(crate) fn burns(&self) -> [u32; BURN_SLOTS] {
        [
            self.burns[0].load(Ordering::Relaxed),
            self.burns[1].load(Ordering::Relaxed),
            self.burns[2].load(Ordering::Relaxed),
            self.burns[3].load(Ordering::Relaxed),
        ]
    }

    /// Whether an SLO is configured (burn gauges are only exported
    /// when they mean something).
    pub(crate) fn has_slo(&self) -> bool {
        self.slo.is_some()
    }

    /// Burn samples for the scrape body; empty without an SLO.
    fn slo_burns(&self) -> Vec<SloBurn> {
        if self.slo.is_none() {
            return Vec::new();
        }
        let b = self.burns();
        vec![
            SloBurn {
                objective: "latency",
                window: "fast",
                burn_pm: b[0] as u64,
            },
            SloBurn {
                objective: "latency",
                window: "slow",
                burn_pm: b[1] as u64,
            },
            SloBurn {
                objective: "errors",
                window: "fast",
                burn_pm: b[2] as u64,
            },
            SloBurn {
                objective: "errors",
                window: "slow",
                burn_pm: b[3] as u64,
            },
        ]
    }

    /// Persists the cost model if a path is configured and the model
    /// has learned anything. Persist failures are swallowed: a broken
    /// disk must not take the ticker (and with it burn accounting)
    /// down — the next restart just calibrates from cold.
    pub(crate) fn persist(&self) {
        let Some(path) = &self.cost_path else { return };
        let model = self.cost_model();
        if !model.is_empty() {
            let _ = model.save(path);
        }
    }
}

/// `over/total` as a permille of the budget: 1000 = burning exactly at
/// the allowed rate. 0 when nothing happened (no traffic burns no
/// budget); saturates at `u32::MAX` instead of overflowing when the
/// budget is tiny and everything violates.
fn burn_permille(over: u64, total: u64, budget_ppm: u32) -> u32 {
    if total == 0 || budget_ppm == 0 {
        return 0;
    }
    let num = (over as u128) * 1_000_000_000u128;
    let den = (total as u128) * (budget_ppm as u128);
    (num / den).min(u32::MAX as u128) as u32
}

/// One observation cycle against the server's live counters — the
/// single entry point both the ticker and `flush_windows` share.
pub(crate) fn observability_tick(shared: &Shared) {
    let extras = [
        (
            "queries-ok",
            shared.stats.queries_ok.load(Ordering::Relaxed),
        ),
        (
            "queries-err",
            shared.stats.queries_err.load(Ordering::Relaxed),
        ),
    ];
    let key_bits = shared.registry.dominant_key_bits();
    shared.obs.tick(&extras, key_bits);
}

/// Spawns the 1 Hz observability ticker. Ticks are anchored to a
/// deadline schedule (`next += interval`) so a slow tick does not
/// shift every later one; a tick delayed past a full interval skips
/// the missed deadlines instead of bursting to catch up.
pub(crate) fn spawn_ticker(shared: Arc<Shared>) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ppgnn-obs-ticker".into())
        .spawn(move || {
            let interval = DEFAULT_INTERVAL;
            let mut next = Instant::now() + interval;
            let mut ticks: u64 = 0;
            while !shared.shutdown.load(Ordering::SeqCst) {
                let now = Instant::now();
                if now < next {
                    // Short naps so shutdown is noticed within ~50 ms.
                    std::thread::sleep((next - now).min(Duration::from_millis(50)));
                    continue;
                }
                next += interval;
                if next < Instant::now() {
                    next = Instant::now() + interval;
                }
                observability_tick(&shared);
                ticks += 1;
                if ticks.is_multiple_of(PERSIST_EVERY_TICKS) {
                    shared.obs.persist();
                }
            }
            // Final capture + persist so short-lived servers still
            // leave a calibrated model behind.
            observability_tick(&shared);
            shared.obs.persist();
        })
}

/// Largest accepted scrape request head; `/metrics` needs ~20 bytes,
/// anything bigger is not a scraper.
const MAX_REQUEST_BYTES: usize = 4096;
/// Socket deadlines on the scrape listener: a stuck scraper loses its
/// connection, never a listener slot.
const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Binds the metrics listener and serves `GET /metrics` and
/// `GET /healthz` until shutdown. Single-threaded by design: scrape
/// bodies are built in microseconds, scrapers poll at ≥1 s intervals,
/// and one thread bounds the blast radius of a misbehaving scraper.
pub(crate) fn spawn_metrics_listener(
    addr: &str,
    shared: Arc<Shared>,
) -> std::io::Result<(SocketAddr, JoinHandle<()>)> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let handle = std::thread::Builder::new()
        .name("ppgnn-metrics".into())
        .spawn(move || {
            while !shared.shutdown.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_scrape(stream, &shared);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(20)),
                }
            }
        })?;
    Ok((local_addr, handle))
}

/// The `/metrics` scrape body: cumulative + windowed + cost + burn
/// families, rendered by the shared [`openmetrics`] module.
pub(crate) fn render_scrape(shared: &Shared) -> String {
    let snap = full_snapshot(shared);
    let windowed = {
        let ring = lock(&shared.obs.windows);
        (!ring.is_empty()).then(|| ring.windowed(ring.len()))
    };
    let cost = shared.obs.cost_model();
    let cost = (!cost.is_empty()).then_some(cost);
    let burns = shared.obs.slo_burns();
    openmetrics::render(&snap, windowed.as_ref(), cost.as_ref(), &burns)
}

/// Answers one scrape connection: reads the request head under a
/// deadline, routes GET `/metrics` / `/healthz`, writes one response,
/// closes. No keep-alive — scrapers reconnect per poll and a closed
/// connection can never wedge the listener.
fn serve_scrape(mut stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_read_timeout(Some(SCRAPE_TIMEOUT))?;
    stream.set_write_timeout(Some(SCRAPE_TIMEOUT))?;
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            render_scrape(shared),
        ),
        ("GET", "/healthz") => {
            let health = health_snapshot(shared);
            let status = if health.live_workers > 0 {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            (status, "application/json", health.to_json())
        }
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".into()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".into(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
