//! Latency aggregation for the load generator.

use std::time::Duration;

/// Aggregated latency/throughput figures over one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Completed queries.
    pub count: usize,
    /// Queries per second over the wall-clock window.
    pub throughput_qps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
}

/// Nearest-rank percentile over a sorted sample set.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    debug_assert!((0.0..=100.0).contains(&p));
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Summarizes raw per-query latencies over a wall-clock window.
pub fn summarize(mut samples_us: Vec<u64>, elapsed: Duration) -> LatencySummary {
    samples_us.sort_unstable();
    let count = samples_us.len();
    let sum: u64 = samples_us.iter().sum();
    LatencySummary {
        count,
        throughput_qps: if elapsed.as_secs_f64() > 0.0 {
            count as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: percentile(&samples_us, 50.0),
        p95_us: percentile(&samples_us, 95.0),
        p99_us: percentile(&samples_us, 99.0),
        mean_us: if count > 0 { sum / count as u64 } else { 0 },
        max_us: samples_us.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 99.0), 42);
    }

    #[test]
    fn summary_over_window() {
        let s = summarize(vec![300, 100, 200, 400], Duration::from_secs(2));
        assert_eq!(s.count, 4);
        assert_eq!(s.p50_us, 200);
        assert_eq!(s.max_us, 400);
        assert_eq!(s.mean_us, 250);
        assert!((s.throughput_qps - 2.0).abs() < 1e-9);
    }
}
