//! Latency aggregation for the load generator.
//!
//! The implementation moved to [`ppgnn_telemetry`] so loadgen, mallory,
//! the bench crate, and the server share one definition; this module
//! re-exports it for source compatibility.

pub use ppgnn_telemetry::{percentile, summarize, LatencySummary};
