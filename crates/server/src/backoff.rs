//! Client retry pacing: a jittered exponential backoff schedule.
//!
//! The schedule is a pure, seedable value type — no clocks, no I/O —
//! so its invariants (bounded by the cap, honoring the server's
//! `retry_after_ms` hint as a floor, deterministic per seed) are
//! directly property-testable. [`crate::GroupClient`] drives one
//! schedule per query attempt sequence and enforces the wall-clock
//! budget around it.

use std::time::Duration;

/// Tunables for the client's retry loop.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// First-retry backoff; doubles per attempt.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub cap: Duration,
    /// Total wall-clock budget for one query including all retries;
    /// once exceeded the last error surfaces to the caller.
    pub budget: Duration,
    /// Maximum number of send attempts (first try included).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            budget: Duration::from_secs(60),
            max_attempts: 10,
        }
    }
}

/// The live state of one retry sequence.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    attempt: u32,
    rng_state: u64,
}

impl BackoffSchedule {
    /// Starts a schedule; `seed` makes the jitter reproducible.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        BackoffSchedule {
            policy,
            attempt: 0,
            rng_state: seed,
        }
    }

    /// Retries consumed so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Whether another attempt is allowed by the policy's count limit.
    pub fn attempts_left(&self) -> bool {
        // `attempt` counts completed retries; the first try is free.
        self.attempt + 1 < self.policy.max_attempts
    }

    /// The un-jittered backoff envelope for a given retry index:
    /// `base << attempt`, saturating, capped at `cap`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        let base = self.policy.base.as_nanos() as u64;
        let raw = base.saturating_shl(attempt.min(63));
        Duration::from_nanos(raw).min(self.policy.cap)
    }

    /// Consumes one retry and returns how long to sleep before it.
    ///
    /// The sleep is the jittered envelope — uniform in
    /// `[envelope/2, envelope]` — raised to at least the server's
    /// `retry_after_ms` hint when one was given. The hint is a floor,
    /// not a ceiling: it may exceed the cap.
    pub fn next_delay(&mut self, retry_after_ms: Option<u32>) -> Duration {
        let envelope = self.envelope(self.attempt);
        self.attempt += 1;
        let nanos = envelope.as_nanos() as u64;
        let half = nanos / 2;
        let jittered = if half == 0 {
            envelope
        } else {
            Duration::from_nanos(half + self.next_u64() % (nanos - half + 1))
        };
        let floor = Duration::from_millis(retry_after_ms.unwrap_or(0) as u64);
        jittered.max(floor)
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64, self-contained so the schedule is stable across
        // `rand` versions.
        self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            0
        } else if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_monotone_and_capped() {
        let s = BackoffSchedule::new(RetryPolicy::default(), 0);
        let mut prev = Duration::ZERO;
        for attempt in 0..80 {
            let e = s.envelope(attempt);
            assert!(e >= prev, "envelope shrank at attempt {attempt}");
            assert!(e <= s.policy.cap);
            prev = e;
        }
        assert_eq!(s.envelope(79), s.policy.cap);
    }

    #[test]
    fn same_seed_same_delays() {
        let mut a = BackoffSchedule::new(RetryPolicy::default(), 99);
        let mut b = BackoffSchedule::new(RetryPolicy::default(), 99);
        for _ in 0..20 {
            assert_eq!(a.next_delay(None), b.next_delay(None));
        }
    }

    #[test]
    fn hint_is_a_floor() {
        let mut s = BackoffSchedule::new(RetryPolicy::default(), 5);
        let d = s.next_delay(Some(10_000));
        assert!(d >= Duration::from_secs(10));
    }

    #[test]
    fn attempt_budget_counts_down() {
        let policy = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let mut s = BackoffSchedule::new(policy, 1);
        assert!(s.attempts_left());
        s.next_delay(None);
        assert!(s.attempts_left());
        s.next_delay(None);
        assert!(!s.attempts_left());
    }
}
