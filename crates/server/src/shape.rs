//! Constant-shape responses: the wire-shape side-channel defense.
//!
//! Even with plaintext redacted from traces (DESIGN.md §13), a passive
//! network observer still sees two distributions per response: its
//! **size** (`AnswerMessage::byte_len` is a function of key bits,
//! packing level, and k) and its **latency** (candidate evaluation and
//! sanitation scale with δ′ and the partition shape). Both are exactly
//! the traffic-analysis leak class this module closes (DESIGN.md §16):
//!
//! * **Padding** — under [`ShapeMode::Padded`], every response frame on
//!   a session lane is stretched to a per-lane constant derived from
//!   the policy *bounds* (`max_key_bits`, `max_k`), not from the
//!   session that triggered it: `Answer` frames to
//!   [`ShapePolicy::answer_target`], `Busy`/`Error`/
//!   `SubscriptionUpdate` frames to [`ShapePolicy::control_target`].
//!   A handshake exceeding the bounds is refused outright (a session
//!   the targets cannot cover would burst the envelope and leak).
//! * **Latency quantization** — responses release only on multiples of
//!   [`ShapePolicy::latency_quantum`] measured from request arrival:
//!   the observer sees `⌈t/q⌉·q`, collapsing every sub-quantum timing
//!   difference into one bucket.
//!
//! What shaping deliberately does **not** hide: the frame-type byte
//! (an observer can tell an answer from a shed either way — frames are
//! not encrypted, only their parameters are), request-direction sizes
//! (the query the *client* sends still scales with δ′; the server
//! cannot pad the client's bytes), and load-correlated queueing above
//! the quantum. The `observer` binary measures exactly what is left —
//! see DESIGN.md §16 for the residual budget.

use std::time::Duration;

use ppgnn_paillier::packing::Packer;

/// Whether the server shapes its responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShapeMode {
    /// No padding, no holds: responses leave as soon as they exist.
    #[default]
    Off,
    /// Pad to the policy targets and release on quantum boundaries.
    Padded,
}

impl ShapeMode {
    /// Wire tag carried in `HelloAck` (0 = off, 1 = padded).
    pub fn to_u8(self) -> u8 {
        match self {
            ShapeMode::Off => 0,
            ShapeMode::Padded => 1,
        }
    }

    /// Parses a wire tag.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(ShapeMode::Off),
            1 => Some(ShapeMode::Padded),
            _ => None,
        }
    }

    /// CLI/display name (`--shape off|padded`).
    pub fn name(self) -> &'static str {
        match self {
            ShapeMode::Off => "off",
            ShapeMode::Padded => "padded",
        }
    }

    /// Inverse of [`ShapeMode::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(ShapeMode::Off),
            "padded" => Some(ShapeMode::Padded),
            _ => None,
        }
    }
}

/// `AnswerPayload` framing overhead: request_id + two_phase + replayed.
const ANSWER_PAYLOAD_OVERHEAD: usize = 6;
/// Largest control-lane payload: `ErrorPayload` at its message cap
/// (request_id 4 + code 2 + msg_len 2 + 512 capped message bytes),
/// which dominates `Busy` (8) and `SubscriptionUpdate` (25).
const CONTROL_PAYLOAD_MAX: usize = 4 + 2 + 2 + 512;
/// Targets round up to this granule so near-boundary policy changes
/// don't produce odd one-off sizes.
const TARGET_GRANULE: usize = 64;

/// The server-wide response-shape policy.
///
/// The targets are functions of the *bounds*, shared by every session:
/// deriving them per-session would re-open the channel (two sessions
/// with different k would emit two distinguishable constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapePolicy {
    /// Off or padded.
    pub mode: ShapeMode,
    /// Largest Paillier key size (bits) a padded server admits.
    pub max_key_bits: usize,
    /// Largest per-query answer count `k` a padded server admits (the
    /// wire value — a `subscribe` handshake carries `k + 1` for its
    /// runner-up sentinel, so size this one above the largest
    /// subscribing `k`).
    pub max_k: usize,
    /// Latency bucket width; responses release on multiples of it.
    pub latency_quantum: Duration,
}

impl Default for ShapePolicy {
    fn default() -> Self {
        ShapePolicy::off()
    }
}

impl ShapePolicy {
    /// The no-op policy: nothing padded, nothing held.
    pub fn off() -> Self {
        ShapePolicy {
            mode: ShapeMode::Off,
            max_key_bits: 0,
            max_k: 0,
            latency_quantum: Duration::ZERO,
        }
    }

    /// A padded policy admitting sessions up to (`max_key_bits`,
    /// `max_k`) with `latency_quantum` release buckets.
    pub fn padded(max_key_bits: usize, max_k: usize, latency_quantum: Duration) -> Self {
        ShapePolicy {
            mode: ShapeMode::Padded,
            max_key_bits,
            max_k,
            latency_quantum,
        }
    }

    /// Whether responses are shaped at all.
    pub fn is_padded(&self) -> bool {
        self.mode == ShapeMode::Padded
    }

    /// Constant on-wire size (payload + pad, past the fixed header) of
    /// every `Answer` frame; 0 when shaping is off.
    ///
    /// Upper bound over every session the policy admits: answer arity
    /// is `Packer::packed_len(k + 1)` columns (§8.2 packing — the
    /// count header plus k records, zero-padded to constant height),
    /// each an ε₁ or ε₂ ciphertext of `(s + 1)·key_bits/8` bytes. The
    /// s = 1 packing height with the ε₂ ciphertext width dominates
    /// every real (variant, phase) combination.
    pub fn answer_target(&self) -> usize {
        if !self.is_padded() {
            return 0;
        }
        let mut worst = 0;
        for pack_s in 1..=2usize {
            let height = Packer::new(self.max_key_bits, pack_s).packed_len(self.max_k + 1);
            for cipher_s in 1..=2usize {
                worst = worst.max(height * ((cipher_s + 1) * self.max_key_bits / 8));
            }
        }
        round_up(ANSWER_PAYLOAD_OVERHEAD + worst)
    }

    /// Constant on-wire size of every control-lane response (`Busy`,
    /// `Error`, `SubscriptionUpdate`); 0 when shaping is off.
    pub fn control_target(&self) -> usize {
        if !self.is_padded() {
            return 0;
        }
        round_up(CONTROL_PAYLOAD_MAX)
    }

    /// Pad bytes to append to a `payload_len`-byte frame on `lane`.
    ///
    /// Admission guarantees every real payload fits under its lane
    /// target; an oversized payload (only reachable through a policy
    /// bug) saturates to zero rather than corrupting the frame — the
    /// envelope degrades, the protocol does not.
    pub fn pad_for(&self, lane: Lane, payload_len: usize) -> usize {
        let target = match lane {
            Lane::Answer => self.answer_target(),
            Lane::Control => self.control_target(),
        };
        debug_assert!(
            target == 0 || payload_len <= target,
            "payload {payload_len} exceeds {lane:?} shape target {target}"
        );
        target.saturating_sub(payload_len)
    }

    /// How much longer to hold a response whose request arrived
    /// `elapsed` ago, so it releases exactly on a quantum boundary.
    /// Zero when shaping is off (or already on a boundary).
    pub fn hold_for(&self, elapsed: Duration) -> Duration {
        if !self.is_padded() || self.latency_quantum.is_zero() {
            return Duration::ZERO;
        }
        let q = self.latency_quantum.as_nanos();
        let t = elapsed.as_nanos();
        let rem = t % q;
        if rem == 0 && t > 0 {
            return Duration::ZERO;
        }
        let hold = q - rem;
        Duration::from_nanos(u64::try_from(hold).unwrap_or(u64::MAX))
    }

    /// Whether a handshake's negotiated (`key_bits`, `k`) fits under
    /// the padding envelope. Always true when shaping is off.
    pub fn admits(&self, key_bits: usize, k: usize) -> bool {
        !self.is_padded() || (key_bits <= self.max_key_bits && k <= self.max_k)
    }
}

/// Which shape target a response frame pads to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// `Answer` frames.
    Answer,
    /// `Busy` / `Error` / `SubscriptionUpdate` frames.
    Control,
}

fn round_up(bytes: usize) -> usize {
    bytes.div_ceil(TARGET_GRANULE) * TARGET_GRANULE
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ShapePolicy {
        ShapePolicy::padded(128, 16, Duration::from_millis(200))
    }

    #[test]
    fn off_policy_is_inert() {
        let p = ShapePolicy::off();
        assert_eq!(p.answer_target(), 0);
        assert_eq!(p.control_target(), 0);
        assert_eq!(p.pad_for(Lane::Answer, 123), 0);
        assert_eq!(p.hold_for(Duration::from_millis(37)), Duration::ZERO);
        assert!(p.admits(4096, 1000));
    }

    #[test]
    fn answer_target_covers_every_admitted_session() {
        let p = policy();
        let target = p.answer_target();
        // Exhaustive sweep of admitted sessions × real (packing,
        // cipher) combinations: none may burst the envelope. Keys start
        // at 80 bits — `PpgnnConfig::validate` rejects anything smaller
        // (it cannot pack one 64-bit answer record), so no session below
        // that ever reaches the shaper.
        for k in 1..=p.max_k {
            for key_bits in [80, 96, 128] {
                for s in 1..=2usize {
                    let height = Packer::new(key_bits, s).packed_len(k + 1);
                    let bytes = 6 + height * ((s + 1) * key_bits / 8);
                    assert!(
                        bytes <= target,
                        "k={k} key={key_bits} s={s}: {bytes} > {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn control_target_covers_the_biggest_error() {
        // ErrorPayload caps its message at 512 bytes (`to_owned_capped`).
        assert!(policy().control_target() >= 4 + 2 + 2 + 512);
    }

    #[test]
    fn targets_depend_on_bounds_not_sessions() {
        // Same policy, any payload: same total (payload + pad).
        let p = policy();
        for lane in [Lane::Answer, Lane::Control] {
            let target = match lane {
                Lane::Answer => p.answer_target(),
                Lane::Control => p.control_target(),
            };
            for len in [0, 1, 8, 100, target] {
                assert_eq!(len + p.pad_for(lane, len), target);
            }
        }
    }

    #[test]
    fn hold_releases_on_quantum_boundaries() {
        let p = policy();
        let q = Duration::from_millis(200);
        // Mid-bucket holds to the next boundary...
        assert_eq!(
            p.hold_for(Duration::from_millis(37)),
            q - Duration::from_millis(37)
        );
        assert_eq!(
            p.hold_for(Duration::from_millis(201)),
            q - Duration::from_millis(1)
        );
        // ...an exact boundary releases immediately...
        assert_eq!(p.hold_for(q), Duration::ZERO);
        assert_eq!(p.hold_for(q * 3), Duration::ZERO);
        // ...and zero elapsed still waits a full quantum (a response
        // cannot release faster than the bucket it started).
        assert_eq!(p.hold_for(Duration::ZERO), q);
    }

    #[test]
    fn admission_tracks_the_bounds() {
        let p = policy();
        assert!(p.admits(128, 16));
        assert!(!p.admits(256, 2));
        assert!(!p.admits(64, 17));
    }

    #[test]
    fn mode_tags_round_trip() {
        for mode in [ShapeMode::Off, ShapeMode::Padded] {
            assert_eq!(ShapeMode::from_u8(mode.to_u8()), Some(mode));
            assert_eq!(ShapeMode::from_name(mode.name()), Some(mode));
        }
        assert_eq!(ShapeMode::from_u8(7), None);
        assert_eq!(ShapeMode::from_name("quantized"), None);
    }
}
