//! `observer`: the passive network adversary and its CI gate.
//!
//! Spins up matched in-process server pairs (shape off / shape padded),
//! drives known-different workloads against each (δ′ 6 vs 12, k 2 vs
//! 8, sanitation off vs on), records only what an on-path eavesdropper
//! sees — response frame sizes and request→response latencies — and
//! runs a permutation Kolmogorov–Smirnov test per (scenario, mode,
//! channel). See `ppgnn_server::observer` for the statistics.
//!
//! ```text
//! observer [--seed 7] [--samples 30] [--warmup 2] [--permutations 1000]
//!          [--quantum-ms 200] [--latency-bin-ms 25] [--pois 200]
//!          [--json PATH] [--bench-json PATH]
//! ```
//!
//! Exit status is the two-direction gate: 0 when the off-mode server
//! was distinguished (p < 0.01 on some channel) AND the padded server
//! was not (p ≥ 0.05 on every channel); 1 otherwise; 2 on usage
//! errors. `--json` writes the full distribution report (the CI
//! artifact) before the gate is evaluated, so a failing run still
//! leaves its evidence behind. `--bench-json` merges the padded-mode
//! overhead numbers into an existing BENCH_server.json as a `"shape"`
//! section.

use std::time::Duration;

use ppgnn_server::observer::ObserverConfig;
use ppgnn_server::run_observer;
use ppgnn_server::ShapeMode;

struct Args {
    config: ObserverConfig,
    json: Option<String>,
    bench_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: ObserverConfig::default(),
        json: None,
        bench_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--seed" => args.config.seed = parse(&value("--seed")?)?,
            "--samples" => args.config.samples_per_arm = parse(&value("--samples")?)?,
            "--warmup" => args.config.warmup_per_arm = parse(&value("--warmup")?)?,
            "--permutations" => args.config.permutations = parse(&value("--permutations")?)?,
            "--quantum-ms" => {
                args.config.quantum = Duration::from_millis(parse(&value("--quantum-ms")?)?)
            }
            "--latency-bin-ms" => {
                args.config.latency_bin = Duration::from_millis(parse(&value("--latency-bin-ms")?)?)
            }
            "--pois" => args.config.pois = parse(&value("--pois")?)?,
            "--json" => args.json = Some(value("--json")?),
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--help" | "-h" => {
                println!(
                    "usage: observer [--seed S] [--samples N] [--warmup W] \
                     [--permutations R] [--quantum-ms MS] [--latency-bin-ms MS] \
                     [--pois P] [--json PATH] [--bench-json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.config.samples_per_arm < 2 {
        return Err("--samples must be at least 2".into());
    }
    if args.config.permutations == 0 {
        return Err("--permutations must be at least 1".into());
    }
    if args.config.quantum.is_zero() || args.config.latency_bin >= args.config.quantum {
        return Err("--latency-bin-ms must be positive and below --quantum-ms".into());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

/// Splices `"shape": {...}` into an existing top-level JSON object,
/// replacing a previous `"shape"` section if one is present.
fn merge_shape_section(bench: &str, shape: &str) -> Result<String, String> {
    let trimmed = bench.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .ok_or("bench json does not end with '}'")?;
    // Drop an existing "shape" section (always the last, since this is
    // the only writer that appends one).
    let body = match body.find("\"shape\":") {
        Some(at) => body[..at].trim_end().trim_end_matches(','),
        None => body.trim_end(),
    };
    let sep = if body.trim_end().ends_with('{') {
        ""
    } else {
        ","
    };
    Ok(format!("{body}{sep}\"shape\":{shape}}}\n"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("observer: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "[observer] seed={} samples={}/arm quantum={}ms bin={}ms permutations={}",
        args.config.seed,
        args.config.samples_per_arm,
        args.config.quantum.as_millis(),
        args.config.latency_bin.as_millis(),
        args.config.permutations,
    );
    let report = match run_observer(&args.config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("observer: run failed: {e}");
            std::process::exit(1);
        }
    };
    for cell in &report.scenarios {
        eprintln!(
            "[observer] {:>8} mode={:<6} size: D={:.3} p={:.4} ({:.0}B vs {:.0}B)  \
             latency: D={:.3} p={:.4} ({:.0}us vs {:.0}us)",
            cell.scenario,
            cell.mode.name(),
            cell.size.ks_stat,
            cell.size.p_value,
            cell.size.mean_a,
            cell.size.mean_b,
            cell.latency.ks_stat,
            cell.latency.p_value,
            cell.latency.mean_a,
            cell.latency.mean_b,
        );
    }
    // The artifact is written before the gate: a failing run must
    // still leave its distributions behind for the post-mortem.
    if let Some(path) = &args.json {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("observer: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[observer] report written to {path}");
    }
    if let Some(path) = &args.bench_json {
        let merged = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|bench| merge_shape_section(&bench, &report.shape_json()));
        match merged {
            Ok(out) => {
                if let Err(e) = std::fs::write(path, out) {
                    eprintln!("observer: writing {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("[observer] shape overhead merged into {path}");
            }
            Err(e) => {
                eprintln!("observer: merging into {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    let off_ok = report.off_distinguishable();
    let padded_leak = report.padded_distinguishable();
    eprintln!(
        "[observer] off distinguishable: {off_ok} (need true) | padded distinguishable: \
         {padded_leak} (need false) | padded p50 overhead: {}us, answer {}B -> {}B",
        report.padded_p50_us.saturating_sub(report.off_p50_us),
        report.off_answer_bytes,
        report.padded_answer_bytes,
    );
    if !off_ok {
        eprintln!(
            "observer: GATE FAILED: the unshaped ({}) server was not distinguishable — \
             the harness has no statistical power, so a padded pass would be vacuous",
            ShapeMode::Off.name()
        );
        std::process::exit(1);
    }
    if padded_leak {
        eprintln!(
            "observer: GATE FAILED: the {} server is distinguishable — the shape \
             defense leaks",
            ShapeMode::Padded.name()
        );
        std::process::exit(1);
    }
    println!("observer: gate passed (off leaks, padded does not)");
}
