//! Load generator: N concurrent client groups hammer a PPGNN server and
//! report throughput, latency percentiles, and resilience counters.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--groups 8] [--queries 13] [--users 2]
//!         [--keysize 128] [--k 2] [--d 3] [--delta 6] [--opt] [--seed 7]
//!         [--sanitize] [--bench-json PATH] [--require-stages a,b,c]
//!         [--moving] [--ticks 12]
//!         [--chaos-seed S] [--chaos-delay-prob P] [--chaos-delay-ms MS]
//!         [--chaos-corrupt-prob P] [--chaos-truncate-prob P]
//!         [--chaos-sever-prob P]
//! ```
//!
//! Without `--addr`, an in-process server is spun up on an ephemeral
//! port (same defaults as `ppgnn-server`), so the binary is
//! self-contained. The `--chaos-*` flags arm seeded fault injection on
//! that in-process server's connections; the client's built-in retry
//! (which honors the server's `retry_after_ms` hint) rides through the
//! faults, and sheds, retries, reconnects, and replayed answers are
//! reported per group and in total.
//!
//! Observability: `--bench-json PATH` writes a machine-readable report
//! (`BENCH_server.json` in CI) with the run metadata, the end-to-end
//! latency summary, and the full telemetry snapshot — per-stage
//! p50/p95/p99 for every pipeline stage plus the crypto op and service
//! counters. For an in-process run the snapshot comes straight off the
//! shared registry; against `--addr` the client-side stages are
//! overlaid with the server's own `Stats` reply. `--require-stages`
//! names stages that must have non-zero counts, and exits 1 when one
//! is missing — the CI bench-smoke gate.
//!
//! Tracing: `--trace-out PATH` arms the span collector
//! (`ppgnn_telemetry::trace`) for the run and writes every kept trace
//! as Chrome `trace_event` JSON to PATH — load it in Perfetto or
//! `chrome://tracing` to see the client→server span tree per query.
//! In-process runs capture both halves off the shared tracer; against
//! `--addr` the server half is fetched over the wire (`TraceFetch`)
//! and merged. `--trace-slow-us` sets the always-keep slow threshold
//! and `--trace-sample-permille` the probabilistic tail keep rate
//! (default with `--trace-out`: keep everything). The run exits 1 if
//! tracing was requested but no trace was kept — the CI trace-smoke
//! gate.
//!
//! Moving groups: `--moving` switches to the live-world soak — groups
//! on seeded drifting trajectories hold standing queries (`Subscribe`)
//! against an in-process *dynamic* server while an admin lane churns
//! the POI index. It reports notifications/sec, invalidation precision
//! vs the plaintext oracle, and re-query savings vs naive per-tick
//! re-issue, and exits 1 on any missed invalidation or savings under
//! 2x — the CI moving-smoke gate. `--seed` and `--ticks` shape the
//! run; `--require-stages index-mutate,invalidate-scan,fanout-notify`
//! additionally gates on the live-world pipeline stages.
//!
//! Crash chaos: `--crash` runs the kill-mid-soak harness instead — a
//! child `ppgnn-server` on a durable `--data-dir` is SIGKILLed at
//! seeded ticks and restarted, and the run exits 1 unless recovery is
//! perfect (see `ppgnn_server::crash`). `--require-stages
//! wal-append,recover-replay` gates on the durability pipeline stages,
//! fetched from the child over the wire — the CI crash-smoke gate.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppgnn_core::{Lsp, PpgnnConfig, Variant};
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_server::frame::{read_frame, write_frame, DEFAULT_MAX_PAYLOAD};
use ppgnn_server::{
    run_crash_soak, run_moving_soak, serve_world, summarize, ClientStats, CrashSoakConfig,
    FaultConfig, FrameType, GroupClient, HealthSnapshot, LatencySummary, MovingSoakConfig,
    PongPayload, ServerConfig, ServerError, SloConfig, StatsReplyPayload, TelemetrySnapshot,
    TraceReplyPayload,
};
use ppgnn_telemetry::costmodel::CostModel;
use ppgnn_telemetry::json;
use ppgnn_telemetry::trace::{self, TraceSegment, TracerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    addr: Option<String>,
    moving: bool,
    crash: bool,
    server_bin: Option<String>,
    data_dir: Option<String>,
    ticks: usize,
    groups: usize,
    queries: usize,
    users: usize,
    keysize: usize,
    k: usize,
    d: usize,
    delta: usize,
    opt: bool,
    sanitize: bool,
    seed: u64,
    pois: usize,
    bench_json: Option<String>,
    require_stages: Option<String>,
    trace_out: Option<String>,
    trace_slow_us: u64,
    trace_sample_permille: u32,
    chaos: FaultConfig,
    parallelism: usize,
    naive_crypto: bool,
    offline_randomness: bool,
    repeats: usize,
    slo: bool,
    check_cost_model: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        moving: false,
        crash: false,
        server_bin: None,
        data_dir: None,
        ticks: 12,
        groups: 8,
        queries: 13,
        users: 2,
        keysize: 128,
        k: 2,
        d: 3,
        delta: 6,
        opt: false,
        sanitize: false,
        seed: 7,
        pois: 400,
        bench_json: None,
        require_stages: None,
        trace_out: None,
        trace_slow_us: TracerConfig::default().slow_us,
        trace_sample_permille: 1000,
        chaos: FaultConfig::off(1),
        parallelism: 1,
        naive_crypto: false,
        offline_randomness: false,
        repeats: 1,
        slo: false,
        check_cost_model: false,
    };
    args.chaos.max_delay = Duration::from_millis(20);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--moving" => args.moving = true,
            "--crash" => args.crash = true,
            "--server-bin" => args.server_bin = Some(value("--server-bin")?),
            "--data-dir" => args.data_dir = Some(value("--data-dir")?),
            "--ticks" => args.ticks = parse(&value("--ticks")?)?,
            "--groups" => args.groups = parse(&value("--groups")?)?,
            "--queries" => args.queries = parse(&value("--queries")?)?,
            "--users" => args.users = parse(&value("--users")?)?,
            "--keysize" => args.keysize = parse(&value("--keysize")?)?,
            "--k" => args.k = parse(&value("--k")?)?,
            "--d" => args.d = parse(&value("--d")?)?,
            "--delta" => args.delta = parse(&value("--delta")?)?,
            "--pois" => args.pois = parse(&value("--pois")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--opt" => args.opt = true,
            "--sanitize" => args.sanitize = true,
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--require-stages" => args.require_stages = Some(value("--require-stages")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--trace-slow-us" => args.trace_slow_us = parse(&value("--trace-slow-us")?)?,
            "--trace-sample-permille" => {
                args.trace_sample_permille = parse(&value("--trace-sample-permille")?)?;
                if args.trace_sample_permille > 1000 {
                    return Err("--trace-sample-permille must be 0..=1000".into());
                }
            }
            "--chaos-seed" => args.chaos.seed = parse(&value("--chaos-seed")?)?,
            "--chaos-delay-prob" => args.chaos.delay_prob = parse(&value("--chaos-delay-prob")?)?,
            "--chaos-delay-ms" => {
                args.chaos.max_delay = Duration::from_millis(parse(&value("--chaos-delay-ms")?)?)
            }
            "--chaos-corrupt-prob" => {
                args.chaos.corrupt_prob = parse(&value("--chaos-corrupt-prob")?)?
            }
            "--chaos-truncate-prob" => {
                args.chaos.truncate_prob = parse(&value("--chaos-truncate-prob")?)?
            }
            "--chaos-sever-prob" => args.chaos.sever_prob = parse(&value("--chaos-sever-prob")?)?,
            "--parallelism" => args.parallelism = parse(&value("--parallelism")?)?,
            "--naive-crypto" => args.naive_crypto = true,
            "--offline-randomness" => args.offline_randomness = true,
            "--repeats" => {
                args.repeats = parse(&value("--repeats")?)?;
                if args.repeats == 0 {
                    return Err("--repeats must be at least 1".into());
                }
            }
            "--slo" => args.slo = true,
            "--check-cost-model" => args.check_cost_model = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--groups N] [--queries M] \
                     [--users U] [--keysize B] [--k K] [--d D] [--delta DELTA] \
                     [--pois P] [--opt] [--sanitize] [--seed S] \
                     [--moving] [--ticks T] \
                     [--crash] [--server-bin PATH] [--data-dir PATH] \
                     [--bench-json PATH] [--require-stages a,b,c] \
                     [--trace-out PATH] [--trace-slow-us US] \
                     [--trace-sample-permille P] \
                     [--chaos-seed S] [--chaos-delay-prob P] [--chaos-delay-ms MS] \
                     [--chaos-corrupt-prob P] [--chaos-truncate-prob P] \
                     [--chaos-sever-prob P] [--parallelism T] [--naive-crypto] \
                     [--offline-randomness] [--repeats N] [--slo] \
                     [--check-cost-model]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.chaos.is_active() && args.addr.is_some() {
        return Err("--chaos-* flags require the in-process server (drop --addr)".into());
    }
    if args.moving && args.addr.is_some() {
        return Err("--moving boots its own dynamic in-process server (drop --addr)".into());
    }
    if args.crash && args.addr.is_some() {
        return Err("--crash spawns and kills its own child server (drop --addr)".into());
    }
    if args.crash && args.moving {
        return Err("--crash and --moving are distinct modes; pick one".into());
    }
    if args.check_cost_model && args.addr.is_some() {
        return Err("--check-cost-model needs the in-process server (drop --addr)".into());
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

/// One group's worth of results, joined back on the main thread.
struct GroupReport {
    group: usize,
    latencies_us: Vec<u64>,
    errors: u64,
    stats: ClientStats,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    if args.moving {
        run_moving(&args);
    }
    if args.crash {
        run_crash(&args);
    }
    if args.trace_out.is_some() {
        // Arm the collector before any client exists so the very first
        // query is already traced. The ring must hold the whole run:
        // tail-kept segments beyond capacity silently evict the oldest.
        trace::global().configure(&TracerConfig {
            enabled: true,
            slow_us: args.trace_slow_us,
            keep_permille: args.trace_sample_permille,
            capacity: (2 * args.groups * args.queries).max(256),
            ..TracerConfig::default()
        });
    }
    let config = PpgnnConfig {
        k: args.k,
        d: args.d,
        delta: args.delta,
        keysize: args.keysize,
        sanitize: args.sanitize,
        offline_randomness: args.offline_randomness,
        variant: if args.opt {
            Variant::Opt
        } else {
            Variant::Plain
        },
        ..PpgnnConfig::fast_test()
    };

    // Spin up an in-process server when no address was given.
    let local_server = if args.addr.is_none() {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xdb);
        let pois: Vec<Poi> = (0..args.pois)
            .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
            .collect();
        let lsp = Arc::new(
            Lsp::new(pois, config.clone())
                .with_parallelism(args.parallelism)
                .with_naive_crypto(args.naive_crypto),
        );
        let server_config = ServerConfig {
            fault: args.chaos.is_active().then(|| args.chaos.clone()),
            selection_parallelism: args.parallelism.max(1),
            naive_crypto: args.naive_crypto,
            slo: args.slo.then(SloConfig::default),
            ..ServerConfig::default()
        };
        let handle = match serve_world(lsp, "127.0.0.1:0", server_config) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("loadgen: failed to start in-process server: {e}");
                std::process::exit(1);
            }
        };
        if args.chaos.is_active() {
            println!(
                "loadgen: in-process server on {} (chaos seed {})",
                handle.local_addr(),
                args.chaos.seed
            );
        } else {
            println!("loadgen: in-process server on {}", handle.local_addr());
        }
        Some(handle)
    } else {
        None
    };
    let addr = match (&args.addr, &local_server) {
        (Some(a), _) => a.clone(),
        (None, Some(h)) => h.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let start = Instant::now();
    let mut all_latencies = Vec::with_capacity(args.repeats * args.groups * args.queries);
    let mut reports = Vec::with_capacity(args.repeats * args.groups);
    let mut join_failures = 0u64;
    // `--repeats N` re-runs the whole query phase N times against the
    // same server, with distinct seeds and group IDs per repeat (same
    // IDs would trip the registry's request-ID anti-rewind gate). The
    // per-repeat summaries measure run-to-run variance — the spread CI
    // derives its per-stage regression thresholds from.
    let mut repeat_summaries: Vec<LatencySummary> = Vec::with_capacity(args.repeats);
    for repeat in 0..args.repeats {
        let repeat_start = Instant::now();
        let handles: Vec<_> = (0..args.groups)
            .map(|g| {
                let addr = addr.clone();
                let config = config.clone();
                let seed = args.seed.wrapping_add((repeat as u64) << 32);
                let group_id = (repeat * args.groups + g) as u64 + 1;
                let (users, queries) = (args.users, args.queries);
                std::thread::spawn(move || {
                    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(g as u64));
                    let mut report = GroupReport {
                        group: g,
                        latencies_us: Vec::with_capacity(queries),
                        errors: 0,
                        stats: ClientStats::default(),
                    };
                    // The handshake itself can be hit by an injected fault;
                    // it carries no session state, so just connect again.
                    let mut client = None;
                    for attempt in 0u32..5 {
                        match GroupClient::connect(
                            addr.as_str(),
                            group_id,
                            config.clone(),
                            Rect::UNIT,
                            users,
                            &mut rng,
                        ) {
                            Ok(c) => {
                                client = Some(c);
                                break;
                            }
                            Err(e) => {
                                eprintln!("group {g}: connect attempt {attempt} failed: {e}");
                                std::thread::sleep(Duration::from_millis(10 << attempt));
                            }
                        }
                    }
                    let Some(mut client) = client else {
                        report.errors += 1;
                        return report;
                    };
                    for _ in 0..queries {
                        let locations: Vec<Point> = (0..users)
                            .map(|_| Point::new(rng.gen(), rng.gen()))
                            .collect();
                        let t0 = Instant::now();
                        // Busy sheds and transient faults are retried
                        // inside the client (honoring retry_after_ms);
                        // only budget-exhausted or deterministic failures
                        // surface here.
                        match client.query(&locations, &mut rng) {
                            Ok(answer) => {
                                assert!(!answer.is_empty(), "empty answer");
                                report.latencies_us.push(t0.elapsed().as_micros() as u64);
                            }
                            Err(e) => {
                                eprintln!("group {g}: query failed: {e}");
                                report.errors += 1;
                            }
                        }
                    }
                    report.stats = client.stats();
                    client.goodbye();
                    report
                })
            })
            .collect();

        let mut repeat_latencies = Vec::with_capacity(args.groups * args.queries);
        for h in handles {
            match h.join() {
                Ok(r) => {
                    repeat_latencies.extend(r.latencies_us.iter().copied());
                    reports.push(r);
                }
                Err(_) => join_failures += 1,
            }
        }
        repeat_summaries.push(summarize(repeat_latencies.clone(), repeat_start.elapsed()));
        all_latencies.extend(repeat_latencies);
    }
    let elapsed = start.elapsed();
    let summary = summarize(all_latencies, elapsed);
    let variance = measure_variance(&repeat_summaries);

    println!("group   ok  errors  sheds  retries  reconnects  replays");
    let mut errors = join_failures;
    let mut total = ClientStats::default();
    for r in &reports {
        println!(
            "{:>5} {:>4} {:>7} {:>6} {:>8} {:>11} {:>8}",
            r.group,
            r.latencies_us.len(),
            r.errors,
            r.stats.busy_sheds,
            r.stats.retries,
            r.stats.reconnects,
            r.stats.replayed_answers,
        );
        errors += r.errors;
        total.busy_sheds += r.stats.busy_sheds;
        total.retries += r.stats.retries;
        total.reconnects += r.stats.reconnects;
        total.replayed_answers += r.stats.replayed_answers;
    }
    if join_failures > 0 {
        eprintln!("loadgen: {join_failures} group thread(s) panicked");
    }

    println!(
        "groups={} queries={} errors={} sheds={} retries={} reconnects={} replays={} \
         elapsed={:.2}s throughput={:.1} qps",
        args.groups,
        summary.count,
        errors,
        total.busy_sheds,
        total.retries,
        total.reconnects,
        total.replayed_answers,
        elapsed.as_secs_f64(),
        summary.throughput_qps
    );
    println!(
        "latency_us p50={} p95={} p99={} mean={} max={}",
        summary.p50_us, summary.p95_us, summary.p99_us, summary.mean_us, summary.max_us
    );
    if let Some(v) = &variance {
        println!(
            "variance over {} repeats: p50 {}..{}us (spread {}‰) p95 {}..{}us (spread {}‰)",
            v.repeats,
            v.p50_min_us,
            v.p50_max_us,
            v.p50_spread_permille,
            v.p95_min_us,
            v.p95_max_us,
            v.p95_spread_permille
        );
    }

    // Capture the observability window *now* so the windowed faces,
    // the cost model, and the SLO burn rates all reflect this run even
    // when it finished inside the ticker's first 1 s interval.
    if let Some(handle) = &local_server {
        handle.flush_windows();
    }

    // In-process runs share one global registry, so the handle snapshot
    // already holds both client- and server-side stages. Against a
    // remote server this process only sees the client stages; fetch the
    // server's own snapshot over the wire and overlay what is missing.
    let snapshot = match &local_server {
        Some(handle) => handle.telemetry_snapshot(),
        None => {
            let mut local = ppgnn_telemetry::global().snapshot();
            match fetch_remote_stats(&addr) {
                Ok(remote) => local.fill_missing_stages_from(&remote),
                Err(e) => eprintln!("loadgen: fetching server stats from {addr}: {e}"),
            }
            local
        }
    };
    if let Some(path) = &args.bench_json {
        let cost = local_server.as_ref().map(|h| h.cost_model());
        let report = bench_report(
            &args,
            &summary,
            errors,
            &total,
            elapsed,
            &snapshot,
            variance.as_ref(),
            cost.as_ref(),
        );
        match std::fs::write(path, report.as_bytes()) {
            Ok(()) => println!("bench report written to {path}"),
            Err(e) => {
                eprintln!("loadgen: writing {path}: {e}");
                errors += 1;
            }
        }
    }
    let mut gate_failed = false;
    if let Some(required) = &args.require_stages {
        let names: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let missing = snapshot.missing_stages(&names);
        if missing.is_empty() {
            println!("required stages all recorded: {}", names.join(", "));
        } else {
            eprintln!(
                "loadgen: required stage metrics missing or zero: {}",
                missing.join(", ")
            );
            gate_failed = true;
        }
    }

    // `--slo` gate: the run fails when any burn rate ran past budget
    // (> 1000 permille = consuming the error budget faster than the
    // objective allows). In-process the health comes off the handle;
    // against `--addr` a sessionless Ping fetches the same snapshot.
    if args.slo {
        let health = match &local_server {
            Some(handle) => Some(handle.health()),
            None => match fetch_remote_health(&addr) {
                Ok(h) => Some(h),
                Err(e) => {
                    eprintln!("loadgen: fetching health from {addr}: {e}");
                    gate_failed = true;
                    None
                }
            },
        };
        if let Some(h) = health {
            let burns = [
                ("latency-fast", h.slo_latency_fast_burn_pm),
                ("latency-slow", h.slo_latency_slow_burn_pm),
                ("error-fast", h.slo_error_fast_burn_pm),
                ("error-slow", h.slo_error_slow_burn_pm),
            ];
            println!(
                "slo burn (permille of budget): latency {}/{} errors {}/{} [fast/slow]",
                burns[0].1, burns[1].1, burns[2].1, burns[3].1
            );
            for (name, pm) in burns {
                if pm > 1000 {
                    eprintln!(
                        "loadgen: SLO {name} burn {pm}\u{2030} exceeds budget (1000\u{2030})"
                    );
                    gate_failed = true;
                }
            }
        }
    }

    // `--check-cost-model` gate: the calibrated per-op constants must
    // predict the windowed paillier stage medians within 25 % — the
    // CI proof that calibration tracks reality, not a stale seed.
    // The 25 % contract only means anything when per-op cost held
    // still across the run; the repeat-to-repeat spread is the
    // instability detector, and past 300‰ the check reports instead of
    // failing (the host moved under the model, the model didn't drift).
    if args.check_cost_model {
        if let Some(handle) = &local_server {
            let unstable_permille = variance
                .as_ref()
                .map(|v| v.p50_spread_permille.max(v.p95_spread_permille))
                .filter(|&s| s > 300);
            let windowed = handle.windowed_snapshot(usize::MAX);
            let model = handle.cost_model();
            let mut checked = 0usize;
            for stage in [
                ppgnn_telemetry::Stage::PaillierEncrypt,
                ppgnn_telemetry::Stage::PaillierDecrypt,
                ppgnn_telemetry::Stage::PaillierDot,
            ] {
                let Some(s) = windowed.stage(stage.name()) else {
                    continue;
                };
                // Thin stages give noisy medians; the gate only judges
                // constants with a statistically meaningful window.
                if s.count < 30 {
                    continue;
                }
                let Some(predicted) = model.predict_stage_median_us(args.keysize as u32, stage)
                else {
                    continue;
                };
                // The EWMA tracks the per-window mean; for tight stage
                // distributions that coincides with the median, for
                // right-skewed ones it sits above it. The prediction
                // must land within 25 % of the window's central band —
                // the median, or failing that the mean — with a 2 µs
                // absolute floor so microsecond-scale stages aren't
                // judged on histogram/timer quantization.
                let p50 = s.p50_us.max(1);
                let mean = (s.total_us / s.count).max(1);
                let rel = |target: u64| predicted.abs_diff(target) * 100 / target;
                let within = |target: u64| predicted.abs_diff(target) <= 2 || rel(target) <= 25;
                let err_pct = rel(p50).min(rel(mean));
                println!(
                    "cost-model: {} predicted {}us actual p50 {}us mean {}us over {} samples ({}% error)",
                    stage.name(),
                    predicted,
                    p50,
                    mean,
                    s.count,
                    err_pct
                );
                checked += 1;
                if !within(p50) && !within(mean) {
                    match unstable_permille {
                        Some(spread) => eprintln!(
                            "loadgen: cost model off by {err_pct}% on {} but the host \
                             was unstable (repeat spread {spread}\u{2030} > 300\u{2030}) - not failing",
                            stage.name()
                        ),
                        None => {
                            eprintln!(
                                "loadgen: cost model off by {err_pct}% on {} (limit 25%)",
                                stage.name()
                            );
                            gate_failed = true;
                        }
                    }
                }
            }
            if checked == 0 {
                eprintln!("loadgen: --check-cost-model found no calibratable stage");
                gate_failed = true;
            }
        }
    }

    if let Some(path) = &args.trace_out {
        // In-process runs share one global tracer, so `segments()`
        // already holds both the client and server halves of every
        // kept trace. Against a remote server this process only kept
        // the client halves; fetch the server's ring over the wire.
        let mut segments = trace::global().segments();
        if args.addr.is_some() {
            match fetch_remote_traces(&addr) {
                Ok(remote) => segments.extend(remote),
                Err(e) => eprintln!("loadgen: fetching server traces from {addr}: {e}"),
            }
        }
        let c = trace::global().counters();
        println!(
            "traces: finished={} kept={} (slow={} error={}) dropped={}",
            c.finished, c.kept, c.kept_slow, c.kept_error, c.dropped
        );
        let mut ids: Vec<u64> = segments.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        match std::fs::write(path, trace::chrome_trace_json(&segments)) {
            Ok(()) => println!(
                "trace events written to {path} ({} traces, {} segments)",
                ids.len(),
                segments.len()
            ),
            Err(e) => {
                eprintln!("loadgen: writing {path}: {e}");
                errors += 1;
            }
        }
        if ids.is_empty() {
            eprintln!("loadgen: tracing was on but no trace was kept");
            gate_failed = true;
        }
    }

    if let Some(handle) = local_server {
        let s = handle.stats();
        println!(
            "server: ok={} err={} busy_shed={} replayed={} worker_panics={} \
             respawned={} faults_injected={}",
            s.queries_ok.load(Ordering::Relaxed),
            s.queries_err.load(Ordering::Relaxed),
            s.busy_shed.load(Ordering::Relaxed),
            s.replayed.load(Ordering::Relaxed),
            s.worker_panics.load(Ordering::Relaxed),
            s.workers_respawned.load(Ordering::Relaxed),
            s.faults_injected.load(Ordering::Relaxed),
        );
        println!(
            "admission: sessions={} evicted={} rejected={} violations={} \
             rate_limited={} strike_disconnects={} slow_reaped={} frame_garbage={}",
            handle.registry().len(),
            handle.registry().evicted(),
            handle.registry().rejected(),
            handle.registry().violations(),
            s.rate_limited.load(Ordering::Relaxed),
            s.strike_disconnects.load(Ordering::Relaxed),
            s.slow_reaped.load(Ordering::Relaxed),
            s.frame_garbage.load(Ordering::Relaxed),
        );
        handle.shutdown();
    }
    if errors > 0 || gate_failed {
        std::process::exit(1);
    }
}

/// The `--moving` mode: drives the moving-group soak — seeded drifting
/// trajectories plus POI churn against an in-process dynamic server —
/// and reports notifications/sec, invalidation precision against the
/// plaintext oracle, and re-query savings vs naive per-tick re-issue.
/// The world shape comes from [`MovingSoakConfig::default`] (tuned so
/// sentinel margins outlive a realistic walking pace); `--seed` and
/// `--ticks` vary the run. Exits 1 on any missed invalidation, any
/// oracle mismatch, or savings under 2x.
fn run_moving(args: &Args) -> ! {
    let mut config = MovingSoakConfig::default();
    config.world.seed = args.seed;
    config.ticks = args.ticks;
    println!(
        "loadgen: moving-group soak, seed {} ({} groups x {} ticks, {} POIs)",
        args.seed, config.world.n_groups, config.ticks, config.world.initial_pois
    );
    let report = match run_moving_soak(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: moving soak transport failed: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());

    // The soak's server is in-process, so the shared registry already
    // holds the live-world stages this mode exists to exercise.
    let snapshot = ppgnn_telemetry::global().snapshot();
    for name in ["index-mutate", "invalidate-scan", "fanout-notify"] {
        match snapshot
            .stages
            .iter()
            .find(|s| s.name == name && s.count > 0)
        {
            Some(s) => println!(
                "stage {:>16}: count={} p50={}us p95={}us max={}us",
                s.name, s.count, s.p50_us, s.p95_us, s.max_us
            ),
            None => println!("stage {name:>16}: never recorded"),
        }
    }
    let mut gate_failed = false;
    if let Some(required) = &args.require_stages {
        let names: Vec<&str> = required
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let missing = snapshot.missing_stages(&names);
        if missing.is_empty() {
            println!("required stages all recorded: {}", names.join(", "));
        } else {
            eprintln!(
                "loadgen: required stage metrics missing or zero: {}",
                missing.join(", ")
            );
            gate_failed = true;
        }
    }
    if report.missed_invalidations > 0 {
        eprintln!(
            "loadgen: {} missed invalidation(s) — the server stayed silent while an answer changed",
            report.missed_invalidations
        );
    }
    if !report.passed() || gate_failed {
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// The `--crash` mode: the kill-mid-soak chaos harness — spawns a
/// child `ppgnn-server` on a durable data dir, SIGKILLs it at seeded
/// ticks mid-soak, restarts it, and verifies zero wrong answers, zero
/// missed invalidations, an unbroken version chain, and idempotent
/// redelivery against the parent's plaintext oracle. `--server-bin`
/// names the victim binary (default: `ppgnn-server` next to this
/// executable); `--data-dir` the durable directory (default: a
/// per-process temp dir); the child's recovery log lands at
/// `<data-dir>/recovery.log` for CI artifact upload. Exits 1 on any
/// correctness deviation or missing required stage.
fn run_crash(args: &Args) -> ! {
    let server_bin = match &args.server_bin {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let sibling = std::env::current_exe()
                .ok()
                .and_then(|p| p.parent().map(|d| d.join("ppgnn-server")));
            match sibling {
                Some(p) if p.exists() => p,
                _ => {
                    eprintln!(
                        "loadgen: cannot find ppgnn-server next to this binary; pass --server-bin"
                    );
                    std::process::exit(2);
                }
            }
        }
    };
    let data_dir = match &args.data_dir {
        Some(p) => std::path::PathBuf::from(p),
        None => std::env::temp_dir().join(format!("ppgnn-crash-{}", std::process::id())),
    };
    let mut config = CrashSoakConfig::new(server_bin, &data_dir);
    config.world.seed = args.seed;
    config.ticks = args.ticks;
    config.recovery_log = Some(data_dir.join("recovery.log"));
    if let Some(required) = &args.require_stages {
        config.extra_required_stages = required
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect();
    }
    println!(
        "loadgen: crash soak, seed {} ({} groups x {} ticks, kills at {:?}, fsync={}, data dir {})",
        args.seed,
        config.world.n_groups,
        config.ticks,
        config.kill_at_ticks,
        config.fsync.name(),
        data_dir.display(),
    );
    let report = match run_crash_soak(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: crash soak failed before the verdict: {e}");
            std::process::exit(1);
        }
    };
    println!("{}", report.render());
    if !report.missing_stages.is_empty() {
        eprintln!(
            "loadgen: required stage metrics missing or zero: {}",
            report.missing_stages.join(", ")
        );
    }
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// Asks a remote server for its telemetry snapshot with a sessionless
/// `Stats` exchange on a fresh connection.
fn fetch_remote_stats(addr: &str) -> Result<TelemetrySnapshot, ServerError> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_frame(&mut stream, FrameType::Stats, &[])?;
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)?;
    match frame.frame_type {
        FrameType::StatsReply => Ok(StatsReplyPayload::decode(&frame.payload)?.snapshot),
        other => Err(ServerError::UnexpectedFrame {
            expected: "StatsReply",
            got: other,
        }),
    }
}

/// Drains a remote server's kept-trace ring with a sessionless
/// `TraceFetch` exchange on a fresh connection.
fn fetch_remote_traces(addr: &str) -> Result<Vec<TraceSegment>, ServerError> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_frame(&mut stream, FrameType::TraceFetch, &[])?;
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)?;
    match frame.frame_type {
        FrameType::TraceReply => Ok(TraceReplyPayload::decode(&frame.payload)?.segments),
        other => Err(ServerError::UnexpectedFrame {
            expected: "TraceReply",
            got: other,
        }),
    }
}

/// The machine-readable bench report (`BENCH_server.json` in CI): run
/// metadata, the end-to-end latency summary, client resilience totals,
/// and the full telemetry snapshot.
#[allow(clippy::too_many_arguments)]
fn bench_report(
    args: &Args,
    summary: &LatencySummary,
    errors: u64,
    total: &ClientStats,
    elapsed: Duration,
    snapshot: &TelemetrySnapshot,
    variance: Option<&Variance>,
    cost: Option<&CostModel>,
) -> String {
    let mut meta = json::Obj::new();
    meta.field_str(
        "mode",
        if args.addr.is_some() {
            "remote"
        } else {
            "in-process"
        },
    );
    meta.field_u64("groups", args.groups as u64);
    meta.field_u64("queries_per_group", args.queries as u64);
    meta.field_u64("users", args.users as u64);
    meta.field_u64("keysize", args.keysize as u64);
    meta.field_u64("k", args.k as u64);
    meta.field_u64("d", args.d as u64);
    meta.field_u64("delta", args.delta as u64);
    meta.field_str("variant", if args.opt { "opt" } else { "plain" });
    meta.field_bool("sanitize", args.sanitize);
    meta.field_bool("chaos", args.chaos.is_active());
    meta.field_u64("seed", args.seed);
    meta.field_u64("elapsed_ms", elapsed.as_millis() as u64);
    meta.field_u64("parallelism", args.parallelism as u64);
    meta.field_bool("naive_crypto", args.naive_crypto);
    meta.field_bool("offline_randomness", args.offline_randomness);
    meta.field_u64("repeats", args.repeats as u64);
    if let Some(v) = variance {
        meta.field_u64("p50_min_us", v.p50_min_us);
        meta.field_u64("p50_max_us", v.p50_max_us);
        meta.field_u64("p50_spread_permille", v.p50_spread_permille);
        meta.field_u64("p95_min_us", v.p95_min_us);
        meta.field_u64("p95_max_us", v.p95_max_us);
        meta.field_u64("p95_spread_permille", v.p95_spread_permille);
    }

    let mut client = json::Obj::new();
    client.field_u64("errors", errors);
    client.field_u64("busy_sheds", total.busy_sheds);
    client.field_u64("retries", total.retries);
    client.field_u64("reconnects", total.reconnects);
    client.field_u64("replayed_answers", total.replayed_answers);

    // The crypto hot path (DESIGN.md §17): how often online encryption
    // was served by a precomputed randomizer instead of a fresh modpow.
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    };
    let (hits, misses) = (counter("pool-hit"), counter("pool-miss"));
    let mut hotpath = json::Obj::new();
    hotpath.field_u64("pool_hits", hits);
    hotpath.field_u64("pool_misses", misses);
    hotpath.field_f64(
        "pool_hit_ratio",
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        },
    );

    let mut obj = json::Obj::new();
    obj.field_raw("meta", &meta.finish());
    obj.field_f64("throughput_qps", summary.throughput_qps);
    obj.field_raw("latency", &summary.to_json());
    obj.field_raw("client", &client.finish());
    obj.field_raw("crypto_hotpath", &hotpath.finish());
    obj.field_raw("telemetry", &snapshot.to_json());
    if let Some(c) = cost {
        obj.field_raw("cost_model", &c.to_json());
    }
    obj.finish()
}

/// Run-to-run latency spread across `--repeats` passes: the raw CI
/// signal for how tight (or flaky) the bench host is, and the input
/// for deriving per-stage regression thresholds.
struct Variance {
    repeats: u64,
    p50_min_us: u64,
    p50_max_us: u64,
    p50_spread_permille: u64,
    p95_min_us: u64,
    p95_max_us: u64,
    p95_spread_permille: u64,
}

fn measure_variance(summaries: &[LatencySummary]) -> Option<Variance> {
    if summaries.len() < 2 {
        return None;
    }
    let spread = |values: &mut dyn Iterator<Item = u64>| -> (u64, u64, u64) {
        let (mut min, mut max) = (u64::MAX, 0u64);
        for v in values {
            min = min.min(v);
            max = max.max(v);
        }
        (min, max, (max - min) * 1000 / max.max(1))
    };
    let (p50_min_us, p50_max_us, p50_spread_permille) =
        spread(&mut summaries.iter().map(|s| s.p50_us));
    let (p95_min_us, p95_max_us, p95_spread_permille) =
        spread(&mut summaries.iter().map(|s| s.p95_us));
    Some(Variance {
        repeats: summaries.len() as u64,
        p50_min_us,
        p50_max_us,
        p50_spread_permille,
        p95_min_us,
        p95_max_us,
        p95_spread_permille,
    })
}

/// Asks a remote server for its health snapshot (live workers, burn
/// rates) with a sessionless `Ping` exchange on a fresh connection.
fn fetch_remote_health(addr: &str) -> Result<HealthSnapshot, ServerError> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    write_frame(&mut stream, FrameType::Ping, &[])?;
    let frame = read_frame(&mut stream, DEFAULT_MAX_PAYLOAD)?;
    match frame.frame_type {
        FrameType::Pong => Ok(PongPayload::decode(&frame.payload)?.health),
        other => Err(ServerError::UnexpectedFrame {
            expected: "Pong",
            got: other,
        }),
    }
}
