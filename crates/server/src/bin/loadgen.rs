//! Load generator: N concurrent client groups hammer a PPGNN server and
//! report throughput and latency percentiles.
//!
//! ```text
//! loadgen [--addr HOST:PORT] [--groups 8] [--queries 13] [--users 2]
//!         [--keysize 128] [--k 2] [--d 3] [--delta 6] [--opt] [--seed 7]
//! ```
//!
//! Without `--addr`, an in-process server is spun up on an ephemeral
//! port (same defaults as `ppgnn-server`), so the binary is
//! self-contained. Every group runs on its own thread with its own
//! keypair; `Busy` sheds are retried after the server's suggested
//! backoff and counted separately from protocol errors.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppgnn_core::{Lsp, PpgnnConfig, Variant};
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_server::{serve, summarize, GroupClient, ServerConfig, ServerError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    addr: Option<String>,
    groups: usize,
    queries: usize,
    users: usize,
    keysize: usize,
    k: usize,
    d: usize,
    delta: usize,
    opt: bool,
    seed: u64,
    pois: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        groups: 8,
        queries: 13,
        users: 2,
        keysize: 128,
        k: 2,
        d: 3,
        delta: 6,
        opt: false,
        seed: 7,
        pois: 400,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--groups" => args.groups = parse(&value("--groups")?)?,
            "--queries" => args.queries = parse(&value("--queries")?)?,
            "--users" => args.users = parse(&value("--users")?)?,
            "--keysize" => args.keysize = parse(&value("--keysize")?)?,
            "--k" => args.k = parse(&value("--k")?)?,
            "--d" => args.d = parse(&value("--d")?)?,
            "--delta" => args.delta = parse(&value("--delta")?)?,
            "--pois" => args.pois = parse(&value("--pois")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--opt" => args.opt = true,
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--addr HOST:PORT] [--groups N] [--queries M] \
                     [--users U] [--keysize B] [--k K] [--d D] [--delta DELTA] \
                     [--pois P] [--opt] [--seed S]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            std::process::exit(2);
        }
    };
    let config = PpgnnConfig {
        k: args.k,
        d: args.d,
        delta: args.delta,
        keysize: args.keysize,
        sanitize: false,
        variant: if args.opt {
            Variant::Opt
        } else {
            Variant::Plain
        },
        ..PpgnnConfig::fast_test()
    };

    // Spin up an in-process server when no address was given.
    let local_server = if args.addr.is_none() {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xdb);
        let pois: Vec<Poi> = (0..args.pois)
            .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
            .collect();
        let lsp = Arc::new(Lsp::new(pois, config.clone()));
        let handle = serve(lsp, "127.0.0.1:0", ServerConfig::default()).expect("bind loopback");
        println!("loadgen: in-process server on {}", handle.local_addr());
        Some(handle)
    } else {
        None
    };
    let addr = match (&args.addr, &local_server) {
        (Some(a), _) => a.clone(),
        (None, Some(h)) => h.local_addr().to_string(),
        (None, None) => unreachable!(),
    };

    let busy_retries = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let handles: Vec<_> = (0..args.groups)
        .map(|g| {
            let addr = addr.clone();
            let config = config.clone();
            let busy_retries = Arc::clone(&busy_retries);
            let errors = Arc::clone(&errors);
            let seed = args.seed;
            let (users, queries) = (args.users, args.queries);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(g as u64));
                let mut latencies_us: Vec<u64> = Vec::with_capacity(queries);
                let mut client = loop {
                    match GroupClient::connect(
                        addr.as_str(),
                        g as u64 + 1,
                        config.clone(),
                        Rect::UNIT,
                        users,
                        &mut rng,
                    ) {
                        Ok(c) => break c,
                        Err(ServerError::ServerBusy { retry_after_ms }) => {
                            busy_retries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                        }
                        Err(e) => {
                            eprintln!("group {g}: connect failed: {e}");
                            errors.fetch_add(1, Ordering::Relaxed);
                            return latencies_us;
                        }
                    }
                };
                for _ in 0..queries {
                    let locations: Vec<Point> = (0..users)
                        .map(|_| Point::new(rng.gen(), rng.gen()))
                        .collect();
                    let t0 = Instant::now();
                    loop {
                        match client.query(&locations, &mut rng) {
                            Ok(answer) => {
                                assert!(!answer.is_empty(), "empty answer");
                                latencies_us.push(t0.elapsed().as_micros() as u64);
                                break;
                            }
                            Err(ServerError::ServerBusy { retry_after_ms }) => {
                                busy_retries.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(retry_after_ms as u64));
                            }
                            Err(e) => {
                                eprintln!("group {g}: query failed: {e}");
                                errors.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
                client.goodbye();
                latencies_us
            })
        })
        .collect();

    let mut all_latencies = Vec::with_capacity(args.groups * args.queries);
    for h in handles {
        all_latencies.extend(h.join().expect("group thread panicked"));
    }
    let elapsed = start.elapsed();
    let errors = errors.load(Ordering::Relaxed);
    let busy = busy_retries.load(Ordering::Relaxed);
    let summary = summarize(all_latencies, elapsed);

    println!(
        "groups={} queries={} errors={} busy_retries={} elapsed={:.2}s throughput={:.1} qps",
        args.groups,
        summary.count,
        errors,
        busy,
        elapsed.as_secs_f64(),
        summary.throughput_qps
    );
    println!(
        "latency_us p50={} p95={} p99={} mean={} max={}",
        summary.p50_us, summary.p95_us, summary.p99_us, summary.mean_us, summary.max_us
    );

    if let Some(handle) = local_server {
        handle.shutdown();
    }
    if errors > 0 {
        std::process::exit(1);
    }
}
