//! The standalone LSP daemon: serves a synthetic POI database over TCP.
//!
//! ```text
//! ppgnn-server [--addr 127.0.0.1:7878] [--pois 1000] [--workers 4]
//!              [--queue-depth 32] [--max-connections 64]
//!              [--keysize 128] [--k 2] [--d 3] [--delta 6] [--seed 42]
//!              [--max-sessions 1024] [--session-ttl-ms 900000]
//!              [--min-delta 2] [--min-key-bits 32] [--max-payload BYTES]
//!              [--rate-limit QPS] [--rate-burst N] [--max-strikes 8]
//!              [--frame-timeout-ms 30000] [--write-timeout-ms 30000]
//!              [--stats-json PATH] [--stats-interval-ms 5000]
//!              [--data-dir PATH] [--fsync always|interval|never]
//!              [--checkpoint-every-ops N] [--admin-token T]
//!              [--max-subscriptions N] [--shape off|padded]
//!              [--shape-max-key-bits B] [--shape-max-k K]
//!              [--latency-quantum-ms MS] [--parallelism T] [--naive-crypto]
//!              [--metrics-addr 127.0.0.1:9878] [--slo]
//!              [--slo-latency-ms MS] [--slo-latency-budget-ppm P]
//!              [--slo-error-budget-ppm P]
//! ```
//!
//! Durability: with `--data-dir PATH` the server runs the crash-safe
//! live world ([`ppgnn_server::WorldSeed::Durable`]): on first boot the
//! seeded POI set is checkpointed into PATH; on every later boot the
//! newest valid checkpoint is loaded and the WAL tail replayed, so the
//! process resumes at the exact pre-crash index version. `--fsync`
//! picks the WAL flush policy and `--checkpoint-every-ops` the log
//! rotation cadence. `--admin-token` arms the `PoiUpdate` mutation
//! lane (without it the world is durable but read-only over the wire).
//!
//! Shaping: `--shape padded` turns on the constant-shape response
//! policy (DESIGN.md §16): every `Answer` / `Busy` / `Error` /
//! `SubscriptionUpdate` frame is padded to a policy-wide constant and
//! released only on `--latency-quantum-ms` boundaries, so a passive
//! network observer cannot tell sessions with different parameters
//! apart. The padding envelope defaults to the server's own
//! `--keysize` / `--k`; raise `--shape-max-key-bits` /
//! `--shape-max-k` to admit larger client handshakes under the same
//! constant.
//!
//! Every tunable flows through [`ServerConfig::builder`], so an
//! inconsistent combination (zero workers, rate limiting with no burst)
//! is rejected at startup with a message naming the offending knob
//! instead of producing a server that sheds everything.
//!
//! Observability: with `--stats-json PATH` the full telemetry snapshot
//! (pipeline-stage histograms, crypto op counters, service counters,
//! load gauges — the same payload a wire `Stats` request returns) is
//! rewritten to PATH every `--stats-interval-ms`, and once more at
//! exit. Without a path, `--stats-interval-ms` dumps the same JSON to
//! stderr. The interactive `stats` stdin command prints it on demand.
//! `--metrics-addr` binds a second listener serving `GET /metrics`
//! (OpenMetrics text: cumulative + windowed stage latencies, op
//! counters, calibrated cost constants, SLO burn rates) and
//! `GET /healthz` (the `Pong` health snapshot as JSON) — DESIGN.md
//! §18. `--slo` (with the optional `--slo-*` knobs) arms the burn-rate
//! accounting those faces report.
//!
//! Tracing: `--trace` turns on the per-query span collector (see
//! `ppgnn_telemetry::trace`): kept segments are served to clients over
//! the wire `TraceFetch` frame, slow queries are logged as one-line
//! JSON on stderr, and the interactive `traces` stdin command renders
//! the kept ring as a terminal tree. `--trace-slow-us`,
//! `--trace-sample-permille`, and `--trace-buf` tune the tail sampler.
//!
//! Shutdown: send `quit` on stdin (or close it), or SIGINT (Ctrl-C).
//! In-flight queries are drained before the process exits, and final
//! stats are printed — including the `--stats-json` file, which is
//! flushed on every exit path even when the process is interrupted
//! before the first `--stats-interval-ms` tick.

use std::io::BufRead;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Arc;
use std::time::Duration;

use ppgnn_core::{Lsp, PpgnnConfig};
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_server::{
    serve_world, DurabilityConfig, FsyncPolicy, HelloPolicy, ServerConfig, ShapeMode, ShapePolicy,
    SloConfig, StatsProbe, WorldSeed,
};
use ppgnn_telemetry::trace::{self, TracerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A minimal SIGINT latch (no signal crate in the tree): the handler
/// only flips an atomic; the main loop polls it between stdin reads.
#[cfg(unix)]
mod sigint {
    use std::sync::atomic::{AtomicBool, Ordering};

    static INTERRUPTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_sigint(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
        }
    }

    pub fn interrupted() -> bool {
        INTERRUPTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigint {
    pub fn install() {}
    pub fn interrupted() -> bool {
        false
    }
}

struct Args {
    addr: String,
    pois: usize,
    seed: u64,
    keysize: usize,
    k: usize,
    d: usize,
    delta: usize,
    stats_json: Option<String>,
    stats_interval: Option<Duration>,
    trace: Option<TracerConfig>,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut addr = String::from("127.0.0.1:7878");
    let mut pois = 1000usize;
    let mut seed = 42u64;
    let mut keysize = 128usize;
    let mut k = 2usize;
    let mut d = 3usize;
    let mut delta = 6usize;
    let mut stats_json = None;
    let mut stats_interval = None;
    let mut trace_cfg: Option<TracerConfig> = None;
    let mut shape_mode: Option<ShapeMode> = None;
    let mut shape_max_key_bits: Option<usize> = None;
    let mut shape_max_k: Option<usize> = None;
    let mut latency_quantum: Option<Duration> = None;
    let mut data_dir: Option<String> = None;
    let mut fsync: Option<FsyncPolicy> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut slo: Option<SloConfig> = None;
    let mut builder = ServerConfig::builder();
    let mut policy = HelloPolicy::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => addr = value("--addr")?,
            "--pois" => pois = parse(&value("--pois")?)?,
            "--seed" => seed = parse(&value("--seed")?)?,
            "--keysize" => keysize = parse(&value("--keysize")?)?,
            "--k" => k = parse(&value("--k")?)?,
            "--d" => d = parse(&value("--d")?)?,
            "--delta" => delta = parse(&value("--delta")?)?,
            "--workers" => builder = builder.workers(parse(&value("--workers")?)?),
            "--parallelism" => {
                builder = builder.selection_parallelism(parse(&value("--parallelism")?)?)
            }
            "--naive-crypto" => builder = builder.naive_crypto(true),
            "--queue-depth" => builder = builder.queue_depth(parse(&value("--queue-depth")?)?),
            "--max-connections" => {
                builder = builder.max_connections(parse(&value("--max-connections")?)?)
            }
            "--deadline-ms" => {
                builder = builder
                    .default_deadline(Duration::from_millis(parse(&value("--deadline-ms")?)?))
            }
            "--max-sessions" => builder = builder.max_sessions(parse(&value("--max-sessions")?)?),
            "--session-ttl-ms" => {
                builder = builder
                    .session_idle_ttl(Duration::from_millis(parse(&value("--session-ttl-ms")?)?))
            }
            "--min-delta" => policy.min_delta = parse(&value("--min-delta")?)?,
            "--min-key-bits" => policy.min_key_bits = parse(&value("--min-key-bits")?)?,
            "--max-payload" => builder = builder.max_payload(parse(&value("--max-payload")?)?),
            "--rate-limit" => builder = builder.rate_limit_per_sec(parse(&value("--rate-limit")?)?),
            "--rate-burst" => builder = builder.rate_limit_burst(parse(&value("--rate-burst")?)?),
            "--max-strikes" => builder = builder.max_strikes(parse(&value("--max-strikes")?)?),
            "--frame-timeout-ms" => {
                builder = builder.frame_read_timeout(Duration::from_millis(parse(&value(
                    "--frame-timeout-ms",
                )?)?))
            }
            "--write-timeout-ms" => {
                builder = builder
                    .write_timeout(Duration::from_millis(parse(&value("--write-timeout-ms")?)?))
            }
            "--trace" => {
                trace_cfg.get_or_insert_with(|| TracerConfig {
                    enabled: true,
                    slow_log: true,
                    ..TracerConfig::default()
                });
            }
            "--trace-slow-us" => {
                let us = parse(&value("--trace-slow-us")?)?;
                trace_cfg
                    .get_or_insert_with(|| TracerConfig {
                        enabled: true,
                        slow_log: true,
                        ..TracerConfig::default()
                    })
                    .slow_us = us;
            }
            "--trace-sample-permille" => {
                let permille: u32 = parse(&value("--trace-sample-permille")?)?;
                if permille > 1000 {
                    return Err("--trace-sample-permille must be 0..=1000".into());
                }
                trace_cfg
                    .get_or_insert_with(|| TracerConfig {
                        enabled: true,
                        slow_log: true,
                        ..TracerConfig::default()
                    })
                    .keep_permille = permille;
            }
            "--trace-buf" => {
                let cap: usize = parse(&value("--trace-buf")?)?;
                if cap == 0 {
                    return Err("--trace-buf must be nonzero".into());
                }
                trace_cfg
                    .get_or_insert_with(|| TracerConfig {
                        enabled: true,
                        slow_log: true,
                        ..TracerConfig::default()
                    })
                    .capacity = cap;
            }
            "--data-dir" => data_dir = Some(value("--data-dir")?),
            "--fsync" => {
                let name = value("--fsync")?;
                fsync = Some(FsyncPolicy::from_name(&name).ok_or_else(|| {
                    format!("--fsync must be always, interval, or never (got {name:?})")
                })?);
            }
            "--checkpoint-every-ops" => {
                checkpoint_every = Some(parse(&value("--checkpoint-every-ops")?)?)
            }
            "--admin-token" => {
                builder = builder.admin_token(Some(parse(&value("--admin-token")?)?))
            }
            "--max-subscriptions" => {
                builder = builder.max_subscriptions(parse(&value("--max-subscriptions")?)?)
            }
            "--shape" => {
                let name = value("--shape")?;
                shape_mode = Some(
                    ShapeMode::from_name(&name)
                        .ok_or_else(|| format!("--shape must be off or padded (got {name:?})"))?,
                );
            }
            "--shape-max-key-bits" => {
                shape_max_key_bits = Some(parse(&value("--shape-max-key-bits")?)?)
            }
            "--shape-max-k" => shape_max_k = Some(parse(&value("--shape-max-k")?)?),
            "--latency-quantum-ms" => {
                latency_quantum = Some(Duration::from_millis(parse(&value(
                    "--latency-quantum-ms",
                )?)?))
            }
            "--metrics-addr" => builder = builder.metrics_addr(Some(value("--metrics-addr")?)),
            "--slo" => {
                slo.get_or_insert_with(SloConfig::default);
            }
            "--slo-latency-ms" => {
                let ms: u64 = parse(&value("--slo-latency-ms")?)?;
                slo.get_or_insert_with(SloConfig::default).latency_target_us = ms * 1000;
            }
            "--slo-latency-budget-ppm" => {
                slo.get_or_insert_with(SloConfig::default)
                    .latency_budget_ppm = parse(&value("--slo-latency-budget-ppm")?)?;
            }
            "--slo-error-budget-ppm" => {
                slo.get_or_insert_with(SloConfig::default).error_budget_ppm =
                    parse(&value("--slo-error-budget-ppm")?)?;
            }
            "--stats-json" => stats_json = Some(value("--stats-json")?),
            "--stats-interval-ms" => {
                stats_interval = Some(Duration::from_millis(parse(&value(
                    "--stats-interval-ms",
                )?)?))
            }
            "--help" | "-h" => {
                println!(
                    "usage: ppgnn-server [--addr A] [--pois N] [--workers W] \
                     [--queue-depth Q] [--max-connections C] [--deadline-ms MS] \
                     [--keysize B] [--k K] [--d D] [--delta DELTA] [--seed S] \
                     [--max-sessions N] [--session-ttl-ms MS] [--min-delta D] \
                     [--min-key-bits B] [--max-payload BYTES] [--rate-limit QPS] \
                     [--rate-burst N] [--max-strikes N] [--frame-timeout-ms MS] \
                     [--write-timeout-ms MS] [--stats-json PATH] \
                     [--stats-interval-ms MS] [--trace] [--trace-slow-us US] \
                     [--trace-sample-permille P] [--trace-buf N] \
                     [--data-dir PATH] [--fsync always|interval|never] \
                     [--checkpoint-every-ops N] [--admin-token T] \
                     [--max-subscriptions N] [--shape off|padded] \
                     [--shape-max-key-bits B] [--shape-max-k K] \
                     [--latency-quantum-ms MS] [--parallelism T] [--naive-crypto] \
                     [--metrics-addr A] [--slo] [--slo-latency-ms MS] \
                     [--slo-latency-budget-ppm P] [--slo-error-budget-ppm P]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    // A stats file with no interval still gets periodic (and final) dumps.
    if stats_json.is_some() && stats_interval.is_none() {
        stats_interval = Some(Duration::from_millis(5000));
    }
    match shape_mode {
        Some(ShapeMode::Padded) => {
            // Envelope defaults follow the server's own parameters; the
            // max-k default leaves headroom for the k + 1 a subscribe
            // handshake negotiates for its runner-up sentinel.
            builder = builder.shape(ShapePolicy::padded(
                shape_max_key_bits.unwrap_or(keysize),
                shape_max_k.unwrap_or(k + 1),
                latency_quantum.unwrap_or(Duration::from_millis(200)),
            ));
        }
        Some(ShapeMode::Off) | None
            if shape_max_key_bits.is_some()
                || shape_max_k.is_some()
                || latency_quantum.is_some() =>
        {
            return Err(
                "--shape-max-key-bits / --shape-max-k / --latency-quantum-ms require \
                 --shape padded"
                    .into(),
            );
        }
        _ => {}
    }
    match data_dir {
        Some(dir) => {
            let mut durability = DurabilityConfig::new(dir);
            if let Some(policy) = fsync {
                durability.fsync = policy;
            }
            if let Some(every) = checkpoint_every {
                durability.checkpoint_every_ops = every;
            }
            builder = builder.durability(Some(durability));
        }
        None if fsync.is_some() || checkpoint_every.is_some() => {
            return Err("--fsync / --checkpoint-every-ops require --data-dir".into());
        }
        None => {}
    }
    let config = builder
        .hello_policy(policy)
        .slo(slo)
        .build()
        .map_err(|e| e.to_string())?;
    Ok(Args {
        addr,
        pois,
        seed,
        keysize,
        k,
        d,
        delta,
        stats_json,
        stats_interval,
        trace: trace_cfg,
        config,
    })
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

/// Writes one snapshot: to `path` when set (whole-file rewrite so a
/// reader never sees a torn dump grow), to stderr otherwise.
fn dump_snapshot(probe: &StatsProbe, path: Option<&str>) {
    let json = probe.snapshot().to_json();
    match path {
        Some(p) => {
            if let Err(e) = std::fs::write(p, json.as_bytes()) {
                eprintln!("ppgnn-server: writing stats to {p}: {e}");
            }
        }
        None => eprintln!("{json}"),
    }
}

fn spawn_stats_dumper(
    probe: StatsProbe,
    path: Option<String>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name("ppgnn-stats-dump".into())
        .spawn(move || {
            let tick = interval.max(Duration::from_millis(100));
            // Sleep in short slices so a long interval does not delay
            // shutdown. Ticks are anchored to a deadline schedule
            // (`next += tick`) so the time a dump itself takes never
            // drifts the cadence; a dump delayed past a whole interval
            // skips the missed deadlines instead of bursting.
            let slice = Duration::from_millis(200);
            let mut next = std::time::Instant::now() + tick;
            'dumping: loop {
                loop {
                    if stop.load(Ordering::SeqCst) {
                        break 'dumping;
                    }
                    let now = std::time::Instant::now();
                    if now >= next {
                        break;
                    }
                    std::thread::sleep(slice.min(next - now));
                }
                dump_snapshot(&probe, path.as_deref());
                next += tick;
                let now = std::time::Instant::now();
                if next < now {
                    next = now + tick;
                }
            }
            // Final dump so the file reflects the drained totals.
            dump_snapshot(&probe, path.as_deref());
        })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ppgnn-server: {e}");
            std::process::exit(2);
        }
    };
    sigint::install();
    if let Some(tc) = &args.trace {
        trace::global().configure(tc);
    }
    let config = PpgnnConfig {
        k: args.k,
        d: args.d,
        delta: args.delta,
        keysize: args.keysize,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let pois: Vec<Poi> = (0..args.pois)
        .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
        .collect();

    let durable = args.config.durability.is_some();
    let served = if durable {
        serve_world(
            WorldSeed::Durable {
                initial_pois: pois,
                protocol: config,
                space: Rect::UNIT,
            },
            args.addr.as_str(),
            args.config.clone(),
        )
    } else {
        serve_world(
            Arc::new(
                Lsp::new(pois, config)
                    .with_parallelism(args.config.selection_parallelism)
                    .with_naive_crypto(args.config.naive_crypto),
            ),
            args.addr.as_str(),
            args.config.clone(),
        )
    };
    let handle = match served {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ppgnn-server: starting on {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "ppgnn-server listening on {} ({} POIs, {} workers, queue depth {}{}{})",
        handle.local_addr(),
        args.pois,
        args.config.workers,
        args.config.queue_depth,
        match &args.config.durability {
            Some(d) => format!(
                ", durable world in {} fsync={}",
                d.data_dir.display(),
                d.fsync.name()
            ),
            None => String::new(),
        },
        if args.config.shape.is_padded() {
            format!(
                ", shaped: answer {}B / control {}B / quantum {}ms",
                args.config.shape.answer_target(),
                args.config.shape.control_target(),
                args.config.shape.latency_quantum.as_millis()
            )
        } else {
            String::new()
        }
    );
    if let Some(addr) = handle.metrics_addr() {
        println!("metrics on http://{addr}/metrics (health: /healthz)");
    }
    println!("type 'stats' for counters, 'traces' for kept spans, 'quit' (or EOF, or Ctrl-C) to drain and exit");

    let stop_dumper = Arc::new(AtomicBool::new(false));
    let dumper = args.stats_interval.and_then(|interval| {
        match spawn_stats_dumper(
            handle.stats_probe(),
            args.stats_json.clone(),
            interval,
            Arc::clone(&stop_dumper),
        ) {
            Ok(h) => Some(h),
            Err(e) => {
                // Degraded, not fatal: the final dump at exit (below)
                // still runs on the main thread.
                eprintln!("ppgnn-server: no periodic stats dumps ({e}); final dump still runs");
                None
            }
        }
    });

    // Stdin is read on its own thread so the main loop can poll the
    // SIGINT latch: a blocking `lines()` loop here would swallow Ctrl-C
    // until the next keystroke and skip the final stats flush entirely.
    let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
    let reader_tx = line_tx.clone();
    let spawned = std::thread::Builder::new()
        .name("ppgnn-stdin".into())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) => {
                        if reader_tx.send(l).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
            // Dropping the sender turns EOF into a Disconnected recv.
        });
    // When the reader thread is up, drop our sender so stdin EOF maps
    // to Disconnected and exits the loop. If the spawn failed, keep it
    // alive instead — the channel then never disconnects and the loop
    // idles on timeouts, leaving SIGINT as the (still working) way out.
    let _stdin_guard = match spawned {
        Ok(_) => {
            drop(line_tx);
            None
        }
        Err(e) => {
            eprintln!("ppgnn-server: stdin commands unavailable ({e}); use Ctrl-C to exit");
            Some(line_tx)
        }
    };

    loop {
        if sigint::interrupted() {
            println!("interrupted, shutting down");
            break;
        }
        match line_rx.recv_timeout(Duration::from_millis(200)) {
            Ok(line) => match line.trim() {
                "quit" | "exit" => break,
                "stats" => {
                    print!(
                        "{}",
                        ppgnn_sim::render_telemetry_table(&handle.telemetry_snapshot())
                    );
                }
                "traces" => {
                    let segments = trace::global().segments();
                    if segments.is_empty() {
                        println!("no kept traces (is --trace on?)");
                    } else {
                        print!("{}", ppgnn_sim::render_trace_tree(&segments));
                    }
                }
                _ => {}
            },
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }

    println!("draining in-flight queries...");
    let s = handle.stats();
    let (ok, err) = (
        s.queries_ok.load(Ordering::Relaxed),
        s.queries_err.load(Ordering::Relaxed),
    );
    stop_dumper.store(true, Ordering::SeqCst);
    if let Some(h) = dumper {
        let _ = h.join();
    } else if let Some(path) = args.stats_json.as_deref() {
        dump_snapshot(&handle.stats_probe(), Some(path));
    }
    handle.shutdown();
    println!("done: {ok} queries answered, {err} failed");
}
