//! The standalone LSP daemon: serves a synthetic POI database over TCP.
//!
//! ```text
//! ppgnn-server [--addr 127.0.0.1:7878] [--pois 1000] [--workers 4]
//!              [--queue-depth 32] [--max-connections 64]
//!              [--keysize 128] [--k 2] [--d 3] [--delta 6] [--seed 42]
//!              [--max-sessions 1024] [--session-ttl-ms 900000]
//!              [--min-delta 2] [--min-key-bits 32] [--max-payload BYTES]
//!              [--rate-limit QPS] [--rate-burst N] [--max-strikes 8]
//!              [--frame-timeout-ms 30000] [--write-timeout-ms 30000]
//! ```
//!
//! Shutdown: send `quit` on stdin (or close it). In-flight queries are
//! drained before the process exits, and final stats are printed.

use std::io::BufRead;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use ppgnn_core::{Lsp, PpgnnConfig};
use ppgnn_geo::{Poi, Point};
use ppgnn_server::{serve, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    addr: String,
    pois: usize,
    seed: u64,
    keysize: usize,
    k: usize,
    d: usize,
    delta: usize,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        pois: 1000,
        seed: 42,
        keysize: 128,
        k: 2,
        d: 3,
        delta: 6,
        config: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--pois" => args.pois = parse(&value("--pois")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--keysize" => args.keysize = parse(&value("--keysize")?)?,
            "--k" => args.k = parse(&value("--k")?)?,
            "--d" => args.d = parse(&value("--d")?)?,
            "--delta" => args.delta = parse(&value("--delta")?)?,
            "--workers" => args.config.workers = parse(&value("--workers")?)?,
            "--queue-depth" => args.config.queue_depth = parse(&value("--queue-depth")?)?,
            "--max-connections" => {
                args.config.max_connections = parse(&value("--max-connections")?)?
            }
            "--deadline-ms" => {
                args.config.default_deadline =
                    Duration::from_millis(parse(&value("--deadline-ms")?)?)
            }
            "--max-sessions" => args.config.max_sessions = parse(&value("--max-sessions")?)?,
            "--session-ttl-ms" => {
                args.config.session_idle_ttl =
                    Duration::from_millis(parse(&value("--session-ttl-ms")?)?)
            }
            "--min-delta" => args.config.hello_policy.min_delta = parse(&value("--min-delta")?)?,
            "--min-key-bits" => {
                args.config.hello_policy.min_key_bits = parse(&value("--min-key-bits")?)?
            }
            "--max-payload" => args.config.max_payload = parse(&value("--max-payload")?)?,
            "--rate-limit" => args.config.rate_limit_per_sec = parse(&value("--rate-limit")?)?,
            "--rate-burst" => args.config.rate_limit_burst = parse(&value("--rate-burst")?)?,
            "--max-strikes" => args.config.max_strikes = parse(&value("--max-strikes")?)?,
            "--frame-timeout-ms" => {
                args.config.frame_read_timeout =
                    Duration::from_millis(parse(&value("--frame-timeout-ms")?)?)
            }
            "--write-timeout-ms" => {
                args.config.write_timeout =
                    Duration::from_millis(parse(&value("--write-timeout-ms")?)?)
            }
            "--help" | "-h" => {
                println!(
                    "usage: ppgnn-server [--addr A] [--pois N] [--workers W] \
                     [--queue-depth Q] [--max-connections C] [--deadline-ms MS] \
                     [--keysize B] [--k K] [--d D] [--delta DELTA] [--seed S] \
                     [--max-sessions N] [--session-ttl-ms MS] [--min-delta D] \
                     [--min-key-bits B] [--max-payload BYTES] [--rate-limit QPS] \
                     [--rate-burst N] [--max-strikes N] [--frame-timeout-ms MS] \
                     [--write-timeout-ms MS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ppgnn-server: {e}");
            std::process::exit(2);
        }
    };
    let config = PpgnnConfig {
        k: args.k,
        d: args.d,
        delta: args.delta,
        keysize: args.keysize,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let pois: Vec<Poi> = (0..args.pois)
        .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
        .collect();
    let lsp = Arc::new(Lsp::new(pois, config));

    let handle = match serve(lsp, args.addr.as_str(), args.config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ppgnn-server: bind {} failed: {e}", args.addr);
            std::process::exit(1);
        }
    };
    println!(
        "ppgnn-server listening on {} ({} POIs, {} workers, queue depth {})",
        handle.local_addr(),
        args.pois,
        args.config.workers,
        args.config.queue_depth
    );
    println!("type 'stats' for counters, 'quit' (or EOF) to drain and exit");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.as_deref().map(str::trim) {
            Ok("quit") | Ok("exit") | Err(_) => break,
            Ok("stats") => {
                let s = handle.stats();
                println!(
                    "accepted={} refused={} ok={} err={} busy_shed={} \
                     deadline_expired={} inflight={} sessions={} replayed={} \
                     worker_panics={} respawned={} live_workers={} \
                     evicted={} rejected={} violations={} rate_limited={} \
                     strike_disconnects={} slow_reaped={} frame_garbage={}",
                    s.accepted.load(Ordering::Relaxed),
                    s.refused.load(Ordering::Relaxed),
                    s.queries_ok.load(Ordering::Relaxed),
                    s.queries_err.load(Ordering::Relaxed),
                    s.busy_shed.load(Ordering::Relaxed),
                    s.deadline_expired.load(Ordering::Relaxed),
                    s.inflight.load(Ordering::Relaxed),
                    handle.registry().len(),
                    s.replayed.load(Ordering::Relaxed),
                    s.worker_panics.load(Ordering::Relaxed),
                    s.workers_respawned.load(Ordering::Relaxed),
                    s.live_workers.load(Ordering::Relaxed),
                    handle.registry().evicted(),
                    handle.registry().rejected(),
                    handle.registry().violations(),
                    s.rate_limited.load(Ordering::Relaxed),
                    s.strike_disconnects.load(Ordering::Relaxed),
                    s.slow_reaped.load(Ordering::Relaxed),
                    s.frame_garbage.load(Ordering::Relaxed),
                );
            }
            _ => {}
        }
    }

    println!("draining in-flight queries...");
    let s = handle.stats();
    let (ok, err) = (
        s.queries_ok.load(Ordering::Relaxed),
        s.queries_err.load(Ordering::Relaxed),
    );
    handle.shutdown();
    println!("done: {ok} queries answered, {err} failed");
}
