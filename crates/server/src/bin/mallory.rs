//! `mallory`: adversarial load generator for the PPGNN server.
//!
//! Runs the seeded attack catalog (see `ppgnn_server::mallory`) against
//! a server *concurrently with legitimate group traffic*, then reports
//! whether every attack was contained — answered with a typed error, a
//! `Busy` shed, or a clean disconnect — and whether the legitimate
//! queries still came back correct while the abuse was in flight.
//!
//! ```text
//! mallory [--addr HOST:PORT] [--seed 1] [--rounds 3] [--attackers 2]
//!         [--legit-groups 2] [--legit-queries 4] [--users 2]
//!         [--pois 200] [--slow-stall-ms 1500] [--json PATH]
//! ```
//!
//! Without `--addr`, a hardened in-process *durable* server is spun up
//! on an ephemeral port (short frame deadline, bounded session table,
//! strike escalation armed, WAL in a throwaway temp dir) with a
//! seed-derived admin token, so the binary is a self-contained smoke
//! test: exit status 0 means every attack run was contained AND every
//! legitimate query matched the plaintext oracle. The durable setup is
//! what arms the honest-replay half of `stale-admin-replay`; against a
//! remote `--addr` target that attack degrades to its forged-token
//! probe only.
//!
//! `--json PATH` writes a machine-readable report: run metadata, the
//! per-outcome counters and per-run verdicts (on the shared telemetry
//! counter types), legitimate-traffic totals, and — for the in-process
//! server — its full telemetry snapshot.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ppgnn_core::{Lsp, PpgnnConfig};
use ppgnn_geo::{Poi, Point, Rect};
use ppgnn_server::mallory::{run_catalog, AttackContext, MalloryReport};
use ppgnn_server::{serve_world, DurabilityConfig, GroupClient, ServerConfig, WorldSeed};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Args {
    addr: Option<String>,
    seed: u64,
    rounds: usize,
    attackers: usize,
    legit_groups: usize,
    legit_queries: usize,
    users: usize,
    pois: usize,
    slow_stall: Duration,
    json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        seed: 1,
        rounds: 3,
        attackers: 2,
        legit_groups: 2,
        legit_queries: 4,
        users: 2,
        pois: 200,
        slow_stall: Duration::from_millis(1500),
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")?),
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--rounds" => args.rounds = parse(&value("--rounds")?)?,
            "--attackers" => args.attackers = parse(&value("--attackers")?)?,
            "--legit-groups" => args.legit_groups = parse(&value("--legit-groups")?)?,
            "--legit-queries" => args.legit_queries = parse(&value("--legit-queries")?)?,
            "--users" => args.users = parse(&value("--users")?)?,
            "--pois" => args.pois = parse(&value("--pois")?)?,
            "--slow-stall-ms" => {
                args.slow_stall = Duration::from_millis(parse(&value("--slow-stall-ms")?)?)
            }
            "--json" => args.json = Some(value("--json")?),
            "--help" | "-h" => {
                println!(
                    "usage: mallory [--addr HOST:PORT] [--seed S] [--rounds R] \
                     [--attackers A] [--legit-groups G] [--legit-queries Q] \
                     [--users U] [--pois P] [--slow-stall-ms MS] [--json PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad numeric value {s:?}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mallory: {e}");
            std::process::exit(2);
        }
    };
    // The same session shape AttackContext plans with, so legitimate
    // traffic and attack traffic exercise the same gate rules.
    let config = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };

    // The stale-admin-replay attack needs a real admin token to capture;
    // derived from the seed so runs are reproducible but never the same
    // constant an operator would deploy with.
    let admin_token = args.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let local_server = if args.addr.is_none() {
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0xbad);
        let pois: Vec<Poi> = (0..args.pois)
            .map(|i| Poi::new(i as u32, Point::new(rng.gen::<f64>(), rng.gen::<f64>())))
            .collect();
        // The oracle for legitimate traffic. It stays valid against the
        // durable server because the only mutation in the catalog is
        // stale-admin-replay's net-zero insert+remove batch.
        let lsp = Arc::new(Lsp::new(pois.clone(), config.clone()));
        let data_dir = std::env::temp_dir().join(format!("ppgnn-mallory-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&data_dir);
        let server_config = ServerConfig {
            // Hardened posture: the slow-writer attack must out-stall
            // this deadline, and the flood must be able to hit the cap.
            frame_read_timeout: Duration::from_millis(500),
            max_sessions: 24,
            session_idle_ttl: Duration::from_secs(2),
            admin_token: Some(admin_token),
            durability: Some(DurabilityConfig::new(&data_dir)),
            ..ServerConfig::default()
        };
        let handle = match serve_world(
            WorldSeed::Durable {
                initial_pois: pois,
                protocol: config.clone(),
                space: Rect::UNIT,
            },
            "127.0.0.1:0",
            server_config,
        ) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("mallory: failed to start in-process server: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "mallory: in-process hardened durable server on {} (data dir {})",
            handle.local_addr(),
            data_dir.display()
        );
        Some((handle, lsp, data_dir))
    } else {
        None
    };
    let addr = match (&args.addr, &local_server) {
        (Some(a), _) => a.clone(),
        (None, Some((h, _, _))) => h.local_addr().to_string(),
        (None, None) => unreachable!(),
    };
    let sock_addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("mallory: bad address {addr}: {e}");
            std::process::exit(2);
        }
    };

    println!("mallory: planning attack material (seed {})...", args.seed);
    let mut ctx = match AttackContext::new(args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mallory: failed to plan attack context: {e}");
            std::process::exit(1);
        }
    };
    ctx.slow_stall = args.slow_stall;
    if local_server.is_some() {
        // Only the in-process server is known to be durable; pointing
        // the honest-replay half of stale-admin-replay at an arbitrary
        // `--addr` target would mutate someone else's world.
        ctx.admin_token = Some(admin_token);
    }
    let ctx = Arc::new(ctx);

    let start = Instant::now();

    // Adversaries and honest groups share the wall clock.
    let attack_threads: Vec<_> = (0..args.attackers.max(1))
        .map(|a| {
            let ctx = Arc::clone(&ctx);
            let seed = args.seed.wrapping_add(a as u64).wrapping_mul(0x100_0001);
            let rounds = args.rounds;
            std::thread::spawn(move || run_catalog(sock_addr, &ctx, seed, rounds))
        })
        .collect();

    let legit_threads: Vec<_> = (0..args.legit_groups)
        .map(|g| {
            let addr = addr.clone();
            let config = config.clone();
            let lsp = local_server.as_ref().map(|(_, l, _)| Arc::clone(l));
            let (users, queries, seed) = (args.users, args.legit_queries, args.seed);
            std::thread::spawn(move || -> (u64, u64) {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1000 + g as u64));
                let mut ok = 0u64;
                let mut bad = 0u64;
                let mut client = match GroupClient::connect(
                    addr.as_str(),
                    g as u64 + 1,
                    config.clone(),
                    Rect::UNIT,
                    users,
                    &mut rng,
                ) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("legit group {g}: connect failed: {e}");
                        return (0, queries as u64);
                    }
                };
                for q in 0..queries {
                    let locations: Vec<Point> = (0..users)
                        .map(|_| Point::new(rng.gen(), rng.gen()))
                        .collect();
                    match client.query(&locations, &mut rng) {
                        Ok(answer) => {
                            // With the in-process server we hold the
                            // database, so check against the oracle.
                            let correct = match &lsp {
                                Some(lsp) => {
                                    let oracle = lsp.plaintext_answer(&locations, config.k);
                                    answer.len() == oracle.len()
                                        && answer
                                            .iter()
                                            .zip(&oracle)
                                            .all(|(a, o)| a.dist(&o.location) < 1e-6)
                                }
                                None => !answer.is_empty(),
                            };
                            if correct {
                                ok += 1;
                            } else {
                                eprintln!("legit group {g}: query {q} answer mismatch");
                                bad += 1;
                            }
                        }
                        Err(e) => {
                            eprintln!("legit group {g}: query {q} failed: {e}");
                            bad += 1;
                        }
                    }
                }
                client.goodbye();
                (ok, bad)
            })
        })
        .collect();

    let mut report = MalloryReport::default();
    for t in attack_threads {
        match t.join() {
            Ok(r) => report.runs.extend(r.runs),
            Err(_) => {
                eprintln!("mallory: attacker thread panicked");
                std::process::exit(1);
            }
        }
    }
    let mut legit_ok = 0u64;
    let mut legit_bad = 0u64;
    for t in legit_threads {
        match t.join() {
            Ok((ok, bad)) => {
                legit_ok += ok;
                legit_bad += bad;
            }
            Err(_) => {
                eprintln!("mallory: legit group thread panicked");
                std::process::exit(1);
            }
        }
    }
    let elapsed = start.elapsed();

    println!("attack                outcome");
    for (attack, outcome) in &report.runs {
        println!("{:<21} {:?}", attack.to_string(), outcome);
    }
    println!(
        "attacks={} contained={} uncontained={} legit_ok={} legit_failed={} elapsed={:.2}s",
        report.total(),
        report.contained(),
        report.uncontained().len(),
        legit_ok,
        legit_bad,
        elapsed.as_secs_f64(),
    );

    // Written before the pass/fail checks so a failing run still leaves
    // a report behind for the postmortem.
    if let Some(path) = &args.json {
        let mut meta = ppgnn_telemetry::json::Obj::new();
        meta.field_u64("seed", args.seed);
        meta.field_u64("rounds", args.rounds as u64);
        meta.field_u64("attackers", args.attackers as u64);
        meta.field_u64("legit_groups", args.legit_groups as u64);
        meta.field_u64("elapsed_ms", elapsed.as_millis() as u64);
        let mut legit = ppgnn_telemetry::json::Obj::new();
        legit.field_u64("ok", legit_ok);
        legit.field_u64("failed", legit_bad);
        let mut obj = ppgnn_telemetry::json::Obj::new();
        obj.field_raw("meta", &meta.finish());
        obj.field_raw("report", &report.to_json());
        obj.field_raw("legit", &legit.finish());
        if let Some((handle, _, _)) = &local_server {
            obj.field_raw("telemetry", &handle.telemetry_snapshot().to_json());
        }
        match std::fs::write(path, obj.finish().as_bytes()) {
            Ok(()) => println!("mallory report written to {path}"),
            Err(e) => {
                eprintln!("mallory: writing {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if let Some((handle, _, data_dir)) = local_server {
        let s = handle.stats();
        println!(
            "server: ok={} err={} violations={} rate_limited={} strike_disconnects={} \
             slow_reaped={} frame_garbage={} sessions={} evicted={} rejected={} \
             worker_panics={}",
            s.queries_ok.load(Ordering::Relaxed),
            s.queries_err.load(Ordering::Relaxed),
            handle.registry().violations(),
            s.rate_limited.load(Ordering::Relaxed),
            s.strike_disconnects.load(Ordering::Relaxed),
            s.slow_reaped.load(Ordering::Relaxed),
            s.frame_garbage.load(Ordering::Relaxed),
            handle.registry().len(),
            handle.registry().evicted(),
            handle.registry().rejected(),
            s.worker_panics.load(Ordering::Relaxed),
        );
        let panics = s.worker_panics.load(Ordering::Relaxed);
        handle.shutdown();
        let _ = std::fs::remove_dir_all(&data_dir);
        if panics > 0 {
            eprintln!("mallory: FAIL — {panics} worker panic(s) under attack");
            std::process::exit(1);
        }
    }

    if !report.uncontained().is_empty() || legit_bad > 0 {
        for (attack, outcome) in report.uncontained() {
            eprintln!("mallory: UNCONTAINED {attack}: {outcome:?}");
        }
        eprintln!("mallory: FAIL");
        std::process::exit(1);
    }
    println!("mallory: all attacks contained, legitimate traffic unharmed");
}
