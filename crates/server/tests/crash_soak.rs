//! The crash-chaos acceptance gate: a child `ppgnn-server` is
//! SIGKILLed mid-soak at seeded points, restarted on the same data
//! dir, and must come back with zero wrong answers, zero missed
//! invalidations, an unbroken version chain, and idempotent
//! redelivery — checked against the parent's plaintext oracle.
//!
//! Two pinned seeds (the same pair as the CI moving-smoke matrix) keep
//! the run deterministic; `CARGO_BIN_EXE_ppgnn-server` points at the
//! binary Cargo built for this test profile.

use std::path::PathBuf;

use ppgnn_core::PpgnnConfig;
use ppgnn_geo::{Poi, PoiOp, Point, Rect};
use ppgnn_server::{
    run_crash_soak, serve_world, CrashSoakConfig, DurabilityConfig, FsyncPolicy, GroupClient,
    ServerConfig, WorldSeed,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppgnn-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_seed(seed: u64, tag: &str) {
    let data_dir = tmp_dir(tag);
    let mut config = CrashSoakConfig::new(env!("CARGO_BIN_EXE_ppgnn-server"), &data_dir);
    config.world.seed = seed;
    config.recovery_log = Some(data_dir.join("recovery.log"));
    let report = run_crash_soak(&config).expect("crash soak must not break the transport");
    assert_eq!(
        report.kills,
        2,
        "both seeded kills must fire:\n{}",
        report.render()
    );
    assert!(report.passed(), "crash soak failed:\n{}", report.render());
    // The recovery log is the CI artifact; each incarnation after the
    // first must have logged its recovery summary.
    let log = std::fs::read_to_string(data_dir.join("recovery.log")).unwrap();
    assert!(
        log.matches("--- child incarnation ---").count() >= 3,
        "expected one log section per incarnation:\n{log}"
    );
    let _ = std::fs::remove_dir_all(&data_dir);
}

#[test]
fn kill_mid_soak_recovers_seed_7() {
    run_seed(7, "seed7");
}

#[test]
fn kill_mid_soak_recovers_seed_23() {
    run_seed(23, "seed23");
}

/// The graceful twin of the kill tests: stop a durable server cleanly,
/// boot a second one on the same dir, and check the contract pieces
/// one by one — byte-identical answers, idempotent redelivery of an
/// already-acked batch, and a version chain that extends by exactly
/// one across the restart.
#[test]
fn in_process_durable_restart_resumes_exact_version() {
    let dir = tmp_dir("inproc");
    let protocol = PpgnnConfig {
        k: 2,
        d: 3,
        delta: 6,
        keysize: 128,
        sanitize: false,
        ..PpgnnConfig::fast_test()
    };
    let pois: Vec<Poi> = (0..60)
        .map(|i| {
            Poi::new(
                i,
                Point::new((i % 10) as f64 / 10.0 + 0.05, (i / 10) as f64 / 6.0 + 0.05),
            )
        })
        .collect();
    let config = ServerConfig::builder()
        .admin_token(Some(0xBEEF))
        .durability(Some(DurabilityConfig {
            data_dir: dir.clone(),
            fsync: FsyncPolicy::Always,
            checkpoint_every_ops: 1000,
        }))
        .build()
        .unwrap();

    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: pois,
            protocol: protocol.clone(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config.clone(),
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut admin = GroupClient::connect(
        handle.local_addr(),
        9,
        protocol.clone(),
        Rect::UNIT,
        2,
        &mut rng,
    )
    .unwrap();
    let ops = vec![
        PoiOp::Insert(Poi::new(500, Point::new(0.5, 0.5))),
        PoiOp::Remove(3),
    ];
    let ack = admin.poi_update(0xBEEF, &ops).unwrap();
    assert_eq!(ack.version, 2, "bootstrap is v1, first batch must be v2");
    let query = [Point::new(0.49, 0.5), Point::new(0.51, 0.5)];
    let before = admin.query(&query, &mut rng).unwrap();
    handle.shutdown();

    // Second life: initial POIs are deliberately empty — everything
    // must come from the checkpoint + WAL replay.
    let handle = serve_world(
        WorldSeed::Durable {
            initial_pois: Vec::new(),
            protocol: protocol.clone(),
            space: Rect::UNIT,
        },
        "127.0.0.1:0",
        config,
    )
    .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut admin =
        GroupClient::connect(handle.local_addr(), 9, protocol, Rect::UNIT, 2, &mut rng).unwrap();
    let after = admin.query(&query, &mut rng).unwrap();
    assert_eq!(before, after, "recovered server must answer identically");

    let redelivered = admin
        .poi_update_with_id(0xBEEF, ack.request_id, &ops)
        .unwrap();
    assert_eq!(
        redelivered.version, ack.version,
        "redelivery must not re-apply"
    );
    assert_eq!(redelivered.applied, ack.applied);

    let next = admin.poi_update(0xBEEF, &[PoiOp::Remove(5)]).unwrap();
    assert_eq!(next.version, 3, "the chain extends by exactly one");
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
