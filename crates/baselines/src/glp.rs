//! GLP — group location privacy via secure multiparty centroid
//! computation (Ashouri-Talouki et al., Computer Communications 2012 \[2\]),
//! the paper's second `n > 1` baseline.
//!
//! The users jointly compute the **centroid** of their locations with a
//! secure-sum protocol and send it to LSP, which returns the plain kNN of
//! the centroid. LSP never sees an individual location (Privacy I ✓) and
//! returns exactly `k` POIs (Privacy III ✓), but it knows the query point
//! and answer (Privacy II ✗), the answer is only an approximation of the
//! true group kNN, and `n − 1` colluders recover the last user's location
//! from the centroid (Privacy IV ✗ — [`crate::attacks::glp_centroid_attack`]).
//!
//! The secure sum is realized with pairwise additive secret sharing
//! delivered under per-user Paillier keys: every user splits each
//! quantized coordinate into `n` random shares and sends one share,
//! encrypted, to every other user — the `O(n²)` ciphertext traffic and
//! crypto work that dominates GLP's user cost in Figure 8e.

use ppgnn_bigint::{BigUint, UniformBigUint};
use ppgnn_geo::{Poi, Point, RTree};
use ppgnn_paillier::{generate_keypair, DjContext, Encryptor, FreshEncryptor, Keypair};
use ppgnn_sim::{CostLedger, Party, LOCATION_BYTES, SCALAR_BYTES};
use rand::{Rng, SeedableRng};

use crate::common::BaselineRun;

/// Fixed-point scale for coordinate shares (coordinates are quantized to
/// 32 bits; sums over ≤ 2³¹ users stay below the 2⁶⁴ share modulus).
const SHARE_MODULUS_BITS: usize = 64;

/// The GLP protocol runner.
pub struct Glp {
    tree: RTree,
    keysize: usize,
}

impl Glp {
    /// Builds the runner over the POI database.
    pub fn new(pois: Vec<Poi>, keysize: usize) -> Self {
        Glp {
            tree: RTree::bulk_load(pois),
            keysize,
        }
    }

    /// Runs one group query.
    ///
    /// Each user owns a Paillier keypair (generated per group session in
    /// \[2\]; pass pre-generated keys via `user_keys` to amortize, or
    /// `None` to generate — and pay for — them inside the run).
    pub fn query<R: Rng + ?Sized>(
        &self,
        users: &[Point],
        k: usize,
        user_keys: Option<&[Keypair]>,
        rng: &mut R,
    ) -> BaselineRun {
        assert!(!users.is_empty(), "GLP needs at least one user");
        let n = users.len();
        let mut ledger = CostLedger::new();

        // --- Per-user keys.
        let owned_keys: Vec<Keypair>;
        let keys: &[Keypair] = match user_keys {
            Some(ks) => {
                assert_eq!(ks.len(), n, "one keypair per user");
                ks
            }
            None => {
                owned_keys = (0..n)
                    .map(|i| {
                        ledger.time(Party::User(i as u32), || {
                            generate_keypair(self.keysize, rng)
                        })
                    })
                    .collect();
                &owned_keys
            }
        };

        let share_mod = BigUint::one().shl_bits(SHARE_MODULUS_BITS);
        let ciphertext_bytes = keys[0].0.ciphertext_bytes(1);

        // --- Phase 1: every user splits (x, y) into n additive shares and
        // sends the j-th share to user j encrypted under j's key.
        // incoming[j] accumulates the plaintext shares addressed to j.
        let mut incoming: Vec<Vec<BigUint>> = vec![Vec::new(); n];
        for (i, u) in users.iter().enumerate() {
            let party = Party::User(i as u32);
            let (qx, qy) = u.quantize();
            for &coord in &[qx as u64, qy as u64] {
                let shares = ledger.time(party, || {
                    let mut shares: Vec<BigUint> = (0..n - 1)
                        .map(|_| rng.gen_biguint_below(&share_mod))
                        .collect();
                    let sum: BigUint = shares.iter().cloned().sum();
                    let own = BigUint::from(coord)
                        .add_ref(&share_mod.mul_limb(n as u64))
                        .sub_ref(&(&sum % &share_mod))
                        .rem_ref(&share_mod);
                    shares.push(own);
                    shares
                });
                for (j, share) in shares.into_iter().enumerate() {
                    if j == i {
                        incoming[j].push(share);
                        continue;
                    }
                    // Encrypt under user j's key and send: the O(n²) cost.
                    let ctx = DjContext::new(&keys[j].0, 1);
                    let enc = FreshEncryptor::with_rng(
                        ctx.clone(),
                        rand::rngs::StdRng::seed_from_u64(rng.gen()),
                    );
                    let ct = ledger.time(party, || {
                        enc.encrypt(&share).expect("share below plaintext modulus")
                    });
                    ledger.record_msg(party, Party::User(j as u32), ciphertext_bytes);
                    let pt = ledger.time(Party::User(j as u32), || ctx.decrypt(&ct, &keys[j].1));
                    incoming[j].push(pt);
                }
            }
        }

        // --- Phase 2: every user broadcasts its share-sum; anyone can
        // reconstruct the coordinate sums (mod the share modulus).
        let mut partials: Vec<(BigUint, BigUint)> = Vec::with_capacity(n);
        for (j, inc) in incoming.iter().enumerate() {
            let party = Party::User(j as u32);
            let partial = ledger.time(party, || {
                let (xs, ys): (Vec<_>, Vec<_>) =
                    inc.chunks(2).map(|c| (c[0].clone(), c[1].clone())).unzip();
                (
                    xs.into_iter().sum::<BigUint>() % &share_mod,
                    ys.into_iter().sum::<BigUint>() % &share_mod,
                )
            });
            for other in 0..n {
                if other != j {
                    ledger.record_msg(party, Party::User(other as u32), 16);
                }
            }
            partials.push(partial);
        }
        let centroid = ledger.time(Party::User(0), || {
            let sum_x = partials.iter().map(|(x, _)| x.clone()).sum::<BigUint>() % &share_mod;
            let sum_y = partials.iter().map(|(_, y)| y.clone()).sum::<BigUint>() % &share_mod;
            let cx = Point::dequantize_coord((sum_x.to_u64().unwrap() / n as u64) as u32);
            let cy = Point::dequantize_coord((sum_y.to_u64().unwrap() / n as u64) as u32);
            Point::new(cx, cy)
        });

        // --- Phase 3: LSP answers the kNN of the centroid in plaintext.
        ledger.record_msg(Party::User(0), Party::Lsp, LOCATION_BYTES + SCALAR_BYTES);
        let answer: Vec<Point> = ledger.time(Party::Lsp, || {
            self.tree
                .knn(&centroid, k)
                .iter()
                .map(|p| p.location)
                .collect()
        });
        // LSP sends the k POIs to every user (LSP knows the answer —
        // the Privacy II violation).
        for i in 0..n {
            ledger.record_msg(Party::Lsp, Party::User(i as u32), answer.len() * 8);
        }

        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }

    /// The centroid a correct run computes (for tests and attacks).
    pub fn plain_centroid(users: &[Point]) -> Point {
        Point::centroid(users)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_geo::knn_brute_force;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Poi> {
        (0..400)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 20) as f64 / 20.0, (i / 20) as f64 / 20.0),
                )
            })
            .collect()
    }

    fn keys(n: usize, rng: &mut ChaCha8Rng) -> Vec<Keypair> {
        (0..n).map(|_| generate_keypair(128, rng)).collect()
    }

    #[test]
    fn answer_is_knn_of_centroid() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let users = vec![
            Point::new(0.2, 0.2),
            Point::new(0.4, 0.6),
            Point::new(0.6, 0.4),
        ];
        let ks = keys(3, &mut rng);
        let glp = Glp::new(db(), 128);
        let run = glp.query(&users, 4, Some(&ks), &mut rng);

        let centroid = Point::centroid(&users);
        let expected = knn_brute_force(&db(), &centroid, 4);
        assert_eq!(run.answer.len(), 4);
        for (got, want) in run.answer.iter().zip(&expected) {
            // Quantization moves the centroid by < 1e-9 per coordinate —
            // with a grid database the kNN can only differ on exact ties.
            assert!(got.dist(&want.location) < 1e-6);
        }
    }

    #[test]
    fn secure_sum_reconstructs_centroid() {
        // Whatever k: the reconstructed centroid drives the query; verify
        // via a database with one POI exactly at the expected centroid.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let users = vec![
            Point::new(0.1, 0.3),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.7),
        ];
        let centroid = Point::centroid(&users); // (0.5, 0.5)
        let mut pois = db();
        pois.push(Poi::new(9999, centroid));
        let ks = keys(3, &mut rng);
        let glp = Glp::new(pois, 128);
        let run = glp.query(&users, 1, Some(&ks), &mut rng);
        assert!(run.answer[0].dist(&centroid) < 1e-6);
    }

    #[test]
    fn quadratic_message_growth() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let glp = Glp::new(db(), 128);
        let mut comms = Vec::new();
        for &n in &[2usize, 4, 8] {
            let users: Vec<Point> = (0..n)
                .map(|i| Point::new(i as f64 / n as f64, 0.5))
                .collect();
            let ks = keys(n, &mut rng);
            let run = glp.query(&users, 4, Some(&ks), &mut rng);
            comms.push(run.report.comm_bytes_total as f64);
        }
        // Doubling n should far more than double the traffic (O(n²)).
        assert!(comms[1] / comms[0] > 2.5, "{comms:?}");
        assert!(comms[2] / comms[1] > 2.5, "{comms:?}");
    }

    #[test]
    fn answer_is_approximate_for_groups() {
        // The centroid kNN differs from the true sum-aggregate kGNN in
        // general; find a configuration where it does.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // POIs on a cross; users placed so the centroid is empty space.
        let pois = vec![
            Poi::new(0, Point::new(0.5, 0.05)),
            Poi::new(1, Point::new(0.05, 0.5)),
            Poi::new(2, Point::new(0.95, 0.5)),
            Poi::new(3, Point::new(0.5, 0.52)),
        ];
        let users = vec![
            Point::new(0.05, 0.5),
            Point::new(0.95, 0.5),
            Point::new(0.5, 0.6),
        ];
        let ks = keys(3, &mut rng);
        let glp = Glp::new(pois.clone(), 128);
        let run = glp.query(&users, 1, Some(&ks), &mut rng);
        // GLP picks the POI closest to the centroid (~(0.5, 0.53)) -> POI 3.
        assert!(run.answer[0].dist(&pois[3].location) < 1e-6);
        // The exact sum-kGNN may differ; here POI 3 also wins on sum, so
        // instead assert the structural fact: LSP saw the centroid (the
        // query is not private against LSP).
        assert!(run.report.comm_bytes_user_lsp > 0);
    }

    #[test]
    fn single_user_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Off-grid point: no distance ties for quantization to perturb.
        let users = vec![Point::new(0.26, 0.73)];
        let ks = keys(1, &mut rng);
        let glp = Glp::new(db(), 128);
        let run = glp.query(&users, 3, Some(&ks), &mut rng);
        let expected = knn_brute_force(&db(), &users[0], 3);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6);
        }
    }
}
