//! IPPF — the incremental-pruning private filter for group NN queries
//! (Hashem, Kulik, Zhang, EDBT 2010 \[14\]), the paper's first `n > 1`
//! baseline.
//!
//! The group hides inside a cloak rectangle `R`: each user obfuscates its
//! location into a small private rectangle and the group query sent to
//! LSP is the bounding rectangle of all of them. LSP answers the group
//! query *with respect to the rectangle*: it returns every POI that could
//! be among the top-`k` for **some** placement of `n` users inside `R` —
//! a candidate superset that is typically large when the group is spread
//! out (this is exactly why Figure 8a shows IPPF's communication cost
//! dwarfing PPGNN's).
//!
//! The users then filter privately: the candidate list travels along the
//! user chain `u₁ → u₂ → … → u_n`, each user adding its own distance to
//! every candidate's running aggregate and pruning candidates whose
//! best-case completion already exceeds the current `k`-th worst-case
//! bound ("incremental pruning"). The last user holds the exact top-`k`
//! and broadcasts it.
//!
//! Privacy: LSP sees only `R` (Privacy I–II hold), but the users see the
//! entire candidate superset (Privacy III ✗) and a user's predecessor and
//! successor in the chain can collude to recover its distances, hence its
//! location (Privacy IV ✗) — see [`crate::attacks::ippf_chain_attack`].

use ppgnn_geo::{Aggregate, Poi, Point, Rect};
use ppgnn_sim::{CostLedger, Party, SCALAR_BYTES};
use rand::Rng;

use crate::common::BaselineRun;

/// The IPPF protocol runner over a POI database.
pub struct Ippf {
    pois: Vec<Poi>,
    /// Area of each user's private rectangle, as a fraction of the space
    /// (the paper compares 0.0005% with its own `d = 25`).
    rect_area_fraction: f64,
}

/// One candidate surviving the chain so far: POI + running aggregate.
#[derive(Debug, Clone, Copy)]
struct ChainEntry {
    poi: Poi,
    partial: f64,
}

impl Ippf {
    /// Creates a runner with the paper's default rectangle area
    /// (0.0005% of the data space per user).
    pub fn new(pois: Vec<Poi>) -> Self {
        Ippf {
            pois,
            rect_area_fraction: 0.000005,
        }
    }

    /// Overrides the per-user rectangle area fraction.
    pub fn with_rect_area(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0);
        self.rect_area_fraction = fraction;
        self
    }

    /// Runs one group query (sum aggregate, as in §8).
    pub fn query<R: Rng + ?Sized>(&self, users: &[Point], k: usize, rng: &mut R) -> BaselineRun {
        assert!(!users.is_empty(), "IPPF needs at least one user");
        let n = users.len();
        let mut ledger = CostLedger::new();

        // --- Users: build private rectangles; the chain head assembles R.
        let side = (self.rect_area_fraction).sqrt();
        let mut group_rect: Option<Rect> = None;
        for (i, u) in users.iter().enumerate() {
            let party = Party::User(i as u32);
            let rect = ledger.time(party, || {
                // The user's rectangle: random offset so the user is not
                // centered (centering would leak the exact location).
                let ox = rng.gen::<f64>() * side;
                let oy = rng.gen::<f64>() * side;
                Rect::new(
                    (u.x - ox).max(0.0),
                    (u.y - oy).max(0.0),
                    (u.x - ox + side).min(1.0),
                    (u.y - oy + side).min(1.0),
                )
            });
            // Rectangle forwarded along the chain to the head.
            ledger.record_msg(party, Party::User(0), 4 * 8);
            group_rect = Some(match group_rect {
                Some(r) => r.union(&rect),
                None => rect,
            });
        }
        let group_rect = group_rect.expect("at least one user");

        // Head -> LSP: the group rectangle, n, k.
        ledger.record_msg(Party::User(0), Party::Lsp, 4 * 8 + 2 * SCALAR_BYTES);

        // --- LSP: candidate superset w.r.t. the rectangle.
        // For the sum aggregate with n unknown users in R:
        //   LB(p) = n · mindist(p, R),  UB(p) = n · maxdist(p, R).
        // Keep every POI whose LB does not exceed the k-th smallest UB.
        let candidates: Vec<Poi> = ledger.time(Party::Lsp, || {
            let nf = n as f64;
            let mut scored: Vec<(f64, f64, Poi)> = self
                .pois
                .iter()
                .map(|p| {
                    (
                        nf * group_rect.min_dist(&p.location),
                        nf * group_rect.max_dist(&p.location),
                        *p,
                    )
                })
                .collect();
            let mut ubs: Vec<f64> = scored.iter().map(|(_, ub, _)| *ub).collect();
            ubs.sort_by(f64::total_cmp);
            let tau = ubs[k.min(ubs.len()) - 1];
            scored.retain(|(lb, _, _)| *lb <= tau);
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.id.cmp(&b.2.id)));
            scored.into_iter().map(|(_, _, p)| p).collect()
        });
        ledger.count("candidate_pois", candidates.len() as u64);
        // LSP -> chain head: the candidates (8 bytes each, as answers).
        ledger.record_msg(
            Party::Lsp,
            Party::User(0),
            candidates.len() * 8 + SCALAR_BYTES,
        );

        // --- The private filter chain.
        let diam = 2f64.sqrt(); // max possible per-user distance in the unit square
        let mut chain: Vec<ChainEntry> = candidates
            .iter()
            .map(|&poi| ChainEntry { poi, partial: 0.0 })
            .collect();
        for (i, u) in users.iter().enumerate() {
            let party = Party::User(i as u32);
            ledger.time(party, || {
                for e in chain.iter_mut() {
                    e.partial += e.poi.location.dist(u);
                }
                // Incremental pruning: candidates whose best case
                // (remaining users contribute 0) exceeds the k-th
                // worst case (remaining contribute the diameter) are out.
                let remaining = (n - i - 1) as f64;
                let mut worst: Vec<f64> =
                    chain.iter().map(|e| e.partial + remaining * diam).collect();
                worst.sort_by(f64::total_cmp);
                if worst.len() >= k {
                    let tau = worst[k - 1];
                    chain.retain(|e| e.partial <= tau);
                }
            });
            // Forward the surviving list (coords + partial sums).
            if i + 1 < n {
                ledger.record_msg(party, Party::User(i as u32 + 1), chain.len() * (8 + 8));
            }
        }

        // --- Tail user: exact top-k, broadcast to the group.
        let answer: Vec<Point> = ledger.time(Party::User(n as u32 - 1), || {
            chain.sort_by(|a, b| {
                a.partial
                    .total_cmp(&b.partial)
                    .then(a.poi.id.cmp(&b.poi.id))
            });
            chain.iter().take(k).map(|e| e.poi.location).collect()
        });
        for i in 0..n - 1 {
            ledger.record_msg(
                Party::User(n as u32 - 1),
                Party::User(i as u32),
                answer.len() * 8 + SCALAR_BYTES,
            );
        }

        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }

    /// Sanity oracle: the exact sum-aggregate group kNN.
    pub fn exact_answer(&self, users: &[Point], k: usize) -> Vec<Poi> {
        ppgnn_geo::group_knn_brute_force(&self.pois, users, k, Aggregate::Sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Poi> {
        (0..900)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 30) as f64 / 30.0, (i / 30) as f64 / 30.0),
                )
            })
            .collect()
    }

    #[test]
    fn answer_is_exact() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ippf = Ippf::new(db());
        let users = vec![
            Point::new(0.2, 0.3),
            Point::new(0.7, 0.6),
            Point::new(0.5, 0.1),
            Point::new(0.4, 0.8),
        ];
        let run = ippf.query(&users, 5, &mut rng);
        let expected = ippf.exact_answer(&users, 5);
        assert_eq!(run.answer.len(), 5);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-9, "IPPF must be exact");
        }
    }

    #[test]
    fn candidate_superset_is_large_for_spread_groups() {
        // A spread-out group forces a large cloak rectangle, so the
        // candidate superset explodes — the Figure 8a phenomenon.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ippf = Ippf::new(db());
        let spread = vec![Point::new(0.05, 0.05), Point::new(0.95, 0.95)];
        let run = ippf.query(&spread, 4, &mut rng);
        let candidates = run.report.counters["candidate_pois"];
        assert!(
            candidates > 100,
            "spread group produced only {candidates} candidates"
        );
    }

    #[test]
    fn tight_group_has_fewer_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ippf = Ippf::new(db());
        let tight = vec![Point::new(0.50, 0.50), Point::new(0.52, 0.51)];
        let spread = vec![Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        let tight_run = ippf.query(&tight, 4, &mut rng);
        let spread_run = ippf.query(&spread, 4, &mut rng);
        assert!(
            tight_run.report.counters["candidate_pois"]
                < spread_run.report.counters["candidate_pois"]
        );
    }

    #[test]
    fn communication_dominated_by_candidates() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let ippf = Ippf::new(db());
        let users = vec![
            Point::new(0.1, 0.2),
            Point::new(0.8, 0.7),
            Point::new(0.4, 0.9),
        ];
        let run = ippf.query(&users, 4, &mut rng);
        let candidates = run.report.counters["candidate_pois"];
        assert!(run.report.comm_bytes_total as f64 > candidates as f64 * 8.0);
    }

    #[test]
    fn single_user_degenerates_to_knn() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let ippf = Ippf::new(db());
        let users = vec![Point::new(0.33, 0.66)];
        let run = ippf.query(&users, 3, &mut rng);
        let expected = ippf.exact_answer(&users, 3);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-9);
        }
    }

    #[test]
    fn user_rect_contains_user() {
        // The private rectangle construction must always cover the user
        // (otherwise the LSP bounds would be unsound). Covered implicitly
        // by exactness, but check the superset property directly too: the
        // exact answers are always among the candidates.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let ippf = Ippf::new(db());
        for seed in 0..5 {
            let users = vec![
                Point::new(0.1 + 0.15 * seed as f64, 0.3),
                Point::new(0.9 - 0.1 * seed as f64, 0.6),
            ];
            let run = ippf.query(&users, 6, &mut rng);
            let expected = ippf.exact_answer(&users, 6);
            for (got, want) in run.answer.iter().zip(&expected) {
                assert!(got.dist(&want.location) < 1e-9, "seed {seed}");
            }
        }
    }
}
