//! APNN — approximate private kNN queries (Yi et al., TKDE 2016 \[36\]),
//! the paper's `n = 1` baseline (§8.2).
//!
//! LSP partitions the space into a uniform grid and **pre-computes** the
//! kNN answer w.r.t. the center of every cell. At query time the user
//! picks a square cloak block of `b²` cells containing her own cell and
//! privately retrieves the pre-computed answer of her cell from that
//! block; LSP learns neither the cell (Privacy I–II at level `b²`) nor
//! anything beyond the single retrieved answer reaches the user
//! (Privacy III). Answers are *approximate* (the kNN of the cell center,
//! not of the user), and any database update forces re-computation of
//! every cell — the two drawbacks §8.2 highlights.
//!
//! The two-stage cryptographic retrieval of \[36\] is realized with the
//! same generalized-Paillier private selection machinery as PPGNN, which
//! preserves its communication/computation profile: `b²` ciphertexts up,
//! `m` ciphertexts down, and *no* kNN work on LSP at query time.

use ppgnn_bigint::BigUint;
use ppgnn_core::encoding::AnswerCodec;
use ppgnn_geo::{DynamicRTree, Grid, Poi, Point, Rect};
use ppgnn_paillier::{
    decrypt_vector, matrix_select, DjContext, Encryptor, FreshEncryptor, Keypair,
};
use ppgnn_sim::{CostLedger, Party, SCALAR_BYTES};
use rand::{Rng, SeedableRng};

use crate::common::BaselineRun;

/// The APNN service: grid + pre-computed per-cell answers.
pub struct Apnn {
    grid: Grid,
    /// Pre-computed kNN (up to `k_max`) per flat cell index.
    precomputed: Vec<Vec<Poi>>,
    k_max: usize,
    keysize: usize,
    /// The live database, kept so updates can recompute cells.
    db: DynamicRTree,
}

impl Apnn {
    /// Builds the service: pre-computes `k_max`-NN for every cell center
    /// (the expensive offline step the paper contrasts against).
    pub fn build(pois: Vec<Poi>, cells_per_axis: usize, k_max: usize, keysize: usize) -> Self {
        let db = DynamicRTree::new(pois);
        let grid = Grid::new(Rect::UNIT, cells_per_axis);
        let mut precomputed = Vec::with_capacity(grid.cell_count());
        for row in 0..cells_per_axis {
            for col in 0..cells_per_axis {
                let center = grid.cell_center((col, row));
                precomputed.push(db.knn(&center, k_max));
            }
        }
        Apnn {
            grid,
            precomputed,
            k_max,
            keysize,
            db,
        }
    }

    /// The grid resolution.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Applies one database insertion: every cell whose pre-computed
    /// answer the new POI could enter (its center is closer to the POI
    /// than to its current `k_max`-th neighbor) must be recomputed —
    /// the "potentially expensive update cost" §8.2 highlights.
    ///
    /// Returns the number of cells recomputed.
    pub fn insert(&mut self, poi: Poi) -> usize {
        self.db.insert(poi);
        let mut recomputed = 0;
        for row in 0..self.grid.cells_per_axis() {
            for col in 0..self.grid.cells_per_axis() {
                let idx = self.grid.flat_index((col, row));
                let center = self.grid.cell_center((col, row));
                let kth_dist = self.precomputed[idx]
                    .last()
                    .map(|p| p.location.dist(&center))
                    .unwrap_or(f64::INFINITY);
                if poi.location.dist(&center) <= kth_dist
                    || self.precomputed[idx].len() < self.k_max
                {
                    self.precomputed[idx] = self.db.knn(&center, self.k_max);
                    recomputed += 1;
                }
            }
        }
        recomputed
    }

    /// Applies one database deletion: every cell whose answer contains
    /// the POI must be recomputed. Returns the number of cells touched.
    pub fn remove(&mut self, id: ppgnn_geo::PoiId) -> usize {
        self.db.remove(id);
        let mut recomputed = 0;
        for row in 0..self.grid.cells_per_axis() {
            for col in 0..self.grid.cells_per_axis() {
                let idx = self.grid.flat_index((col, row));
                if self.precomputed[idx].iter().any(|p| p.id == id) {
                    let center = self.grid.cell_center((col, row));
                    self.precomputed[idx] = self.db.knn(&center, self.k_max);
                    recomputed += 1;
                }
            }
        }
        recomputed
    }

    /// One private query: the user at `location` retrieves the
    /// (approximate) `k`-NN with a `b × b` cloak block.
    ///
    /// # Panics
    /// Panics if `k > k_max`.
    pub fn query<R: Rng + ?Sized>(
        &self,
        location: Point,
        k: usize,
        b: usize,
        keys: &Keypair,
        rng: &mut R,
    ) -> BaselineRun {
        assert!(
            k <= self.k_max,
            "k = {k} exceeds precomputed k_max = {}",
            self.k_max
        );
        let (pk, sk) = keys;
        let mut ledger = CostLedger::new();
        let user = Party::User(0);

        // User: choose the cloak block and encrypt the indicator of her
        // own cell within it.
        let ctx1 = DjContext::new(pk, 1);
        let enc =
            FreshEncryptor::with_rng(ctx1.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()));
        let (block, indicator) = ledger.time(user, || {
            let cell = self.grid.locate(&location);
            let block = self.grid.cloak_block(cell, b);
            let position = block
                .iter()
                .position(|&c| c == cell)
                .expect("cloak block contains the user's cell");
            (
                block.clone(),
                enc.encrypt_indicator(block.len(), position)
                    .expect("indicator plaintexts are 0/1"),
            )
        });
        // Query upload: block spec (corner + b) + b² ciphertexts + k.
        ledger.record_msg(
            user,
            Party::Lsp,
            3 * SCALAR_BYTES + indicator.len() * pk.ciphertext_bytes(1) + SCALAR_BYTES,
        );

        // LSP: gather the block's pre-computed answers and privately
        // select — no kNN computation at query time.
        let codec = AnswerCodec::new(self.keysize, 1, k);
        let selected = ledger.time(Party::Lsp, || {
            let columns: Vec<Vec<BigUint>> = block
                .iter()
                .map(|&cell| {
                    let idx = self.grid.flat_index(cell);
                    codec.encode(&self.precomputed[idx][..k])
                })
                .collect();
            matrix_select(&columns, &indicator, &ctx1).expect("dimensions match by construction")
        });
        ledger.record_msg(Party::Lsp, user, selected.len() * pk.ciphertext_bytes(1));

        // User: decrypt.
        let answer = ledger.time(user, || {
            codec
                .decode(&decrypt_vector(&selected, &ctx1, sk))
                .expect("well-formed answer")
        });

        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_geo::knn_brute_force;
    use ppgnn_paillier::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Poi> {
        (0..400)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 20) as f64 / 20.0, (i / 20) as f64 / 20.0),
                )
            })
            .collect()
    }

    #[test]
    fn answer_matches_cell_center_knn() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let apnn = Apnn::build(db(), 20, 8, 128);
        let keys = generate_keypair(128, &mut rng);
        let user = Point::new(0.33, 0.71);
        let run = apnn.query(user, 4, 5, &keys, &mut rng);

        let cell = apnn.grid().locate(&user);
        let center = apnn.grid().cell_center(cell);
        let expected = knn_brute_force(&db(), &center, 4);
        assert_eq!(run.answer.len(), 4);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-6);
        }
    }

    #[test]
    fn answer_is_approximate_not_exact() {
        // With a coarse grid the cell-center answer can differ from the
        // user's true kNN — the defining drawback of APNN.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let apnn = Apnn::build(db(), 4, 8, 128); // very coarse: 4×4 cells
        let keys = generate_keypair(128, &mut rng);
        let mut differs = false;
        for i in 0..10 {
            let user = Point::new(0.03 + 0.09 * i as f64, 0.21);
            let run = apnn.query(user, 3, 2, &keys, &mut rng);
            let exact = knn_brute_force(&db(), &user, 3);
            if run
                .answer
                .iter()
                .zip(&exact)
                .any(|(g, w)| g.dist(&w.location) > 1e-6)
            {
                differs = true;
                break;
            }
        }
        assert!(
            differs,
            "a 4×4 grid must produce at least one approximate answer"
        );
    }

    #[test]
    fn lsp_does_no_knn_at_query_time() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let apnn = Apnn::build(db(), 20, 8, 128);
        let keys = generate_keypair(128, &mut rng);
        let run = apnn.query(Point::new(0.5, 0.5), 4, 5, &keys, &mut rng);
        assert_eq!(run.report.counters.get("kgnn_queries"), None);
        assert!(run.report.lsp_cpu_secs > 0.0, "selection still costs time");
    }

    #[test]
    fn comm_scales_with_cloak_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let apnn = Apnn::build(db(), 20, 8, 128);
        let keys = generate_keypair(128, &mut rng);
        let small = apnn.query(Point::new(0.5, 0.5), 4, 3, &keys, &mut rng);
        let large = apnn.query(Point::new(0.5, 0.5), 4, 7, &keys, &mut rng);
        assert!(large.report.comm_bytes_total > small.report.comm_bytes_total);
    }

    #[test]
    fn insert_recomputes_affected_cells() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let mut apnn = Apnn::build(db(), 10, 4, 128);
        let keys = generate_keypair(128, &mut rng);
        // A new POI right next to a cell center must enter that cell's
        // pre-computed answer (the db already has a POI exactly at the
        // center, so check membership in the top-2 rather than rank 1).
        let cell = (3usize, 7usize);
        let center = apnn.grid().cell_center(cell);
        let new_poi = Poi::new(5000, Point::new(center.x + 1e-4, center.y));
        let touched = apnn.insert(new_poi);
        assert!(touched >= 1, "at least the host cell recomputes");
        let run = apnn.query(center, 2, 3, &keys, &mut rng);
        assert!(
            run.answer.iter().any(|p| p.dist(&new_poi.location) < 1e-6),
            "inserted POI missing from the recomputed cell answer"
        );
    }

    #[test]
    fn remove_recomputes_only_containing_cells() {
        let mut apnn = Apnn::build(db(), 10, 4, 128);
        // The POI at (0.05, 0.05) sits exactly on cell (0,0)'s center and
        // is certainly in that cell's pre-computed answer.
        let touched = apnn.remove(21);
        assert!(touched >= 1);
        assert!(touched < 100, "a corner POI must not touch every cell");
        // A POI in no cell's answer touches nothing.
        let mut apnn2 = Apnn::build(db(), 10, 4, 128);
        let untouched = apnn2.remove(0); // (0,0) is never among any center's top-4
        assert_eq!(untouched, 0);
    }

    #[test]
    fn update_cost_grows_with_grid_resolution() {
        // The §8.2 argument: finer grids make updates more expensive.
        let coarse_touched =
            Apnn::build(db(), 5, 4, 128).insert(Poi::new(9000, Point::new(0.5, 0.5)));
        let fine_touched =
            Apnn::build(db(), 40, 4, 128).insert(Poi::new(9000, Point::new(0.5, 0.5)));
        assert!(
            fine_touched > coarse_touched,
            "fine {fine_touched} !> coarse {coarse_touched}"
        );
    }

    #[test]
    #[should_panic(expected = "exceeds precomputed")]
    fn k_above_precomputed_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let apnn = Apnn::build(db(), 10, 4, 128);
        let keys = generate_keypair(128, &mut rng);
        let _ = apnn.query(Point::new(0.5, 0.5), 8, 3, &keys, &mut rng);
    }
}
