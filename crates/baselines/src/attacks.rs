//! Concrete attacks demonstrating the ✗ entries of the paper's Table 4.
//!
//! * [`glp_centroid_attack`]: in GLP, `n − 1` colluders holding the
//!   centroid recover the remaining user's location *exactly*.
//! * [`ippf_chain_attack`]: in IPPF's filter chain, user `i`'s
//!   predecessor and successor see the running aggregates before and
//!   after `i`'s contribution, i.e. `dist(p, u_i)` for every candidate
//!   `p` — three such distances pin `u_i` down by multilateration.
//!
//! These functions are exercised by the integration tests and by the
//! `figures table4` harness to *verify* (not just assert) each privacy
//! classification.

use ppgnn_geo::Point;

/// GLP (Table 4, Privacy IV ✗): given the group centroid and the `n − 1`
/// colluders' own locations, the remaining user's location is
/// `n·centroid − Σ colluders` — exact recovery.
pub fn glp_centroid_attack(centroid: Point, colluders: &[Point]) -> Point {
    let n = (colluders.len() + 1) as f64;
    let (sx, sy) = colluders
        .iter()
        .fold((0.0, 0.0), |(x, y), c| (x + c.x, y + c.y));
    Point::new(n * centroid.x - sx, n * centroid.y - sy)
}

/// IPPF (Table 4, Privacy IV ✗): the predecessor and successor of user
/// `i` collude. For each candidate POI `p` they know the running sums
/// before and after `i`, so `d_p = after(p) − before(p) = dist(p, u_i)`.
///
/// Solves the multilateration least-squares system built from
/// consecutive circle-equation differences:
/// `2(p_b − p_a)·u = (|p_b|² − |p_a|²) − (d_b² − d_a²)`.
///
/// Returns `None` when fewer than 3 candidates are available or the
/// system is degenerate (collinear candidates).
pub fn ippf_chain_attack(candidates: &[(Point, f64)]) -> Option<Point> {
    if candidates.len() < 3 {
        return None;
    }
    // Normal equations for the stacked linear system A·u = b.
    let (p0, d0) = candidates[0];
    let mut ata = [[0.0f64; 2]; 2];
    let mut atb = [0.0f64; 2];
    for &(p, d) in &candidates[1..] {
        let ax = 2.0 * (p.x - p0.x);
        let ay = 2.0 * (p.y - p0.y);
        let rhs = (p.x * p.x + p.y * p.y - p0.x * p0.x - p0.y * p0.y) - (d * d - d0 * d0);
        ata[0][0] += ax * ax;
        ata[0][1] += ax * ay;
        ata[1][0] += ay * ax;
        ata[1][1] += ay * ay;
        atb[0] += ax * rhs;
        atb[1] += ay * rhs;
    }
    let det = ata[0][0] * ata[1][1] - ata[0][1] * ata[1][0];
    if det.abs() < 1e-12 {
        return None; // collinear candidates: direction unresolved
    }
    Some(Point::new(
        (atb[0] * ata[1][1] - atb[1] * ata[0][1]) / det,
        (atb[1] * ata[0][0] - atb[0] * ata[1][0]) / det,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glp_attack_is_exact() {
        let users = [
            Point::new(0.12, 0.87),
            Point::new(0.55, 0.31),
            Point::new(0.71, 0.64),
            Point::new(0.05, 0.22),
        ];
        let centroid = Point::centroid(&users);
        for target in 0..users.len() {
            let colluders: Vec<Point> = users
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != target)
                .map(|(_, p)| *p)
                .collect();
            let recovered = glp_centroid_attack(centroid, &colluders);
            assert!(
                recovered.dist(&users[target]) < 1e-9,
                "target {target}: {recovered:?} vs {:?}",
                users[target]
            );
        }
    }

    #[test]
    fn ippf_attack_recovers_location() {
        let victim = Point::new(0.37, 0.58);
        let candidates: Vec<(Point, f64)> = [
            Point::new(0.1, 0.1),
            Point::new(0.9, 0.2),
            Point::new(0.5, 0.9),
            Point::new(0.2, 0.7),
        ]
        .iter()
        .map(|p| (*p, p.dist(&victim)))
        .collect();
        let recovered = ippf_chain_attack(&candidates).expect("well-posed system");
        assert!(recovered.dist(&victim) < 1e-9, "{recovered:?}");
    }

    #[test]
    fn ippf_attack_needs_three_candidates() {
        let victim = Point::new(0.4, 0.4);
        let two: Vec<(Point, f64)> = [Point::new(0.1, 0.1), Point::new(0.9, 0.9)]
            .iter()
            .map(|p| (*p, p.dist(&victim)))
            .collect();
        assert!(ippf_chain_attack(&two).is_none());
    }

    #[test]
    fn ippf_attack_degenerate_collinear() {
        // Candidates on one line leave a reflection ambiguity.
        let victim = Point::new(0.3, 0.8);
        let collinear: Vec<(Point, f64)> = [
            Point::new(0.1, 0.5),
            Point::new(0.5, 0.5),
            Point::new(0.9, 0.5),
        ]
        .iter()
        .map(|p| (*p, p.dist(&victim)))
        .collect();
        assert!(ippf_chain_attack(&collinear).is_none());
    }

    #[test]
    fn ippf_attack_tolerates_many_candidates() {
        let victim = Point::new(0.66, 0.21);
        let candidates: Vec<(Point, f64)> = (0..50)
            .map(|i| {
                let p = Point::new(((i * 13) % 50) as f64 / 50.0, ((i * 7) % 50) as f64 / 50.0);
                (p, p.dist(&victim))
            })
            .collect();
        let recovered = ippf_chain_attack(&candidates).unwrap();
        assert!(recovered.dist(&victim) < 1e-9);
    }
}
