//! Shared baseline-run result type.

use ppgnn_geo::Point;
use ppgnn_sim::CostReport;

/// The outcome of one baseline query: the answer locations (best first)
/// and the measured costs.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Answer POI locations, best first. Approximate for APNN/GLP.
    pub answer: Vec<Point>,
    /// Aggregated costs of the run.
    pub report: CostReport,
}
