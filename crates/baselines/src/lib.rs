//! Baseline approaches from the paper's evaluation (§8), each built from
//! scratch and instrumented with the same cost ledger as PPGNN:
//!
//! * [`Apnn`] — the approximate private kNN of Yi et al. \[36\] (`n = 1`):
//!   LSP pre-computes kNN answers per grid cell; the user retrieves the
//!   answer for her (hidden) cell out of a `b × b` cloak block with a
//!   Paillier private selection. Privacy I–III, approximate answers,
//!   expensive updates.
//! * [`Ippf`] — the incremental-pruning private filter of Hashem et
//!   al. \[14\] (`n > 1`): LSP answers a group query w.r.t. a cloak
//!   rectangle, returning a candidate superset that the users filter by
//!   passing partial aggregates around the group chain. Privacy I–II
//!   only; the superset breaks Privacy III and chain collusion breaks
//!   Privacy IV.
//! * [`Glp`] — the group-location-privacy protocol of Ashouri-Talouki et
//!   al. \[2\] (`n > 1`): the users compute their centroid by secure
//!   multiparty addition (O(n²) ciphertexts) and LSP returns the kNN of
//!   the centroid. Privacy I and III only; LSP sees the answer
//!   (Privacy II ✗) and `n − 1` users recover the last location from the
//!   centroid (Privacy IV ✗).
//!
//! [`attacks`] implements the concrete attacks that justify the ✗ marks
//! in the paper's Table 4 — used by the integration tests and the
//! `figures table4` harness.

pub mod apnn;
pub mod attacks;
mod common;
pub mod glp;
pub mod ippf;
pub mod singleuser;

pub use apnn::Apnn;
pub use common::BaselineRun;
pub use glp::Glp;
pub use ippf::Ippf;
pub use singleuser::{CloakRegionKnn, DummyKnn, PerturbationKnn, PirKnn};
