//! The `n = 1` related-work families of Table 4, one representative
//! implementation per row:
//!
//! | rows | family | here |
//! |---|---|---|
//! | \[3, 9, 21\] | cloak-region | [`CloakRegionKnn`] |
//! | \[17, 30\] | dummy queries | [`DummyKnn`] |
//! | \[13, 26\] | private information retrieval | [`PirKnn`] |
//! | \[1, 34, 37\] | perturbation / geo-indistinguishability | [`PerturbationKnn`] |
//! | \[12, 27, 36\] | hybrid | [`crate::Apnn`] |
//!
//! Each runner measures the same cost ledger as PPGNN and exhibits the
//! privacy profile the paper's Table 4 assigns to its family — verified
//! by the integration tests and the `figures table4` harness.

use ppgnn_geo::{knn_brute_force, Grid, Poi, Point, RTree, Rect};
use ppgnn_paillier::{
    decrypt_vector, matrix_select, DjContext, Encryptor, FreshEncryptor, Keypair,
};
use ppgnn_sim::{CostLedger, Party, LOCATION_BYTES, SCALAR_BYTES};
use rand::{Rng, SeedableRng};

use crate::common::BaselineRun;

/// Cloak-region kNN (\[3, 9, 21\]): the user hides in a rectangle; LSP
/// returns every POI that could be a kNN answer for *some* point of the
/// rectangle. Privacy I–II hold (region anonymity) but the superset
/// violates Privacy III.
pub struct CloakRegionKnn {
    pois: Vec<Poi>,
}

impl CloakRegionKnn {
    /// Wraps the database.
    pub fn new(pois: Vec<Poi>) -> Self {
        CloakRegionKnn { pois }
    }

    /// One query with a cloak rectangle of the given area fraction.
    pub fn query<R: Rng + ?Sized>(
        &self,
        location: Point,
        k: usize,
        area_fraction: f64,
        rng: &mut R,
    ) -> BaselineRun {
        let mut ledger = CostLedger::new();
        let user = Party::User(0);

        let rect = ledger.time(user, || {
            let side = area_fraction.sqrt();
            let ox = rng.gen::<f64>() * side;
            let oy = rng.gen::<f64>() * side;
            Rect::new(
                (location.x - ox).max(0.0),
                (location.y - oy).max(0.0),
                (location.x - ox + side).min(1.0),
                (location.y - oy + side).min(1.0),
            )
        });
        ledger.record_msg(user, Party::Lsp, 4 * 8 + SCALAR_BYTES);

        // LSP: candidate superset — LB/UB pruning identical to the group
        // rectangle case with n = 1.
        let candidates: Vec<Poi> = ledger.time(Party::Lsp, || {
            let mut scored: Vec<(f64, f64, Poi)> = self
                .pois
                .iter()
                .map(|p| (rect.min_dist(&p.location), rect.max_dist(&p.location), *p))
                .collect();
            let mut ubs: Vec<f64> = scored.iter().map(|(_, ub, _)| *ub).collect();
            ubs.sort_by(f64::total_cmp);
            let tau = ubs[k.min(ubs.len()).saturating_sub(1)];
            scored.retain(|(lb, _, _)| *lb <= tau);
            scored.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.2.id.cmp(&b.2.id)));
            scored.into_iter().map(|(_, _, p)| p).collect()
        });
        ledger.count("candidate_pois", candidates.len() as u64);
        ledger.record_msg(Party::Lsp, user, candidates.len() * 8 + SCALAR_BYTES);

        // User filters the superset locally to the exact answer.
        let answer: Vec<Point> = ledger.time(user, || {
            knn_brute_force(&candidates, &location, k)
                .iter()
                .map(|p| p.location)
                .collect()
        });
        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }
}

/// Dummy-query kNN (\[17, 30\]): the user sends `d` plaintext locations
/// (one real, `d − 1` dummies) and LSP answers *all* of them in the
/// clear. Privacy I–II hold at level `d`; the `d·k` returned POIs
/// violate Privacy III.
pub struct DummyKnn {
    tree: RTree,
}

impl DummyKnn {
    /// Builds the runner.
    pub fn new(pois: Vec<Poi>) -> Self {
        DummyKnn {
            tree: RTree::bulk_load(pois),
        }
    }

    /// One query with `d − 1` dummies.
    pub fn query<R: Rng + ?Sized>(
        &self,
        location: Point,
        k: usize,
        d: usize,
        rng: &mut R,
    ) -> BaselineRun {
        assert!(d >= 1);
        let mut ledger = CostLedger::new();
        let user = Party::User(0);

        let (queries, real_pos) = ledger.time(user, || {
            let mut queries: Vec<Point> = (0..d - 1)
                .map(|_| Point::new(rng.gen(), rng.gen()))
                .collect();
            let pos = rng.gen_range(0..d);
            queries.insert(pos, location);
            (queries, pos)
        });
        ledger.record_msg(user, Party::Lsp, d * LOCATION_BYTES + SCALAR_BYTES);

        let all_answers: Vec<Vec<Poi>> = ledger.time(Party::Lsp, || {
            queries.iter().map(|q| self.tree.knn(q, k)).collect()
        });
        ledger.record_msg(Party::Lsp, user, d * k * 8);
        ledger.count("returned_pois", (d * k) as u64);

        let answer: Vec<Point> = ledger.time(user, || {
            all_answers[real_pos].iter().map(|p| p.location).collect()
        });
        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }
}

/// PIR-style kNN (\[13, 26\]): LSP maintains per-cell POI buckets; the
/// user privately retrieves her cell's bucket with a Paillier-based
/// PIR (computational PIR, as in \[13\]). LSP learns nothing (Privacy
/// I–II cryptographic), but the bucket is a superset of the answer —
/// Privacy III is violated.
pub struct PirKnn {
    grid: Grid,
    /// POIs per flat cell index, padded to the maximum bucket size so
    /// the reply length leaks nothing.
    buckets: Vec<Vec<Poi>>,
    bucket_capacity: usize,
}

impl PirKnn {
    /// Builds the bucketed database over a `cells × cells` grid.
    /// (`_keysize` is accepted for signature symmetry with the other
    /// baselines; the actual key arrives with each query.)
    pub fn build(pois: Vec<Poi>, cells: usize, _keysize: usize) -> Self {
        let grid = Grid::new(Rect::UNIT, cells);
        let mut buckets = vec![Vec::new(); grid.cell_count()];
        for poi in pois {
            let idx = grid.flat_index(grid.locate(&poi.location));
            buckets[idx].push(poi);
        }
        let bucket_capacity = buckets.iter().map(Vec::len).max().unwrap_or(0).max(1);
        PirKnn {
            grid,
            buckets,
            bucket_capacity,
        }
    }

    /// The padded bucket size (every PIR reply carries this many slots).
    pub fn bucket_capacity(&self) -> usize {
        self.bucket_capacity
    }

    /// One private bucket retrieval; the user then computes kNN locally
    /// from the bucket (exactness therefore depends on the bucket
    /// containing the true kNN — the classic PIR-granularity caveat).
    pub fn query<R: Rng + ?Sized>(
        &self,
        location: Point,
        k: usize,
        keys: &Keypair,
        rng: &mut R,
    ) -> BaselineRun {
        let (pk, sk) = keys;
        let mut ledger = CostLedger::new();
        let user = Party::User(0);
        let ctx = DjContext::new(pk, 1);

        let cell_count = self.grid.cell_count();
        let enc =
            FreshEncryptor::with_rng(ctx.clone(), rand::rngs::StdRng::seed_from_u64(rng.gen()));
        let indicator = ledger.time(user, || {
            let idx = self.grid.flat_index(self.grid.locate(&location));
            enc.encrypt_indicator(cell_count, idx)
                .expect("indicator plaintexts are 0/1")
        });
        ledger.record_msg(
            user,
            Party::Lsp,
            cell_count * pk.ciphertext_bytes(1) + SCALAR_BYTES,
        );

        // LSP: PIR select the bucket (one 8-byte record per slot).
        let selected = ledger.time(Party::Lsp, || {
            let columns: Vec<Vec<ppgnn_bigint::BigUint>> = self
                .buckets
                .iter()
                .map(|bucket| {
                    let mut col: Vec<ppgnn_bigint::BigUint> = bucket
                        .iter()
                        .map(|p| ppgnn_bigint::BigUint::from(p.encode_record()))
                        .collect();
                    col.resize(self.bucket_capacity, ppgnn_bigint::BigUint::zero());
                    col
                })
                .collect();
            matrix_select(&columns, &indicator, &ctx).expect("dimensions match")
        });
        ledger.record_msg(
            Party::Lsp,
            user,
            self.bucket_capacity * pk.ciphertext_bytes(1),
        );
        ledger.count("returned_pois", self.bucket_capacity as u64);

        let answer: Vec<Point> = ledger.time(user, || {
            let records = decrypt_vector(&selected, &ctx, sk);
            let bucket: Vec<Poi> = records
                .iter()
                .filter_map(|r| r.to_u64())
                .filter(|&r| r != 0)
                .enumerate()
                .map(|(i, r)| Poi::new(i as u32, Poi::decode_record(r)))
                .collect();
            knn_brute_force(&bucket, &location, k)
                .iter()
                .map(|p| p.location)
                .collect()
        });
        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }
}

/// Perturbation kNN (\[1, 34, 37\], geo-indistinguishability): the user
/// reports a planar-Laplace-noised location and LSP answers it in the
/// clear. Privacy I holds (ε-geo-indistinguishability); the answer is
/// approximate; LSP knows the (noised) query and the answer, so
/// Privacy II is violated; exactly `k` POIs return, so Privacy III holds.
pub struct PerturbationKnn {
    tree: RTree,
}

impl PerturbationKnn {
    /// Builds the runner.
    pub fn new(pois: Vec<Poi>) -> Self {
        PerturbationKnn {
            tree: RTree::bulk_load(pois),
        }
    }

    /// Draws planar Laplace noise with scale `1/epsilon` (the standard
    /// geo-indistinguishability mechanism: uniform angle, Gamma(2) radius).
    pub fn perturb<R: Rng + ?Sized>(location: Point, epsilon: f64, rng: &mut R) -> Point {
        assert!(epsilon > 0.0);
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        // Radius ~ Gamma(2, 1/ε): sum of two exponentials.
        let r = -(rng.gen::<f64>().max(f64::MIN_POSITIVE).ln()
            + rng.gen::<f64>().max(f64::MIN_POSITIVE).ln())
            / epsilon;
        Point::new(
            (location.x + r * theta.cos()).clamp(0.0, 1.0),
            (location.y + r * theta.sin()).clamp(0.0, 1.0),
        )
    }

    /// One query at privacy level `epsilon`.
    pub fn query<R: Rng + ?Sized>(
        &self,
        location: Point,
        k: usize,
        epsilon: f64,
        rng: &mut R,
    ) -> BaselineRun {
        let mut ledger = CostLedger::new();
        let user = Party::User(0);
        let noised = ledger.time(user, || Self::perturb(location, epsilon, rng));
        ledger.record_msg(user, Party::Lsp, LOCATION_BYTES + SCALAR_BYTES);
        let answer: Vec<Point> = ledger.time(Party::Lsp, || {
            self.tree
                .knn(&noised, k)
                .iter()
                .map(|p| p.location)
                .collect()
        });
        ledger.record_msg(Party::Lsp, user, answer.len() * 8);
        BaselineRun {
            answer,
            report: ledger.report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppgnn_paillier::generate_keypair;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn db() -> Vec<Poi> {
        (0..400)
            .map(|i| {
                Poi::new(
                    i,
                    Point::new((i % 20) as f64 / 20.0, (i / 20) as f64 / 20.0),
                )
            })
            .collect()
    }

    #[test]
    fn cloak_region_exact_but_leaky() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let cr = CloakRegionKnn::new(db());
        let user = Point::new(0.33, 0.71);
        let run = cr.query(user, 4, 0.01, &mut rng);
        // Exact: the candidate superset always contains the true kNN.
        let expected = knn_brute_force(&db(), &user, 4);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-9);
        }
        // Leaky: more candidates than k reached the user (Privacy III ✗).
        assert!(run.report.counters["candidate_pois"] > 4);
    }

    #[test]
    fn dummy_knn_exact_and_leaky() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dk = DummyKnn::new(db());
        let user = Point::new(0.52, 0.13);
        let run = dk.query(user, 3, 25, &mut rng);
        let expected = knn_brute_force(&db(), &user, 3);
        for (got, want) in run.answer.iter().zip(&expected) {
            assert!(got.dist(&want.location) < 1e-9);
        }
        // d·k POIs returned in the clear.
        assert_eq!(run.report.counters["returned_pois"], 25 * 3);
    }

    #[test]
    fn pir_retrieves_correct_bucket() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pir = PirKnn::build(db(), 10, 128);
        let keys = generate_keypair(128, &mut rng);
        let user = Point::new(0.31, 0.74);
        let run = pir.query(user, 2, &keys, &mut rng);
        // The bucket's kNN must equal the kNN within the user's cell
        // contents — 400 uniform POIs over 100 cells ⇒ ~4 per bucket.
        assert!(!run.answer.is_empty());
        assert!(run.report.counters["returned_pois"] >= run.answer.len() as u64);
        // The reply is padded to the bucket capacity regardless of cell.
        assert_eq!(
            run.report.counters["returned_pois"],
            pir.bucket_capacity() as u64
        );
    }

    #[test]
    fn pir_reply_length_is_cell_independent() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let pir = PirKnn::build(db(), 10, 128);
        let keys = generate_keypair(128, &mut rng);
        let a = pir.query(Point::new(0.05, 0.05), 2, &keys, &mut rng);
        let b = pir.query(Point::new(0.95, 0.95), 2, &keys, &mut rng);
        assert_eq!(a.report.comm_bytes_total, b.report.comm_bytes_total);
    }

    #[test]
    fn perturbation_answer_degrades_with_privacy() {
        // Stronger privacy (smaller ε ⇒ larger noise) must give worse
        // answers on average — the utility trade-off of [1, 34, 37].
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pk = PerturbationKnn::new(db());
        let user = Point::new(0.47, 0.58);
        let exact = knn_brute_force(&db(), &user, 1)[0].location;
        let error_at = |eps: f64, rng: &mut ChaCha8Rng| -> f64 {
            (0..40)
                .map(|_| pk.query(user, 1, eps, rng).answer[0].dist(&exact))
                .sum::<f64>()
                / 40.0
        };
        let strong = error_at(2.0, &mut rng); // heavy noise
        let weak = error_at(100.0, &mut rng); // light noise
        assert!(
            strong > weak,
            "strong privacy {strong} must err more than weak {weak}"
        );
    }

    #[test]
    fn perturbation_stays_in_space() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..200 {
            let p = PerturbationKnn::perturb(Point::new(0.02, 0.98), 1.0, &mut rng);
            assert!(Rect::UNIT.contains(&p));
        }
    }

    #[test]
    fn perturbation_returns_exactly_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let pk = PerturbationKnn::new(db());
        let run = pk.query(Point::new(0.5, 0.5), 7, 10.0, &mut rng);
        assert_eq!(run.answer.len(), 7, "Privacy III: exactly k POIs");
    }
}
