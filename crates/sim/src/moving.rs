//! Seeded moving-world scenario generator: drifting group trajectories
//! plus POI churn, with a plaintext mirror of the live POI set so a
//! harness can oracle-check every invalidation decision the server
//! makes.
//!
//! Everything is driven by one `ChaCha8` stream, so a `(seed, config)`
//! pair replays the exact same world — the soak tests and the
//! `loadgen --moving` harness pin seeds for reproducibility.

use ppgnn_geo::{Aggregate, Poi, PoiId, PoiOp, Point, Rect};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Shape of a moving-world run.
#[derive(Debug, Clone)]
pub struct MovingWorldConfig {
    /// Master seed; every trajectory and churn choice derives from it.
    pub seed: u64,
    /// Number of independently drifting groups.
    pub n_groups: usize,
    /// Users per group.
    pub users_per_group: usize,
    /// Maximum per-axis displacement of one user in one tick.
    pub drift_step: f64,
    /// POI mutations (inserts + removes) per tick.
    pub churn_per_tick: usize,
    /// Initial POI count.
    pub initial_pois: usize,
    /// The data space users and POIs live in.
    pub space: Rect,
}

impl Default for MovingWorldConfig {
    fn default() -> Self {
        MovingWorldConfig {
            seed: 7,
            n_groups: 4,
            users_per_group: 2,
            drift_step: 0.0008,
            churn_per_tick: 2,
            initial_pois: 300,
            space: Rect::UNIT,
        }
    }
}

/// One group's current (drifted) user positions.
#[derive(Debug, Clone)]
pub struct GroupTrack {
    /// Stable group identifier (1-based, usable as a wire `group_id`).
    pub group_id: u64,
    /// The users' *current* positions; [`MovingWorld::tick`] drifts them.
    pub users: Vec<Point>,
}

/// The deterministic world: drifting groups, churning POIs, and the
/// plaintext mirror of the live POI set (the oracle's view).
pub struct MovingWorld {
    rng: ChaCha8Rng,
    config: MovingWorldConfig,
    /// Current group positions, drifted in place by [`Self::tick`].
    pub groups: Vec<GroupTrack>,
    /// Plaintext mirror of the live POI set, kept exactly in sync with
    /// the ops [`Self::tick`] hands out.
    live: Vec<Poi>,
    next_poi_id: u32,
    ticks: u64,
}

impl MovingWorld {
    /// Builds the world: seeds the initial POI set and group positions.
    pub fn new(config: MovingWorldConfig) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let live: Vec<Poi> = (0..config.initial_pois)
            .map(|i| Poi::new(i as u32, random_point(&mut rng, &config.space)))
            .collect();
        let groups = (1..=config.n_groups as u64)
            .map(|group_id| GroupTrack {
                group_id,
                users: (0..config.users_per_group)
                    .map(|_| random_point(&mut rng, &config.space))
                    .collect(),
            })
            .collect();
        let next_poi_id = config.initial_pois as u32;
        MovingWorld {
            rng,
            config,
            groups,
            live,
            next_poi_id,
            ticks: 0,
        }
    }

    /// The initial POI set — what the server's index must be seeded with
    /// for the mirror to stay in sync.
    pub fn initial_pois(&self) -> Vec<Poi> {
        assert_eq!(self.ticks, 0, "initial_pois read after the world moved");
        self.live.clone()
    }

    /// The live POI mirror (the oracle's database).
    pub fn live_pois(&self) -> &[Poi] {
        &self.live
    }

    /// Ticks elapsed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Advances the world one tick: drifts every user by at most
    /// `drift_step` per axis (clamped to the space) and generates the
    /// tick's POI churn, already applied to the mirror. The returned
    /// ops must be shipped to the server verbatim for the two worlds to
    /// agree.
    pub fn tick(&mut self) -> Vec<PoiOp> {
        self.ticks += 1;
        let step = self.config.drift_step;
        let space = self.config.space;
        for group in &mut self.groups {
            for user in &mut group.users {
                user.x =
                    (user.x + self.rng.gen_range(-step..=step)).clamp(space.min_x, space.max_x);
                user.y =
                    (user.y + self.rng.gen_range(-step..=step)).clamp(space.min_y, space.max_y);
            }
        }
        let mut ops = Vec::with_capacity(self.config.churn_per_tick);
        for i in 0..self.config.churn_per_tick {
            // Alternate insert/remove so the database size stays stable
            // over a long soak; start with an insert so a remove always
            // has something to target.
            if i % 2 == 0 || self.live.is_empty() {
                let poi = Poi::new(self.next_poi_id, random_point(&mut self.rng, &space));
                self.next_poi_id += 1;
                self.live.push(poi);
                ops.push(PoiOp::Insert(poi));
            } else {
                let victim = self.rng.gen_range(0..self.live.len());
                let poi = self.live.swap_remove(victim);
                ops.push(PoiOp::Remove(poi.id));
            }
        }
        ops
    }

    /// The plaintext oracle: exact top-`k` POI ids for `users` under
    /// `agg` over the live mirror, cost-ordered. Invalidation checks
    /// compare *id sets* — a pure reordering within equal cost is not
    /// an answer change.
    pub fn oracle_top_k(&self, users: &[Point], k: usize, agg: Aggregate) -> Vec<PoiId> {
        let mut costs: Vec<(f64, PoiId)> = self
            .live
            .iter()
            .map(|poi| (agg.eval(&poi.location, users), poi.id))
            .collect();
        costs.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        costs.truncate(k);
        costs.into_iter().map(|(_, id)| id).collect()
    }
}

fn random_point<R: Rng + ?Sized>(rng: &mut R, space: &Rect) -> Point {
    Point::new(
        rng.gen_range(space.min_x..=space.max_x),
        rng.gen_range(space.min_y..=space.max_y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_world() {
        let mut a = MovingWorld::new(MovingWorldConfig::default());
        let mut b = MovingWorld::new(MovingWorldConfig::default());
        assert_eq!(a.initial_pois(), b.initial_pois());
        for _ in 0..5 {
            assert_eq!(a.tick(), b.tick());
        }
        for (ga, gb) in a.groups.iter().zip(&b.groups) {
            assert_eq!(ga.users, gb.users);
        }
    }

    #[test]
    fn mirror_tracks_ops() {
        let mut world = MovingWorld::new(MovingWorldConfig {
            initial_pois: 10,
            churn_per_tick: 3,
            ..MovingWorldConfig::default()
        });
        let mut shadow: Vec<Poi> = world.initial_pois();
        for _ in 0..20 {
            for op in world.tick() {
                match op {
                    PoiOp::Insert(poi) => shadow.push(poi),
                    PoiOp::Remove(id) => shadow.retain(|p| p.id != id),
                }
            }
        }
        let mut live: Vec<PoiId> = world.live_pois().iter().map(|p| p.id).collect();
        let mut mirror: Vec<PoiId> = shadow.iter().map(|p| p.id).collect();
        live.sort_unstable();
        mirror.sort_unstable();
        assert_eq!(live, mirror);
    }

    #[test]
    fn drift_is_bounded_per_tick() {
        let cfg = MovingWorldConfig {
            drift_step: 0.001,
            ..MovingWorldConfig::default()
        };
        let mut world = MovingWorld::new(cfg.clone());
        let before: Vec<Vec<Point>> = world.groups.iter().map(|g| g.users.clone()).collect();
        world.tick();
        for (group, old) in world.groups.iter().zip(&before) {
            for (user, prev) in group.users.iter().zip(old) {
                assert!(user.dist(prev) <= cfg.drift_step * std::f64::consts::SQRT_2 + 1e-12);
            }
        }
    }

    #[test]
    fn oracle_matches_brute_force_by_hand() {
        let mut world = MovingWorld::new(MovingWorldConfig {
            initial_pois: 50,
            ..MovingWorldConfig::default()
        });
        world.tick();
        let users = world.groups[0].users.clone();
        let top = world.oracle_top_k(&users, 3, Aggregate::Sum);
        assert_eq!(top.len(), 3);
        // The k-th cost is a lower bound for everything outside the set.
        let cost = |id: PoiId| {
            let poi = world.live_pois().iter().find(|p| p.id == id).unwrap();
            Aggregate::Sum.eval(&poi.location, &users)
        };
        let kth = cost(top[2]);
        for poi in world.live_pois() {
            if !top.contains(&poi.id) {
                assert!(Aggregate::Sum.eval(&poi.location, &users) >= kth - 1e-12);
            }
        }
    }
}
