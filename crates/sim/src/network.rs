//! Network cost models: turning the byte-exact ledger into estimated
//! end-to-end latency under a link model.
//!
//! The paper reports communication in bytes and lets the reader supply
//! the link; deployments care about wall-clock. A [`NetworkModel`]
//! assigns each link class (user↔LSP over mobile data, user↔user via
//! the base station) an RTT and a bandwidth, and prices a transcript.

use serde::{Deserialize, Serialize};

use crate::trace::Transcript;

/// Per-link-class parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
    /// Bandwidth in kilobytes per second.
    pub bandwidth_kbps: f64,
}

impl LinkModel {
    /// Transfer time for one message of `bytes` bytes.
    pub fn message_ms(&self, bytes: usize) -> f64 {
        self.latency_ms + (bytes as f64 / 1024.0) / self.bandwidth_kbps * 1000.0
    }
}

/// A two-class network model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// User ↔ LSP links (mobile data through the base station).
    pub user_lsp: LinkModel,
    /// Links inside the user group (also relayed; typically similar).
    pub intra_group: LinkModel,
}

impl NetworkModel {
    /// A 4G-ish profile: 50 ms one-way, ~2 MB/s.
    pub fn mobile_4g() -> Self {
        let link = LinkModel {
            latency_ms: 50.0,
            bandwidth_kbps: 2048.0,
        };
        NetworkModel {
            user_lsp: link,
            intra_group: link,
        }
    }

    /// A constrained 3G-ish profile: 150 ms one-way, ~128 KB/s.
    pub fn mobile_3g() -> Self {
        let link = LinkModel {
            latency_ms: 150.0,
            bandwidth_kbps: 128.0,
        };
        NetworkModel {
            user_lsp: link,
            intra_group: link,
        }
    }

    /// Serial transfer time of an entire transcript (upper bound: no
    /// message overlap; broadcasts to different users count once each).
    pub fn transcript_ms(&self, t: &Transcript) -> f64 {
        t.messages()
            .iter()
            .map(|m| {
                let link = if m.from.is_user_side() && m.to.is_user_side() {
                    &self.intra_group
                } else {
                    &self.user_lsp
                };
                link.message_ms(m.bytes)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::party::Party;

    #[test]
    fn message_cost_includes_latency_and_transfer() {
        let link = LinkModel {
            latency_ms: 10.0,
            bandwidth_kbps: 1024.0,
        };
        // 1024 KB at 1024 KB/s = 1000 ms + 10 ms latency.
        assert!((link.message_ms(1024 * 1024) - 1010.0).abs() < 1e-9);
        // Empty message still pays the latency.
        assert_eq!(link.message_ms(0), 10.0);
    }

    #[test]
    fn transcript_pricing_uses_link_classes() {
        let mut t = Transcript::new();
        t.record(Party::Coordinator, Party::Lsp, 2048, "query");
        t.record(Party::Coordinator, Party::User(1), 2048, "pos");
        let model = NetworkModel {
            user_lsp: LinkModel {
                latency_ms: 100.0,
                bandwidth_kbps: 1024.0,
            },
            intra_group: LinkModel {
                latency_ms: 1.0,
                bandwidth_kbps: 1024.0,
            },
        };
        let total = model.transcript_ms(&t);
        // 2 KB transfers ≈ 1.953 ms each; latencies 100 + 1.
        assert!((total - (100.0 + 1.0 + 2.0 * (2.0 / 1024.0 * 1000.0))).abs() < 0.1);
    }

    #[test]
    fn slower_network_costs_more() {
        let mut t = Transcript::new();
        t.record(Party::User(0), Party::Lsp, 50_000, "location set");
        assert!(
            NetworkModel::mobile_3g().transcript_ms(&t)
                > NetworkModel::mobile_4g().transcript_ms(&t)
        );
    }
}
