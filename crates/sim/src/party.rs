//! Protocol participants.

use serde::{Deserialize, Serialize};

/// A participant in the protocol.
///
/// The coordinator `u_c` is itself one of the users (Algorithm 1), so its
/// computation and communication count toward the *user* side of every
/// cost metric, exactly as in the paper's "total user cost (the sum of all
/// users' computational cost)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Party {
    /// Group member `u_i` (0-based index).
    User(u32),
    /// The coordinator `u_c`.
    Coordinator,
    /// The location-based service provider.
    Lsp,
}

impl Party {
    /// `true` for every party whose cost counts as "user cost".
    pub fn is_user_side(&self) -> bool {
        !matches!(self, Party::Lsp)
    }
}

impl core::fmt::Display for Party {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Party::User(i) => write!(f, "u{i}"),
            Party::Coordinator => write!(f, "u_c"),
            Party::Lsp => write!(f, "LSP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn user_side_classification() {
        assert!(Party::User(0).is_user_side());
        assert!(Party::Coordinator.is_user_side());
        assert!(!Party::Lsp.is_user_side());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Party::User(3).to_string(), "u3");
        assert_eq!(Party::Coordinator.to_string(), "u_c");
        assert_eq!(Party::Lsp.to_string(), "LSP");
    }
}
