//! The mutable cost ledger protocol implementations report into.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::party::Party;
use crate::report::CostReport;
use crate::trace::Transcript;

/// Accumulates message bytes and per-party CPU time for one protocol run.
#[derive(Debug, Default)]
pub struct CostLedger {
    /// Bytes sent, keyed by (sender, receiver).
    messages: HashMap<(Party, Party), u64>,
    /// CPU time attributed to each party.
    cpu: HashMap<Party, Duration>,
    /// Free-form counters (e.g. "kgnn_queries", "sanitation_samples").
    counters: HashMap<&'static str, u64>,
    /// Ordered message transcript (labels via [`CostLedger::record_msg_labeled`]).
    transcript: Transcript,
}

/// RAII guard that attributes elapsed wall time to a party when dropped.
pub struct TimerGuard<'a> {
    ledger: &'a mut CostLedger,
    party: Party,
    start: Instant,
}

impl Drop for TimerGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        *self.ledger.cpu.entry(self.party).or_default() += elapsed;
    }
}

impl CostLedger {
    /// Fresh, empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a message of `bytes` bytes from `from` to `to`.
    pub fn record_msg(&mut self, from: Party, to: Party, bytes: usize) {
        self.record_msg_labeled(from, to, bytes, "");
    }

    /// Records a message with a transcript label (protocol step name).
    pub fn record_msg_labeled(
        &mut self,
        from: Party,
        to: Party,
        bytes: usize,
        label: impl Into<String>,
    ) {
        *self.messages.entry((from, to)).or_default() += bytes as u64;
        self.transcript.record(from, to, bytes, label);
    }

    /// The ordered message transcript of this run.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Attributes a pre-measured duration to a party.
    pub fn record_cpu(&mut self, party: Party, d: Duration) {
        *self.cpu.entry(party).or_default() += d;
    }

    /// Times a closure, attributing its wall time to `party`.
    pub fn time<T>(&mut self, party: Party, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_cpu(party, start.elapsed());
        out
    }

    /// Starts a scoped timer; the elapsed time is attributed on drop.
    pub fn timer(&mut self, party: Party) -> TimerGuard<'_> {
        TimerGuard {
            ledger: self,
            party,
            start: Instant::now(),
        }
    }

    /// Increments a named counter.
    pub fn count(&mut self, name: &'static str, by: u64) {
        *self.counters.entry(name).or_default() += by;
    }

    /// Reads a named counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Total bytes over all messages.
    pub fn total_comm_bytes(&self) -> u64 {
        self.messages.values().sum()
    }

    /// Bytes exchanged strictly within the user group (both endpoints
    /// user-side).
    pub fn intra_group_bytes(&self) -> u64 {
        self.messages
            .iter()
            .filter(|((f, t), _)| f.is_user_side() && t.is_user_side())
            .map(|(_, b)| b)
            .sum()
    }

    /// Bytes on the user↔LSP links.
    pub fn user_lsp_bytes(&self) -> u64 {
        self.total_comm_bytes() - self.intra_group_bytes()
    }

    /// CPU time of a single party.
    pub fn cpu_of(&self, party: Party) -> Duration {
        self.cpu.get(&party).copied().unwrap_or_default()
    }

    /// Summed CPU over all user-side parties (the paper's "user cost").
    pub fn user_cpu(&self) -> Duration {
        self.cpu
            .iter()
            .filter(|(p, _)| p.is_user_side())
            .map(|(_, d)| *d)
            .sum()
    }

    /// LSP CPU (the paper's "LSP cost").
    pub fn lsp_cpu(&self) -> Duration {
        self.cpu_of(Party::Lsp)
    }

    /// Snapshot into an aggregated, serializable report.
    pub fn report(&self) -> CostReport {
        CostReport {
            comm_bytes_total: self.total_comm_bytes(),
            comm_bytes_intra_group: self.intra_group_bytes(),
            comm_bytes_user_lsp: self.user_lsp_bytes(),
            user_cpu_secs: self.user_cpu().as_secs_f64(),
            lsp_cpu_secs: self.lsp_cpu().as_secs_f64(),
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    /// Merges another ledger's totals into this one (for averaging runs).
    pub fn absorb(&mut self, other: &CostLedger) {
        for (&key, &bytes) in &other.messages {
            *self.messages.entry(key).or_default() += bytes;
        }
        for (&party, &d) in &other.cpu {
            *self.cpu.entry(party).or_default() += d;
        }
        for (&name, &v) in &other.counters {
            *self.counters.entry(name).or_default() += v;
        }
        for m in other.transcript.messages() {
            self.transcript
                .record(m.from, m.to, m.bytes, m.label.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_accounting() {
        let mut l = CostLedger::new();
        l.record_msg(Party::User(0), Party::Lsp, 100);
        l.record_msg(Party::Coordinator, Party::Lsp, 50);
        l.record_msg(Party::Coordinator, Party::User(1), 10);
        l.record_msg(Party::Lsp, Party::Coordinator, 200);
        assert_eq!(l.total_comm_bytes(), 360);
        assert_eq!(l.intra_group_bytes(), 10);
        assert_eq!(l.user_lsp_bytes(), 350);
    }

    #[test]
    fn cpu_attribution() {
        let mut l = CostLedger::new();
        l.record_cpu(Party::User(0), Duration::from_millis(5));
        l.record_cpu(Party::Coordinator, Duration::from_millis(7));
        l.record_cpu(Party::Lsp, Duration::from_millis(100));
        assert_eq!(l.user_cpu(), Duration::from_millis(12));
        assert_eq!(l.lsp_cpu(), Duration::from_millis(100));
    }

    #[test]
    fn time_closure_returns_value() {
        let mut l = CostLedger::new();
        let v = l.time(Party::Lsp, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(l.lsp_cpu() >= Duration::from_millis(2));
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let mut l = CostLedger::new();
        {
            let _g = l.timer(Party::User(0));
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(l.user_cpu() >= Duration::from_millis(2));
    }

    #[test]
    fn counters() {
        let mut l = CostLedger::new();
        l.count("kgnn_queries", 3);
        l.count("kgnn_queries", 2);
        assert_eq!(l.counter("kgnn_queries"), 5);
        assert_eq!(l.counter("missing"), 0);
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = CostLedger::new();
        a.record_msg(Party::User(0), Party::Lsp, 10);
        a.record_cpu(Party::Lsp, Duration::from_millis(1));
        a.count("x", 1);
        let mut b = CostLedger::new();
        b.record_msg(Party::User(0), Party::Lsp, 20);
        b.record_cpu(Party::Lsp, Duration::from_millis(2));
        b.count("x", 4);
        a.absorb(&b);
        assert_eq!(a.total_comm_bytes(), 30);
        assert_eq!(a.lsp_cpu(), Duration::from_millis(3));
        assert_eq!(a.counter("x"), 5);
    }

    #[test]
    fn report_snapshot() {
        let mut l = CostLedger::new();
        l.record_msg(Party::Coordinator, Party::Lsp, 64);
        l.record_cpu(Party::Coordinator, Duration::from_millis(3));
        let r = l.report();
        assert_eq!(r.comm_bytes_total, 64);
        assert!(r.user_cpu_secs > 0.0);
        assert_eq!(r.lsp_cpu_secs, 0.0);
    }
}
