//! Message transcript recording.
//!
//! Beyond aggregate byte counts, a [`Transcript`] records the ordered
//! sequence of `(from, to, bytes, label)` events of a protocol run, so
//! tests can assert the *shape* of Algorithm 1/2 — who talks to whom,
//! in what order, and that nothing else crosses the wire.

use serde::{Deserialize, Serialize};

use crate::party::Party;

/// One recorded message.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracedMessage {
    pub from: Party,
    pub to: Party,
    pub bytes: usize,
    /// Free-form step label ("pos broadcast", "query", "location set"…).
    pub label: String,
}

/// An ordered transcript of protocol messages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Transcript {
    messages: Vec<TracedMessage>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a message event.
    pub fn record(&mut self, from: Party, to: Party, bytes: usize, label: impl Into<String>) {
        self.messages.push(TracedMessage {
            from,
            to,
            bytes,
            label: label.into(),
        });
    }

    /// All events in order.
    pub fn messages(&self) -> &[TracedMessage] {
        &self.messages
    }

    /// Events with a given label.
    pub fn with_label<'a>(
        &'a self,
        label: &'a str,
    ) -> impl Iterator<Item = &'a TracedMessage> + 'a {
        self.messages.iter().filter(move |m| m.label == label)
    }

    /// Total bytes across all events (must agree with the ledger).
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.bytes).sum()
    }

    /// `true` iff any event was sent from `from` to `to`.
    pub fn talked(&self, from: Party, to: Party) -> bool {
        self.messages.iter().any(|m| m.from == from && m.to == to)
    }

    /// Index of the first event with the label, if any.
    pub fn first_index_of(&self, label: &str) -> Option<usize> {
        self.messages.iter().position(|m| m.label == label)
    }

    /// Asserts label `earlier` first occurs before label `later`.
    pub fn ordered(&self, earlier: &str, later: &str) -> bool {
        match (self.first_index_of(earlier), self.first_index_of(later)) {
            (Some(a), Some(b)) => a < b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Transcript {
        let mut t = Transcript::new();
        t.record(Party::Coordinator, Party::User(1), 4, "pos broadcast");
        t.record(Party::Coordinator, Party::Lsp, 100, "query");
        t.record(Party::User(0), Party::Lsp, 64, "location set");
        t.record(Party::Lsp, Party::Coordinator, 32, "answer");
        t
    }

    #[test]
    fn total_and_lookup() {
        let t = sample();
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.with_label("query").count(), 1);
        assert!(t.talked(Party::Lsp, Party::Coordinator));
        assert!(!t.talked(Party::User(1), Party::Lsp));
    }

    #[test]
    fn ordering_checks() {
        let t = sample();
        assert!(t.ordered("pos broadcast", "query"));
        assert!(t.ordered("query", "answer"));
        assert!(!t.ordered("answer", "query"));
        assert!(!t.ordered("answer", "missing"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = sample();
        let json = serde_json::to_string(&t).unwrap();
        let back: Transcript = serde_json::from_str(&json).unwrap();
        assert_eq!(back.messages(), t.messages());
    }
}
