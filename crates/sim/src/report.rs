//! Aggregated, serializable cost summaries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Snapshot of one (or an averaged batch of) protocol run(s):
/// the three dominating costs of §8.1 plus named counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CostReport {
    /// Total communication (all links), bytes.
    pub comm_bytes_total: u64,
    /// Communication within the user group, bytes.
    pub comm_bytes_intra_group: u64,
    /// Communication on user↔LSP links, bytes.
    pub comm_bytes_user_lsp: u64,
    /// Summed CPU seconds of all user-side parties.
    pub user_cpu_secs: f64,
    /// CPU seconds of LSP.
    pub lsp_cpu_secs: f64,
    /// Named counters (queries executed, samples drawn, POIs returned…).
    pub counters: BTreeMap<String, u64>,
}

impl CostReport {
    /// Scales every cost by `1/runs` — turning a summed ledger into a
    /// per-query average (the paper reports the average of 500 queries).
    pub fn averaged(&self, runs: u64) -> CostReport {
        assert!(runs > 0, "cannot average over zero runs");
        CostReport {
            comm_bytes_total: self.comm_bytes_total / runs,
            comm_bytes_intra_group: self.comm_bytes_intra_group / runs,
            comm_bytes_user_lsp: self.comm_bytes_user_lsp / runs,
            user_cpu_secs: self.user_cpu_secs / runs as f64,
            lsp_cpu_secs: self.lsp_cpu_secs / runs as f64,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v / runs))
                .collect(),
        }
    }

    /// Communication cost in KB (the y-axis unit of Figures 5a/6a/8a).
    pub fn comm_kb(&self) -> f64 {
        self.comm_bytes_total as f64 / 1024.0
    }
}

/// Renders a [`TelemetrySnapshot`] as an aligned, human-readable table:
/// one row per pipeline stage (count and latency percentiles in µs),
/// followed by the non-zero counters and the gauges. The JSON face of
/// the same data is [`TelemetrySnapshot::to_json`]; this is the
/// terminal face, used by the `ppgnn-server` `stats` command.
///
/// [`TelemetrySnapshot`]: ppgnn_telemetry::TelemetrySnapshot
pub fn render_telemetry_table(snap: &ppgnn_telemetry::TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "stage", "count", "p50_us", "p95_us", "p99_us", "max_us"
    ));
    for s in &snap.stages {
        out.push_str(&format!(
            "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            s.name, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
        ));
    }
    let live: Vec<_> = snap.counters.iter().filter(|c| c.value > 0).collect();
    if !live.is_empty() {
        out.push_str("counters:");
        for c in live {
            out.push_str(&format!(" {}={}", c.name, c.value));
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:");
        for g in &snap.gauges {
            out.push_str(&format!(" {}={}", g.name, g.value));
        }
        out.push('\n');
    }
    out
}

/// Renders kept trace segments as an indented terminal tree: one block
/// per trace id, the client segment first, each server segment nested
/// under the client span it resumed from (the context's parent span).
/// Only redacted span names, attribute keys, counts, and durations
/// appear — the terminal face of the same data
/// [`ppgnn_telemetry::trace::chrome_trace_json`] exports to Perfetto.
pub fn render_trace_tree(segments: &[ppgnn_telemetry::trace::TraceSegment]) -> String {
    use ppgnn_telemetry::trace::{hex_id, SegmentOrigin, SpanRecord, TraceSegment};
    use ppgnn_telemetry::Op;

    fn push_span(
        out: &mut String,
        spans: &[SpanRecord],
        span: &SpanRecord,
        indent: usize,
        depths: &mut BTreeMap<u64, usize>,
    ) {
        depths.insert(span.span_id, indent);
        out.push_str(&"  ".repeat(indent));
        out.push_str(&format!("{} {}us", span.name.name(), span.dur_us));
        for &(k, v) in &span.attrs {
            out.push_str(&format!(" {}={}", k.name(), v));
        }
        if span.error {
            out.push_str(" [error]");
        }
        out.push('\n');
        let mut children: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent_id == span.span_id)
            .collect();
        children.sort_by_key(|s| s.start_us);
        for child in children {
            push_span(out, spans, child, indent + 1, depths);
        }
    }

    fn push_segment(
        out: &mut String,
        seg: &TraceSegment,
        indent: usize,
        depths: &mut BTreeMap<u64, usize>,
    ) {
        if let Some(root) = seg.root() {
            push_span(out, &seg.spans, root, indent, depths);
        }
        let ops: Vec<String> = Op::ALL
            .iter()
            .filter(|op| seg.ops[**op as usize] > 0)
            .map(|op| format!("{}={}", op.name(), seg.ops[*op as usize]))
            .collect();
        if !ops.is_empty() {
            out.push_str(&"  ".repeat(indent + 1));
            out.push_str(&format!("ops: {}\n", ops.join(" ")));
        }
        if seg.spans_dropped > 0 {
            out.push_str(&"  ".repeat(indent + 1));
            out.push_str(&format!("({} spans dropped)\n", seg.spans_dropped));
        }
    }

    let mut order: Vec<u64> = Vec::new();
    let mut by_trace: BTreeMap<u64, Vec<&TraceSegment>> = BTreeMap::new();
    for seg in segments {
        let entry = by_trace.entry(seg.trace_id).or_default();
        if entry.is_empty() {
            order.push(seg.trace_id);
        }
        entry.push(seg);
    }
    let mut out = String::new();
    for trace_id in order {
        let segs = &by_trace[&trace_id];
        let dur = segs.iter().map(|s| s.dur_us()).max().unwrap_or(0);
        out.push_str(&format!("trace {} ({dur}us)", hex_id(trace_id)));
        if segs.iter().any(|s| s.slow) {
            out.push_str(" [slow]");
        }
        if segs.iter().any(|s| s.error) {
            out.push_str(" [error]");
        }
        if segs.iter().any(|s| s.shed) {
            out.push_str(" [shed]");
        }
        out.push('\n');
        // Client span depths, so server segments can nest under the
        // span that carried their context.
        let mut depths: BTreeMap<u64, usize> = BTreeMap::new();
        for seg in segs.iter().filter(|s| s.origin == SegmentOrigin::Client) {
            push_segment(&mut out, seg, 1, &mut depths);
        }
        let client_depths = depths.clone();
        for seg in segs.iter().filter(|s| s.origin == SegmentOrigin::Server) {
            let indent = client_depths
                .get(&seg.parent_span)
                .map(|d| d + 1)
                .unwrap_or(1);
            push_segment(&mut out, seg, indent, &mut depths);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_divides_everything() {
        let mut counters = BTreeMap::new();
        counters.insert("pois".to_string(), 40u64);
        let r = CostReport {
            comm_bytes_total: 1000,
            comm_bytes_intra_group: 100,
            comm_bytes_user_lsp: 900,
            user_cpu_secs: 2.0,
            lsp_cpu_secs: 10.0,
            counters,
        };
        let avg = r.averaged(10);
        assert_eq!(avg.comm_bytes_total, 100);
        assert_eq!(avg.user_cpu_secs, 0.2);
        assert_eq!(avg.counters["pois"], 4);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn zero_runs_panics() {
        CostReport::default().averaged(0);
    }

    #[test]
    fn kb_conversion() {
        let r = CostReport {
            comm_bytes_total: 2048,
            ..Default::default()
        };
        assert_eq!(r.comm_kb(), 2.0);
    }

    #[test]
    fn telemetry_table_lists_stages_and_counters() {
        use ppgnn_telemetry::{CounterSnapshot, StageSnapshot, TelemetrySnapshot};
        let snap = TelemetrySnapshot {
            stages: vec![StageSnapshot {
                name: "validate".into(),
                count: 4,
                total_us: 100,
                max_us: 40,
                p50_us: 20,
                p95_us: 40,
                p99_us: 40,
                p50_exemplar: 0,
                p95_exemplar: 0,
                p99_exemplar: 0,
            }],
            counters: vec![
                CounterSnapshot {
                    name: "queries-ok".into(),
                    value: 4,
                },
                CounterSnapshot {
                    name: "refused".into(),
                    value: 0,
                },
            ],
            gauges: vec![CounterSnapshot {
                name: "sessions".into(),
                value: 1,
            }],
        };
        let table = render_telemetry_table(&snap);
        assert!(table.contains("validate"));
        assert!(table.contains("queries-ok=4"));
        // Zero counters are elided from the terminal face.
        assert!(!table.contains("refused"));
        assert!(table.contains("sessions=1"));
    }

    #[test]
    fn trace_tree_nests_server_under_client() {
        use ppgnn_telemetry::trace::{self, AttrKey, SpanName, Tracer, TracerConfig};
        let t = Tracer::new();
        t.configure(&TracerConfig {
            enabled: true,
            slow_us: 0,
            keep_permille: 1000,
            capacity: 8,
            slow_log: false,
            max_spans: 32,
        });
        let (ctx, client) = t.start();
        let client = client.unwrap();
        {
            let _a = client.activate();
            let _s = trace::span(SpanName::ClientPlan);
        }
        let server = t.resume(&ctx).unwrap();
        {
            let _a = server.activate();
            let s = trace::span(SpanName::Validate);
            s.attr(AttrKey::Users, 3);
        }
        server.finish();
        client.finish();
        let tree = render_trace_tree(&t.segments());
        assert!(tree.contains("client-query"));
        assert!(tree.contains("client-plan"));
        assert!(tree.contains("validate"));
        assert!(tree.contains("users=3"));
        assert!(tree.contains("[slow]")); // slow_us 0: everything slow
        let indent = |l: &str| l.len() - l.trim_start().len();
        let client_line = tree.lines().find(|l| l.contains("client-query")).unwrap();
        let server_line = tree.lines().find(|l| l.contains("server-query")).unwrap();
        assert!(indent(server_line) > indent(client_line));
    }

    #[test]
    fn serde_roundtrip() {
        let r = CostReport {
            comm_bytes_total: 5,
            ..Default::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: CostReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
