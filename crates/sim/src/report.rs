//! Aggregated, serializable cost summaries.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Snapshot of one (or an averaged batch of) protocol run(s):
/// the three dominating costs of §8.1 plus named counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CostReport {
    /// Total communication (all links), bytes.
    pub comm_bytes_total: u64,
    /// Communication within the user group, bytes.
    pub comm_bytes_intra_group: u64,
    /// Communication on user↔LSP links, bytes.
    pub comm_bytes_user_lsp: u64,
    /// Summed CPU seconds of all user-side parties.
    pub user_cpu_secs: f64,
    /// CPU seconds of LSP.
    pub lsp_cpu_secs: f64,
    /// Named counters (queries executed, samples drawn, POIs returned…).
    pub counters: BTreeMap<String, u64>,
}

impl CostReport {
    /// Scales every cost by `1/runs` — turning a summed ledger into a
    /// per-query average (the paper reports the average of 500 queries).
    pub fn averaged(&self, runs: u64) -> CostReport {
        assert!(runs > 0, "cannot average over zero runs");
        CostReport {
            comm_bytes_total: self.comm_bytes_total / runs,
            comm_bytes_intra_group: self.comm_bytes_intra_group / runs,
            comm_bytes_user_lsp: self.comm_bytes_user_lsp / runs,
            user_cpu_secs: self.user_cpu_secs / runs as f64,
            lsp_cpu_secs: self.lsp_cpu_secs / runs as f64,
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v / runs))
                .collect(),
        }
    }

    /// Communication cost in KB (the y-axis unit of Figures 5a/6a/8a).
    pub fn comm_kb(&self) -> f64 {
        self.comm_bytes_total as f64 / 1024.0
    }
}

/// Renders a [`TelemetrySnapshot`] as an aligned, human-readable table:
/// one row per pipeline stage (count and latency percentiles in µs),
/// followed by the non-zero counters and the gauges. The JSON face of
/// the same data is [`TelemetrySnapshot::to_json`]; this is the
/// terminal face, used by the `ppgnn-server` `stats` command.
///
/// [`TelemetrySnapshot`]: ppgnn_telemetry::TelemetrySnapshot
pub fn render_telemetry_table(snap: &ppgnn_telemetry::TelemetrySnapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "stage", "count", "p50_us", "p95_us", "p99_us", "max_us"
    ));
    for s in &snap.stages {
        out.push_str(&format!(
            "{:<20} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
            s.name, s.count, s.p50_us, s.p95_us, s.p99_us, s.max_us
        ));
    }
    let live: Vec<_> = snap.counters.iter().filter(|c| c.value > 0).collect();
    if !live.is_empty() {
        out.push_str("counters:");
        for c in live {
            out.push_str(&format!(" {}={}", c.name, c.value));
        }
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:");
        for g in &snap.gauges {
            out.push_str(&format!(" {}={}", g.name, g.value));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averaging_divides_everything() {
        let mut counters = BTreeMap::new();
        counters.insert("pois".to_string(), 40u64);
        let r = CostReport {
            comm_bytes_total: 1000,
            comm_bytes_intra_group: 100,
            comm_bytes_user_lsp: 900,
            user_cpu_secs: 2.0,
            lsp_cpu_secs: 10.0,
            counters,
        };
        let avg = r.averaged(10);
        assert_eq!(avg.comm_bytes_total, 100);
        assert_eq!(avg.user_cpu_secs, 0.2);
        assert_eq!(avg.counters["pois"], 4);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn zero_runs_panics() {
        CostReport::default().averaged(0);
    }

    #[test]
    fn kb_conversion() {
        let r = CostReport {
            comm_bytes_total: 2048,
            ..Default::default()
        };
        assert_eq!(r.comm_kb(), 2.0);
    }

    #[test]
    fn telemetry_table_lists_stages_and_counters() {
        use ppgnn_telemetry::{CounterSnapshot, StageSnapshot, TelemetrySnapshot};
        let snap = TelemetrySnapshot {
            stages: vec![StageSnapshot {
                name: "validate".into(),
                count: 4,
                total_us: 100,
                max_us: 40,
                p50_us: 20,
                p95_us: 40,
                p99_us: 40,
            }],
            counters: vec![
                CounterSnapshot {
                    name: "queries-ok".into(),
                    value: 4,
                },
                CounterSnapshot {
                    name: "refused".into(),
                    value: 0,
                },
            ],
            gauges: vec![CounterSnapshot {
                name: "sessions".into(),
                value: 1,
            }],
        };
        let table = render_telemetry_table(&snap);
        assert!(table.contains("validate"));
        assert!(table.contains("queries-ok=4"));
        // Zero counters are elided from the terminal face.
        assert!(!table.contains("refused"));
        assert!(table.contains("sessions=1"));
    }

    #[test]
    fn serde_roundtrip() {
        let r = CostReport {
            comm_bytes_total: 5,
            ..Default::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: CostReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
