//! Cost-accounting testbed.
//!
//! The paper's evaluation (§8.1) measures three dominating costs per
//! query: total **communication cost** (user↔LSP and user↔user bytes),
//! total **user cost** (sum of all users' CPU time, coordinator included)
//! and **LSP cost**. This crate provides the byte-accurate message ledger
//! and per-party CPU ledger the protocol implementations report into,
//! plus the aggregated [`CostReport`] the benchmark harness prints.
//!
//! Parties are identified by [`Party`]; message sizes are recorded
//! explicitly by the protocol code (the protocols know the exact wire
//! width of every field: a location is `L_l` bytes, an ε_s ciphertext is
//! `(s+1)·keysize/8` bytes, …).

mod ledger;
pub mod moving;
mod network;
mod party;
mod report;
mod trace;

pub use ledger::{CostLedger, TimerGuard};
pub use network::{LinkModel, NetworkModel};
pub use party::Party;
pub use report::{render_telemetry_table, render_trace_tree, CostReport};
pub use trace::{TracedMessage, Transcript};

/// Byte width of one plaintext location on the wire (two f64 coordinates)
/// — the paper's `L_l`.
pub const LOCATION_BYTES: usize = 16;

/// Byte width of small scalar protocol fields (`k`, positions, parameters).
pub const SCALAR_BYTES: usize = 4;
