//! Live cost-model calibration: per-server cost constants, continuously
//! fitted from windowed telemetry.
//!
//! ROADMAP item 5's adaptive planner needs to answer "what would this
//! query plan cost *on this machine, right now*": per-element
//! Damgård–Jurik dot ns, encrypt/decrypt ns, sanitation Z-test ns, and
//! wire bytes per candidate — all of which move with key size, CPU, and
//! load. Rather than a benchmark run, the [`CostModel`] divides windowed
//! stage time by windowed op counts every tick and folds the quotient
//! into an EWMA:
//!
//! ```text
//! ns_per_op = Δ(stage sum_us) × 1000 / Δ(op count)       (per window)
//! value     ← (3 × value + ns_per_op) / 4                (α = 1/4)
//! ```
//!
//! Stage timers wrap exactly one op for the paillier stages (one
//! encrypt, one decrypt, one dot), so `value` predicts the windowed
//! stage's central band — it tracks the per-window mean exactly, which
//! coincides with the median for tight distributions and sits above it
//! for right-skewed ones. The bench gate asserts the prediction lands
//! within 25 % of that band (median, or failing that mean).
//! Constants are keyed by the session key size ([`CostTable`] per
//! `key_bits`) because Damgård–Jurik cost is superlinear in modulus
//! bits.
//!
//! Everything is integer nanoseconds (or integer bytes): the model is
//! exported on `/metrics` and in snapshots, and every export face in
//! this system is float-free by construction. The model persists as a
//! line-based text file next to the WAL data dir ([`CostModel::save`] /
//! [`CostModel::load`]) so a restarted server warm-starts with its
//! previous constants instead of re-learning from zero.

use std::io::{self, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::json;
use crate::window::WindowedSnapshot;
use crate::Stage;

/// EWMA weight: new observations get 1/4, history keeps 3/4.
const EWMA_NUM: u64 = 3;
const EWMA_DEN: u64 = 4;

/// The closed set of calibrated constants. Adding a variant is the
/// moment to ask "can it leak?" — values must stay aggregate integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CostKind {
    /// One probabilistic Damgård–Jurik encryption, nanoseconds.
    PaillierEncryptNs,
    /// One Damgård–Jurik decryption, nanoseconds.
    PaillierDecryptNs,
    /// One homomorphic dot product, nanoseconds.
    PaillierDotNs,
    /// One ciphertext element inside a dot product, nanoseconds.
    PaillierDotElementNs,
    /// One sanitation Z-test (`reject_h0`), nanoseconds.
    SanitationZTestNs,
    /// Answer payload bytes per evaluated candidate.
    AnswerBytesPerCandidate,
}

impl CostKind {
    /// Every constant, in report order.
    pub const ALL: [CostKind; 6] = [
        CostKind::PaillierEncryptNs,
        CostKind::PaillierDecryptNs,
        CostKind::PaillierDotNs,
        CostKind::PaillierDotElementNs,
        CostKind::SanitationZTestNs,
        CostKind::AnswerBytesPerCandidate,
    ];

    /// Number of constants.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable metric name.
    pub fn name(self) -> &'static str {
        match self {
            CostKind::PaillierEncryptNs => "paillier-encrypt-ns",
            CostKind::PaillierDecryptNs => "paillier-decrypt-ns",
            CostKind::PaillierDotNs => "paillier-dot-ns",
            CostKind::PaillierDotElementNs => "paillier-dot-element-ns",
            CostKind::SanitationZTestNs => "sanitation-z-test-ns",
            CostKind::AnswerBytesPerCandidate => "answer-bytes-per-candidate",
        }
    }

    /// Inverse of [`CostKind::name`].
    pub fn from_name(name: &str) -> Option<CostKind> {
        CostKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One calibrated constant: the EWMA value and how many window
/// observations were folded into it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostEntry {
    /// Current EWMA estimate (integer ns, or integer bytes).
    pub value: u64,
    /// Window observations folded in so far (0 = never observed).
    pub samples: u64,
}

impl CostEntry {
    fn fold(&mut self, observed: u64) {
        self.value = if self.samples == 0 {
            observed
        } else {
            (self.value * EWMA_NUM + observed) / EWMA_DEN
        };
        self.samples += 1;
    }
}

/// All constants for one key size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostTable {
    /// Damgård–Jurik modulus bits the table was calibrated under.
    pub key_bits: u32,
    entries: [CostEntry; CostKind::COUNT],
}

impl CostTable {
    fn new(key_bits: u32) -> Self {
        CostTable {
            key_bits,
            entries: [CostEntry::default(); CostKind::COUNT],
        }
    }

    /// The entry for one constant.
    pub fn entry(&self, kind: CostKind) -> CostEntry {
        self.entries[kind as usize]
    }

    /// The calibrated value, `None` until first observed.
    pub fn get(&self, kind: CostKind) -> Option<u64> {
        let e = self.entries[kind as usize];
        (e.samples > 0).then_some(e.value)
    }
}

/// The per-server cost model: one [`CostTable`] per key size seen.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    tables: Vec<CostTable>,
}

impl CostModel {
    /// An empty model.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Tables calibrated so far, ordered by key size.
    pub fn tables(&self) -> &[CostTable] {
        &self.tables
    }

    /// The table for `key_bits`, if any key of that size was observed.
    pub fn table(&self, key_bits: u32) -> Option<&CostTable> {
        self.tables.iter().find(|t| t.key_bits == key_bits)
    }

    /// Shorthand for `table(key_bits).and_then(|t| t.get(kind))`.
    pub fn get(&self, key_bits: u32, kind: CostKind) -> Option<u64> {
        self.table(key_bits).and_then(|t| t.get(kind))
    }

    /// True when no table holds any observation.
    pub fn is_empty(&self) -> bool {
        self.tables
            .iter()
            .all(|t| t.entries.iter().all(|e| e.samples == 0))
    }

    fn table_mut(&mut self, key_bits: u32) -> &mut CostTable {
        match self.tables.iter().position(|t| t.key_bits == key_bits) {
            Some(i) => &mut self.tables[i],
            None => {
                self.tables.push(CostTable::new(key_bits));
                self.tables.sort_by_key(|t| t.key_bits);
                let i = self
                    .tables
                    .iter()
                    .position(|t| t.key_bits == key_bits)
                    .unwrap();
                &mut self.tables[i]
            }
        }
    }

    /// Folds one windowed observation into the table for `key_bits`.
    /// Constants whose denominator op never fired in the window are
    /// left untouched. Returns how many constants were updated.
    pub fn observe(&mut self, key_bits: u32, w: &WindowedSnapshot) -> usize {
        let stage_sum_us = |s: Stage| w.stage(s.name()).map(|x| x.total_us).unwrap_or(0);
        let ops = |name: &str| w.counter(name).unwrap_or(0);

        let mut updates: Vec<(CostKind, u64)> = Vec::new();
        let mut per_op = |kind: CostKind, sum_us: u64, n: u64| {
            if n > 0 && sum_us > 0 {
                updates.push((kind, sum_us.saturating_mul(1000) / n));
            }
        };
        per_op(
            CostKind::PaillierEncryptNs,
            stage_sum_us(Stage::PaillierEncrypt),
            ops("paillier-encrypt-ops"),
        );
        per_op(
            CostKind::PaillierDecryptNs,
            stage_sum_us(Stage::PaillierDecrypt),
            ops("paillier-decrypt-ops"),
        );
        per_op(
            CostKind::PaillierDotNs,
            stage_sum_us(Stage::PaillierDot),
            ops("paillier-dot-ops"),
        );
        per_op(
            CostKind::PaillierDotElementNs,
            stage_sum_us(Stage::PaillierDot),
            ops("paillier-dot-elements"),
        );
        per_op(
            CostKind::SanitationZTestNs,
            stage_sum_us(Stage::Sanitation),
            ops("sanitation-z-tests"),
        );
        let candidates = ops("candidates-evaluated");
        let answer_bytes = ops("answer-bytes");
        if candidates > 0 && answer_bytes > 0 {
            updates.push((CostKind::AnswerBytesPerCandidate, answer_bytes / candidates));
        }

        if updates.is_empty() {
            return 0;
        }
        let table = self.table_mut(key_bits);
        let n = updates.len();
        for (kind, observed) in updates {
            table.entries[kind as usize].fold(observed);
        }
        n
    }

    /// Predicted windowed stage median, microseconds, for stages whose
    /// timer wraps exactly one op (the paillier stages). `None` for
    /// other stages or before calibration.
    pub fn predict_stage_median_us(&self, key_bits: u32, stage: Stage) -> Option<u64> {
        let kind = match stage {
            Stage::PaillierEncrypt => CostKind::PaillierEncryptNs,
            Stage::PaillierDecrypt => CostKind::PaillierDecryptNs,
            Stage::PaillierDot => CostKind::PaillierDotNs,
            _ => return None,
        };
        self.get(key_bits, kind).map(|ns| ns / 1000)
    }

    /// The JSON value of the model. Integer-only.
    pub fn to_json(&self) -> String {
        let tables = self.tables.iter().map(|t| {
            let mut obj = json::Obj::new();
            obj.field_u64("key_bits", u64::from(t.key_bits));
            obj.field_raw(
                "costs",
                &json::arr(CostKind::ALL.iter().map(|&k| {
                    let e = t.entry(k);
                    let mut c = json::Obj::new();
                    c.field_str("name", k.name());
                    c.field_u64("value", e.value);
                    c.field_u64("samples", e.samples);
                    c.finish()
                })),
            );
            obj.finish()
        });
        let mut obj = json::Obj::new();
        obj.field_raw("tables", &json::arr(tables));
        obj.finish()
    }

    /// Serializes the model as the persisted text format: one
    /// line-based record per constant, integers only, no floats to
    /// parse back.
    ///
    /// ```text
    /// ppgnn-costmodel v1
    /// table key-bits 128
    /// cost paillier-encrypt-ns 123456 samples 17
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("ppgnn-costmodel v1\n");
        for t in &self.tables {
            out.push_str(&format!("table key-bits {}\n", t.key_bits));
            for k in CostKind::ALL {
                let e = t.entry(k);
                if e.samples > 0 {
                    out.push_str(&format!(
                        "cost {} {} samples {}\n",
                        k.name(),
                        e.value,
                        e.samples
                    ));
                }
            }
        }
        out
    }

    /// Inverse of [`CostModel::to_text`]. Unknown cost names are
    /// skipped (forward compatibility); a wrong header yields `None`.
    pub fn from_text(text: &str) -> Option<CostModel> {
        let mut lines = text.lines();
        if lines.next()?.trim() != "ppgnn-costmodel v1" {
            return None;
        }
        let mut model = CostModel::new();
        let mut current: Option<u32> = None;
        for line in lines {
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["table", "key-bits", bits] => {
                    current = bits.parse().ok();
                }
                ["cost", name, value, "samples", samples] => {
                    let (Some(bits), Some(kind)) = (current, CostKind::from_name(name)) else {
                        continue;
                    };
                    let (Ok(value), Ok(samples)) = (value.parse(), samples.parse()) else {
                        continue;
                    };
                    let table = model.table_mut(bits);
                    table.entries[kind as usize] = CostEntry { value, samples };
                }
                [] => {}
                _ => continue,
            }
        }
        Some(model)
    }

    /// Writes the model atomically (`path.tmp` + rename) so a crash
    /// mid-save never leaves a torn file for recovery to choke on.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads a persisted model; `Ok(None)` when the file is absent or
    /// unreadable as a model (a missing or torn model is a cold start,
    /// never a boot failure).
    pub fn load(path: &Path) -> io::Result<Option<CostModel>> {
        let mut text = String::new();
        match std::fs::File::open(path) {
            Ok(mut f) => {
                if f.read_to_string(&mut text).is_err() {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        }
        Ok(CostModel::from_text(&text))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowRing;
    use crate::{MetricsRegistry, Op};
    use std::time::Duration;

    fn observed_window(reg: &MetricsRegistry) -> WindowedSnapshot {
        let mut w = WindowRing::new(Duration::from_secs(1), 4);
        w.tick(reg);
        w.windowed(1)
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn calibrates_per_op_constants_from_window() {
        let reg = MetricsRegistry::new();
        // 4 encryptions totalling 8 ms → 2 ms = 2_000_000 ns each.
        for _ in 0..4 {
            reg.record_us(Stage::PaillierEncrypt, 2_000);
        }
        reg.incr_by(Op::PaillierEncrypt, 4);
        // 2 dots over 10 elements totalling 3 ms.
        reg.record_us(Stage::PaillierDot, 1_000);
        reg.record_us(Stage::PaillierDot, 2_000);
        reg.incr_by(Op::PaillierDot, 2);
        reg.incr_by(Op::PaillierDotElements, 10);
        // 20 candidates produced 10 kB of answers.
        reg.incr_by(Op::CandidatesEvaluated, 20);
        reg.incr_by(Op::AnswerBytes, 10_240);

        let mut model = CostModel::new();
        let updated = model.observe(128, &observed_window(&reg));
        assert_eq!(updated, 4);
        assert_eq!(model.get(128, CostKind::PaillierEncryptNs), Some(2_000_000));
        assert_eq!(model.get(128, CostKind::PaillierDotNs), Some(1_500_000));
        assert_eq!(
            model.get(128, CostKind::PaillierDotElementNs),
            Some(300_000)
        );
        assert_eq!(model.get(128, CostKind::AnswerBytesPerCandidate), Some(512));
        // Never-fired constants stay unobserved, other key sizes empty.
        assert_eq!(model.get(128, CostKind::SanitationZTestNs), None);
        assert_eq!(model.get(256, CostKind::PaillierEncryptNs), None);
        assert_eq!(
            model.predict_stage_median_us(128, Stage::PaillierEncrypt),
            Some(2_000)
        );
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn ewma_smooths_and_splits_by_key_size() {
        let mut model = CostModel::new();
        let reg = MetricsRegistry::new();
        reg.record_us(Stage::PaillierEncrypt, 1_000);
        reg.incr(Op::PaillierEncrypt);
        model.observe(128, &observed_window(&reg));
        assert_eq!(model.get(128, CostKind::PaillierEncryptNs), Some(1_000_000));

        // A second, 5× slower observation moves the EWMA by 1/4.
        let reg2 = MetricsRegistry::new();
        reg2.record_us(Stage::PaillierEncrypt, 5_000);
        reg2.incr(Op::PaillierEncrypt);
        model.observe(128, &observed_window(&reg2));
        assert_eq!(model.get(128, CostKind::PaillierEncryptNs), Some(2_000_000));

        // A different key size gets its own table.
        let reg3 = MetricsRegistry::new();
        reg3.record_us(Stage::PaillierEncrypt, 9_000);
        reg3.incr(Op::PaillierEncrypt);
        model.observe(256, &observed_window(&reg3));
        assert_eq!(model.get(128, CostKind::PaillierEncryptNs), Some(2_000_000));
        assert_eq!(model.get(256, CostKind::PaillierEncryptNs), Some(9_000_000));
        assert_eq!(model.tables().len(), 2);
    }

    #[test]
    fn text_round_trip_and_tolerant_parse() {
        let mut model = CostModel::new();
        let t = model.table_mut(128);
        t.entries[CostKind::PaillierDotNs as usize] = CostEntry {
            value: 77_000,
            samples: 3,
        };
        let t = model.table_mut(512);
        t.entries[CostKind::SanitationZTestNs as usize] = CostEntry {
            value: 1_234,
            samples: 9,
        };
        let text = model.to_text();
        assert!(text.starts_with("ppgnn-costmodel v1\n"));
        assert_eq!(CostModel::from_text(&text), Some(model.clone()));
        // Unknown cost lines are skipped, wrong header rejected.
        let padded = format!("{text}cost not-a-cost 1 samples 1\n");
        assert_eq!(CostModel::from_text(&padded), Some(model));
        assert_eq!(CostModel::from_text("garbage v9\n"), None);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("ppgnn-costmodel-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("costmodel.v1");
        let mut model = CostModel::new();
        model.table_mut(128).entries[0] = CostEntry {
            value: 42,
            samples: 1,
        };
        model.save(&path).unwrap();
        assert_eq!(CostModel::load(&path).unwrap(), Some(model));
        assert_eq!(CostModel::load(&dir.join("absent.v1")).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_is_integer_only() {
        let mut model = CostModel::new();
        model.table_mut(128).entries[2] = CostEntry {
            value: 123_456_789,
            samples: 11,
        };
        let json = model.to_json();
        assert!(json.contains(r#""key_bits":128"#));
        assert!(json.contains(r#""name":"paillier-dot-ns","value":123456789"#));
        let bytes = json.as_bytes();
        for i in 1..bytes.len() - 1 {
            assert!(
                !(bytes[i] == b'.'
                    && bytes[i - 1].is_ascii_digit()
                    && bytes[i + 1].is_ascii_digit()),
                "cost model JSON contains a float near {i}"
            );
        }
    }
}
