//! # ppgnn-telemetry — lock-light per-stage pipeline telemetry
//!
//! The paper's whole evaluation (Table 4, Figs 5–8) is a per-stage cost
//! breakdown; this crate gives the live system the same lens. It sits at
//! the bottom of the workspace dependency graph (below `ppgnn-paillier`)
//! so every layer — crypto primitives, protocol engine, networked server
//! and client — can report into one [`MetricsRegistry`]:
//!
//! * [`Stage`] — named pipeline stages, each backed by a fixed-bucket
//!   [`Histogram`] of microsecond latencies (log₂ octaves with 4 linear
//!   sub-buckets: ≤ 12.5 % relative error, zero allocation, atomics only);
//! * [`Op`] — cheap monotone operation counters (one relaxed
//!   `fetch_add`) for the hot homomorphic primitives where even an
//!   `Instant::now()` pair would be material;
//! * [`Gauge`] — point-in-time values the server publishes at snapshot
//!   time (queue depth, inflight, live workers, sessions);
//! * [`TelemetrySnapshot`] — the one unified snapshot type, serialized
//!   both as JSON (`BENCH_server.json`, `--stats-json`) and as a compact
//!   binary payload (the `Stats` wire reply);
//! * [`HealthSnapshot`] — the compact health probe carried by `Pong`;
//! * [`LatencySummary`] / [`percentile`] / [`summarize`] — raw-sample
//!   aggregation (moved here from `ppgnn-server::metrics` so loadgen,
//!   mallory, and the bench crate share one definition).
//!
//! Instrumented crates call through the process-wide [`global`] registry;
//! handles are `Arc`-cheap to clone and every record path is wait-free.
//! Building with `--features ppgnn-telemetry/noop` compiles every record
//! call to nothing — that is the control arm of the overhead A/B budget
//! in DESIGN.md §12.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;
#[cfg(not(feature = "noop"))]
use std::time::Instant;

use serde::{Deserialize, Serialize};

pub mod costmodel;
pub mod json;
pub mod openmetrics;
pub mod trace;
pub mod window;

// ---------------------------------------------------------------------------
// Stage / Op / Gauge name spaces
// ---------------------------------------------------------------------------

/// A named pipeline stage, timed into a fixed-bucket histogram.
///
/// Stages are hierarchical by design: `end-to-end` contains
/// `client-plan`, `wire-encode` work happens inside `client-encode`, and
/// `paillier-dot` time is part of `private-selection`. Sums across
/// stages therefore over-count; read each stage on its own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Algorithm 1 client side: partition, plant, encrypt indicator.
    ClientPlan,
    /// Client-side request assembly (query payload bytes).
    ClientEncode,
    /// `to_wire` of protocol messages (either side).
    WireEncode,
    /// `from_wire` of protocol messages (either side).
    WireDecode,
    /// Server validation gate (`validate_query`).
    Validate,
    /// LSP candidate evaluation loop (Algorithm 2 answers).
    CandidateEval,
    /// Damgård–Jurik encryption (probabilistic paths).
    PaillierEncrypt,
    /// Damgård–Jurik decryption.
    PaillierDecrypt,
    /// Homomorphic dot product `⟨x, [v]⟩`.
    PaillierDot,
    /// Private selection `A ⨂ [v]` (plus the OPT outer phase).
    PrivateSelection,
    /// Answer sanitation (`safe_prefix_len`: inequality systems + Z-tests).
    Sanitation,
    /// One whole client query: plan → wire → answer → decode.
    EndToEnd,
    /// One whole server-side query: enqueue → worker reply (queue wait
    /// included) — the stage the server's latency SLO burns against.
    ServeQuery,
    /// Dynamic-index mutation: applying a `PoiUpdate` batch and
    /// publishing the new snapshot.
    IndexMutate,
    /// Subscription registry scan: which safe regions a mutation kills.
    InvalidateScan,
    /// Pushing re-plan notifications to invalidated subscribers.
    FanoutNotify,
    /// Appending (and fsyncing, per policy) one WAL record.
    WalAppend,
    /// Writing one durable POI checkpoint and rotating the WAL.
    Checkpoint,
    /// Startup recovery: checkpoint load plus WAL tail replay.
    RecoverReplay,
    /// Padding a response frame to the shape-policy target (bytes
    /// written beyond the real payload).
    ShapePad,
    /// Holding a response until its latency-quantum boundary.
    LatencyHold,
}

impl Stage {
    /// Every stage, in wire/report order.
    pub const ALL: [Stage; 21] = [
        Stage::ClientPlan,
        Stage::ClientEncode,
        Stage::WireEncode,
        Stage::WireDecode,
        Stage::Validate,
        Stage::CandidateEval,
        Stage::PaillierEncrypt,
        Stage::PaillierDecrypt,
        Stage::PaillierDot,
        Stage::PrivateSelection,
        Stage::Sanitation,
        Stage::EndToEnd,
        Stage::ServeQuery,
        Stage::IndexMutate,
        Stage::InvalidateScan,
        Stage::FanoutNotify,
        Stage::WalAppend,
        Stage::Checkpoint,
        Stage::RecoverReplay,
        Stage::ShapePad,
        Stage::LatencyHold,
    ];

    /// Number of stages.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable metric name (kebab-case; used in JSON and on the wire).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientPlan => "client-plan",
            Stage::ClientEncode => "client-encode",
            Stage::WireEncode => "wire-encode",
            Stage::WireDecode => "wire-decode",
            Stage::Validate => "validate",
            Stage::CandidateEval => "candidate-eval",
            Stage::PaillierEncrypt => "paillier-encrypt",
            Stage::PaillierDecrypt => "paillier-decrypt",
            Stage::PaillierDot => "paillier-dot",
            Stage::PrivateSelection => "private-selection",
            Stage::Sanitation => "sanitation",
            Stage::EndToEnd => "end-to-end",
            Stage::ServeQuery => "serve-query",
            Stage::IndexMutate => "index-mutate",
            Stage::InvalidateScan => "invalidate-scan",
            Stage::FanoutNotify => "fanout-notify",
            Stage::WalAppend => "wal-append",
            Stage::Checkpoint => "checkpoint",
            Stage::RecoverReplay => "recover-replay",
            Stage::ShapePad => "shape-pad",
            Stage::LatencyHold => "latency-hold",
        }
    }

    /// Inverse of [`Stage::name`].
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }
}

/// A cheap monotone operation counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Op {
    /// Probabilistic Damgård–Jurik encryptions.
    PaillierEncrypt,
    /// Damgård–Jurik decryptions.
    PaillierDecrypt,
    /// Homomorphic scalar multiplications (one modpow).
    PaillierScalarMul,
    /// Homomorphic additions (one modmul).
    PaillierAdd,
    /// Homomorphic dot products.
    PaillierDot,
    /// Ciphertext elements consumed by dot products (the vector length
    /// of every dot, summed) — denominator for the cost model's
    /// per-element dot constant.
    PaillierDotElements,
    /// Sanitation Z-tests (`reject_h0` evaluations, §5.3).
    SanitationZTest,
    /// Encryptions served from a precomputed randomizer pool.
    PoolHit,
    /// Pooled encryptions that found the pool empty and fell back to
    /// fresh randomness (never an error, never a stall).
    PoolMiss,
    /// Candidate group-distance vectors evaluated by the LSP answer
    /// loop (Algorithm 2 line 2), one per candidate per query.
    CandidatesEvaluated,
    /// Answer payload bytes sent on the wire (pre-padding). Together
    /// with [`Op::CandidatesEvaluated`] this calibrates the cost
    /// model's wire-bytes-per-candidate constant.
    AnswerBytes,
}

impl Op {
    /// Every op counter, in wire/report order.
    pub const ALL: [Op; 11] = [
        Op::PaillierEncrypt,
        Op::PaillierDecrypt,
        Op::PaillierScalarMul,
        Op::PaillierAdd,
        Op::PaillierDot,
        Op::PaillierDotElements,
        Op::SanitationZTest,
        Op::PoolHit,
        Op::PoolMiss,
        Op::CandidatesEvaluated,
        Op::AnswerBytes,
    ];

    /// Number of op counters.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable metric name. Suffixed `-ops` so op counters never
    /// collide with the stage histogram namespace.
    pub fn name(self) -> &'static str {
        match self {
            Op::PaillierEncrypt => "paillier-encrypt-ops",
            Op::PaillierDecrypt => "paillier-decrypt-ops",
            Op::PaillierScalarMul => "paillier-scalar-mul-ops",
            Op::PaillierAdd => "paillier-add-ops",
            Op::PaillierDot => "paillier-dot-ops",
            Op::PaillierDotElements => "paillier-dot-elements",
            Op::SanitationZTest => "sanitation-z-tests",
            Op::PoolHit => "pool-hit",
            Op::PoolMiss => "pool-miss",
            Op::CandidatesEvaluated => "candidates-evaluated",
            Op::AnswerBytes => "answer-bytes",
        }
    }

    /// Inverse of [`Op::name`].
    pub fn from_name(name: &str) -> Option<Op> {
        Op::ALL.into_iter().find(|o| o.name() == name)
    }
}

/// A point-in-time gauge, set (not accumulated) by its owner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Gauge {
    /// Jobs queued behind the worker pool.
    QueueDepth,
    /// Queries currently being evaluated.
    Inflight,
    /// Live worker threads.
    LiveWorkers,
    /// Live sessions in the registry.
    Sessions,
    /// Precomputed randomizers currently available in the pool.
    PoolDepth,
}

impl Gauge {
    /// Every gauge, in wire/report order.
    pub const ALL: [Gauge; 5] = [
        Gauge::QueueDepth,
        Gauge::Inflight,
        Gauge::LiveWorkers,
        Gauge::Sessions,
        Gauge::PoolDepth,
    ];

    /// Number of gauges.
    pub const COUNT: usize = Self::ALL.len();

    /// The stable metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::QueueDepth => "queue-depth",
            Gauge::Inflight => "inflight",
            Gauge::LiveWorkers => "live-workers",
            Gauge::Sessions => "sessions",
            Gauge::PoolDepth => "pool-depth",
        }
    }
}

// ---------------------------------------------------------------------------
// Fixed-bucket histogram
// ---------------------------------------------------------------------------

/// Exact buckets for 0..=15 µs.
const LINEAR_BUCKETS: usize = 16;
/// Log₂ octaves 2⁴..2³⁶ µs (≈ 19 h), 4 linear sub-buckets each.
const OCTAVES: usize = 32;
const SUB_BUCKETS: usize = 4;
/// Total bucket count.
pub const NUM_BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Bucket index for a microsecond value.
fn bucket_index(us: u64) -> usize {
    if us < LINEAR_BUCKETS as u64 {
        return us as usize;
    }
    let log2 = 63 - us.leading_zeros() as u64; // ≥ 4
    if log2 >= 36 {
        return NUM_BUCKETS - 1;
    }
    let sub = ((us >> (log2 - 2)) & 3) as usize;
    LINEAR_BUCKETS + (log2 as usize - 4) * SUB_BUCKETS + sub
}

/// Representative (midpoint) microsecond value for a bucket index.
fn bucket_value(index: usize) -> u64 {
    if index < LINEAR_BUCKETS {
        return index as u64;
    }
    let octave = 4 + (index - LINEAR_BUCKETS) / SUB_BUCKETS;
    let sub = ((index - LINEAR_BUCKETS) % SUB_BUCKETS) as u64;
    (1u64 << octave) + sub * (1u64 << (octave - 2)) + (1u64 << (octave - 3))
}

/// A wait-free fixed-bucket latency histogram (microseconds).
///
/// Records are three relaxed atomic RMWs plus one `fetch_max`; reads are
/// racy-but-monotone, which is all telemetry needs.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    /// Exemplars: per bucket, the trace id of the last sampled trace
    /// whose measurement landed there (0 = none). Links percentiles in
    /// `stats` output to concrete traces in the ring buffer.
    exemplars: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplars: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one microsecond sample.
    pub fn record_us(&self, us: u64) {
        self.record_us_traced(us, 0);
    }

    /// Records one microsecond sample and, when `trace_id` is nonzero,
    /// remembers it as the bucket's exemplar.
    pub fn record_us_traced(&self, us: u64, trace_id: u64) {
        let idx = bucket_index(us);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[idx].store(trace_id, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket and aggregate.
    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for e in &self.exemplars {
            e.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
        self.max_us.store(0, Ordering::Relaxed);
    }

    /// Aggregates the histogram into a named [`StageSnapshot`].
    pub fn snapshot(&self, name: &str) -> StageSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        // Percentile value plus that bucket's exemplar trace id.
        let pct = |p: f64| -> (u64, u64) {
            if total == 0 {
                return (0, 0);
            }
            let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return (bucket_value(i), self.exemplars[i].load(Ordering::Relaxed));
                }
            }
            (
                bucket_value(NUM_BUCKETS - 1),
                self.exemplars[NUM_BUCKETS - 1].load(Ordering::Relaxed),
            )
        };
        let (p50_us, p50_exemplar) = pct(50.0);
        let (p95_us, p95_exemplar) = pct(95.0);
        let (p99_us, p99_exemplar) = pct(99.0);
        StageSnapshot {
            name: name.to_string(),
            count: total,
            total_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            p50_us,
            p95_us,
            p99_us,
            p50_exemplar,
            p95_exemplar,
            p99_exemplar,
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct RegistryInner {
    stages: [Histogram; Stage::COUNT],
    ops: [AtomicU64; Op::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
}

/// The cheap, cloneable telemetry handle: all stage histograms, op
/// counters, and gauges behind one `Arc`.
///
/// Instrumented library code reports through [`global`]; embedders that
/// need isolation (unit tests of the registry itself) can make private
/// registries with [`MetricsRegistry::new`].
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                stages: std::array::from_fn(|_| Histogram::new()),
                ops: std::array::from_fn(|_| AtomicU64::new(0)),
                gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            }),
        }
    }

    /// Starts timing `stage`; the elapsed time is recorded when the
    /// returned guard drops. Compiles to nothing under `noop`.
    #[inline]
    pub fn time(&self, stage: Stage) -> StageTimer<'_> {
        #[cfg(not(feature = "noop"))]
        {
            StageTimer {
                registry: self,
                stage,
                start: Instant::now(),
                armed: true,
            }
        }
        #[cfg(feature = "noop")]
        {
            let _ = stage;
            StageTimer {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Records an already-measured duration against `stage`.
    #[inline]
    pub fn record_duration(&self, stage: Stage, elapsed: Duration) {
        self.record_us(stage, elapsed.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records a microsecond sample against `stage`. When a sampled
    /// trace is active on this thread, its id becomes the landing
    /// bucket's exemplar, linking percentiles to traces.
    #[inline]
    pub fn record_us(&self, stage: Stage, us: u64) {
        #[cfg(not(feature = "noop"))]
        self.inner.stages[stage as usize].record_us_traced(us, trace::current_trace_id());
        #[cfg(feature = "noop")]
        let _ = (stage, us);
    }

    /// Bumps an op counter by one.
    #[inline]
    pub fn incr(&self, op: Op) {
        self.incr_by(op, 1);
    }

    /// Bumps an op counter by `n`. Also attributes the ops to the
    /// thread's active trace (if any), so per-query op counts ride on
    /// trace segments without extra call sites.
    #[inline]
    pub fn incr_by(&self, op: Op, n: u64) {
        #[cfg(not(feature = "noop"))]
        {
            self.inner.ops[op as usize].fetch_add(n, Ordering::Relaxed);
            trace::record_op(op, n);
        }
        #[cfg(feature = "noop")]
        let _ = (op, n);
    }

    /// Current value of an op counter.
    pub fn op_count(&self, op: Op) -> u64 {
        self.inner.ops[op as usize].load(Ordering::Relaxed)
    }

    /// Samples recorded against a stage.
    pub fn stage_count(&self, stage: Stage) -> u64 {
        self.inner.stages[stage as usize].count()
    }

    /// Sets a gauge to its current point-in-time value.
    pub fn set_gauge(&self, gauge: Gauge, value: u64) {
        self.inner.gauges[gauge as usize].store(value, Ordering::Relaxed);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.inner.gauges[gauge as usize].load(Ordering::Relaxed)
    }

    /// Zeroes every histogram, counter, and gauge. Meant for loadgen
    /// warmup discard and test isolation; concurrent recorders may land
    /// either side of the reset.
    pub fn reset(&self) {
        for h in &self.inner.stages {
            h.reset();
        }
        for c in &self.inner.ops {
            c.store(0, Ordering::Relaxed);
        }
        for g in &self.inner.gauges {
            g.store(0, Ordering::Relaxed);
        }
    }

    /// Aggregates everything into one [`TelemetrySnapshot`]. Every stage
    /// and op counter appears, including zero-count ones, so consumers
    /// can distinguish "not exercised" from "not reported".
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            stages: Stage::ALL
                .iter()
                .map(|&s| self.inner.stages[s as usize].snapshot(s.name()))
                .collect(),
            counters: Op::ALL
                .iter()
                .map(|&o| CounterSnapshot {
                    name: o.name().to_string(),
                    value: self.op_count(o),
                })
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| CounterSnapshot {
                    name: g.name().to_string(),
                    value: self.gauge(g),
                })
                .collect(),
        }
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry every instrumented crate reports into.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Drop guard returned by [`MetricsRegistry::time`]; records the elapsed
/// time against its stage on drop.
#[must_use = "dropping the timer immediately records ~0µs"]
pub struct StageTimer<'a> {
    #[cfg(not(feature = "noop"))]
    registry: &'a MetricsRegistry,
    #[cfg(not(feature = "noop"))]
    stage: Stage,
    #[cfg(not(feature = "noop"))]
    start: Instant,
    #[cfg(not(feature = "noop"))]
    armed: bool,
    #[cfg(feature = "noop")]
    _marker: std::marker::PhantomData<&'a ()>,
}

impl StageTimer<'_> {
    /// Discards the measurement (error paths that should not pollute the
    /// latency distribution).
    pub fn discard(mut self) {
        #[cfg(not(feature = "noop"))]
        {
            self.armed = false;
        }
        #[cfg(feature = "noop")]
        let _ = &mut self;
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "noop"))]
        if self.armed {
            let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.registry.record_us(self.stage, us);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot types
// ---------------------------------------------------------------------------

/// Aggregated view of one stage histogram.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stable metric name ([`Stage::name`]).
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, microseconds.
    pub total_us: u64,
    /// Worst sample, microseconds.
    pub max_us: u64,
    /// Median, microseconds (bucket midpoint, ≤ 12.5 % error).
    pub p50_us: u64,
    /// 95th percentile, microseconds.
    pub p95_us: u64,
    /// 99th percentile, microseconds.
    pub p99_us: u64,
    /// Trace id of the last sampled trace in the p50 bucket (0 = none).
    #[serde(default)]
    pub p50_exemplar: u64,
    /// Trace id of the last sampled trace in the p95 bucket (0 = none).
    #[serde(default)]
    pub p95_exemplar: u64,
    /// Trace id of the last sampled trace in the p99 bucket (0 = none).
    #[serde(default)]
    pub p99_exemplar: u64,
}

impl StageSnapshot {
    /// The JSON value of this stage aggregate.
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_str("name", &self.name);
        obj.field_u64("count", self.count);
        obj.field_u64("total_us", self.total_us);
        obj.field_u64("max_us", self.max_us);
        obj.field_u64("p50_us", self.p50_us);
        obj.field_u64("p95_us", self.p95_us);
        obj.field_u64("p99_us", self.p99_us);
        obj.field_str("p50_exemplar", &trace::hex_id(self.p50_exemplar));
        obj.field_str("p95_exemplar", &trace::hex_id(self.p95_exemplar));
        obj.field_str("p99_exemplar", &trace::hex_id(self.p99_exemplar));
        obj.finish()
    }
}

/// One named counter or gauge value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Stable metric name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

impl CounterSnapshot {
    /// The JSON value of this counter.
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_str("name", &self.name);
        obj.field_u64("value", self.value);
        obj.finish()
    }
}

/// The unified telemetry snapshot: every stage histogram aggregate,
/// every monotone counter, every gauge — the payload of the `Stats` wire
/// reply, `--stats-json`, and the `stages`/`counters` sections of
/// `BENCH_server.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Per-stage latency aggregates.
    pub stages: Vec<StageSnapshot>,
    /// Monotone counters (op counters plus embedder counters).
    pub counters: Vec<CounterSnapshot>,
    /// Point-in-time gauges.
    pub gauges: Vec<CounterSnapshot>,
}

/// Decode failure for the binary snapshot encodings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDecodeError(pub &'static str);

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode: {}", self.0)
    }
}

impl std::error::Error for SnapshotDecodeError {}

/// Hard caps on the wire decoding, so a hostile `StatsReply` cannot make
/// the client allocate unboundedly.
const MAX_WIRE_ENTRIES: usize = 1024;
const MAX_WIRE_NAME: usize = 64;

pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotDecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(SnapshotDecodeError("truncated"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SnapshotDecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SnapshotDecodeError> {
        Ok(u16::from_be_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SnapshotDecodeError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SnapshotDecodeError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn name(&mut self) -> Result<String, SnapshotDecodeError> {
        let len = self.u8()? as usize;
        if len == 0 || len > MAX_WIRE_NAME {
            return Err(SnapshotDecodeError("bad name length"));
        }
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| SnapshotDecodeError("name not utf-8"))
    }

    pub(crate) fn done(&self) -> Result<(), SnapshotDecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(SnapshotDecodeError("trailing bytes"))
        }
    }
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    debug_assert!(!bytes.is_empty() && bytes.len() <= MAX_WIRE_NAME);
    out.push(bytes.len().min(MAX_WIRE_NAME) as u8);
    out.extend_from_slice(&bytes[..bytes.len().min(MAX_WIRE_NAME)]);
}

fn put_counters(out: &mut Vec<u8>, entries: &[CounterSnapshot]) {
    out.extend_from_slice(&(entries.len().min(MAX_WIRE_ENTRIES) as u16).to_be_bytes());
    for c in entries.iter().take(MAX_WIRE_ENTRIES) {
        put_name(out, &c.name);
        out.extend_from_slice(&c.value.to_be_bytes());
    }
}

fn get_counters(cur: &mut Cursor<'_>) -> Result<Vec<CounterSnapshot>, SnapshotDecodeError> {
    let n = cur.u16()? as usize;
    if n > MAX_WIRE_ENTRIES {
        return Err(SnapshotDecodeError("too many entries"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(CounterSnapshot {
            name: cur.name()?,
            value: cur.u64()?,
        });
    }
    Ok(out)
}

impl TelemetrySnapshot {
    /// Looks up a stage aggregate by name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Sample count for a stage, 0 when absent.
    pub fn stage_count(&self, name: &str) -> u64 {
        self.stage(name).map(|s| s.count).unwrap_or(0)
    }

    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Appends (or overwrites) a named counter.
    pub fn push_counter(&mut self, name: &str, value: u64) {
        match self.counters.iter_mut().find(|c| c.name == name) {
            Some(c) => c.value = value,
            None => self.counters.push(CounterSnapshot {
                name: name.to_string(),
                value,
            }),
        }
    }

    /// Appends (or overwrites) a named gauge.
    pub fn push_gauge(&mut self, name: &str, value: u64) {
        match self.gauges.iter_mut().find(|g| g.name == name) {
            Some(g) => g.value = value,
            None => self.gauges.push(CounterSnapshot {
                name: name.to_string(),
                value,
            }),
        }
    }

    /// Fills stages that are absent-or-empty here from `other` — used by
    /// loadgen against a *remote* server to overlay client-side stages
    /// onto the server's snapshot without double-counting shared ones.
    pub fn fill_missing_stages_from(&mut self, other: &TelemetrySnapshot) {
        for theirs in &other.stages {
            match self.stages.iter_mut().find(|s| s.name == theirs.name) {
                Some(mine) if mine.count == 0 && theirs.count > 0 => *mine = theirs.clone(),
                Some(_) => {}
                None => self.stages.push(theirs.clone()),
            }
        }
    }

    /// Names from `required` whose stage count is zero or missing.
    pub fn missing_stages(&self, required: &[&str]) -> Vec<String> {
        required
            .iter()
            .filter(|name| self.stage_count(name) == 0)
            .map(|name| name.to_string())
            .collect()
    }

    /// The JSON value of this snapshot (the `--stats-json` /
    /// `BENCH_server.json` encoding). Hand-rolled against the stable
    /// schema so emission never depends on a serde runtime.
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_raw(
            "stages",
            &json::arr(self.stages.iter().map(|s| s.to_json())),
        );
        obj.field_raw(
            "counters",
            &json::arr(self.counters.iter().map(CounterSnapshot::to_json)),
        );
        obj.field_raw(
            "gauges",
            &json::arr(self.gauges.iter().map(CounterSnapshot::to_json)),
        );
        obj.finish()
    }

    /// Compact binary encoding (the `StatsReply` payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.stages.len() + 24 * self.counters.len());
        out.extend_from_slice(&(self.stages.len().min(MAX_WIRE_ENTRIES) as u16).to_be_bytes());
        for s in self.stages.iter().take(MAX_WIRE_ENTRIES) {
            put_name(&mut out, &s.name);
            for v in [
                s.count,
                s.total_us,
                s.max_us,
                s.p50_us,
                s.p95_us,
                s.p99_us,
                s.p50_exemplar,
                s.p95_exemplar,
                s.p99_exemplar,
            ] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        put_counters(&mut out, &self.counters);
        put_counters(&mut out, &self.gauges);
        out
    }

    /// Inverse of [`TelemetrySnapshot::to_bytes`]; rejects truncation,
    /// trailing bytes, oversized tables, and malformed names.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, SnapshotDecodeError> {
        let mut cur = Cursor { buf, pos: 0 };
        let n_stages = cur.u16()? as usize;
        if n_stages > MAX_WIRE_ENTRIES {
            return Err(SnapshotDecodeError("too many entries"));
        }
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let name = cur.name()?;
            let mut vals = [0u64; 9];
            for v in &mut vals {
                *v = cur.u64()?;
            }
            stages.push(StageSnapshot {
                name,
                count: vals[0],
                total_us: vals[1],
                max_us: vals[2],
                p50_us: vals[3],
                p95_us: vals[4],
                p99_us: vals[5],
                p50_exemplar: vals[6],
                p95_exemplar: vals[7],
                p99_exemplar: vals[8],
            });
        }
        let counters = get_counters(&mut cur)?;
        let gauges = get_counters(&mut cur)?;
        cur.done()?;
        Ok(TelemetrySnapshot {
            stages,
            counters,
            gauges,
        })
    }
}

// ---------------------------------------------------------------------------
// Health snapshot (the Pong payload)
// ---------------------------------------------------------------------------

/// The compact health probe the server returns in `Pong`: live load
/// gauges plus the admission-control counters, fixed-width on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Jobs queued behind the worker pool.
    pub queue_depth: u32,
    /// Queries currently being evaluated.
    pub inflight: u32,
    /// Live worker threads.
    pub live_workers: u32,
    /// Live sessions in the registry.
    pub sessions: u32,
    /// Worker panics since start.
    pub worker_panics: u64,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Successfully answered queries.
    pub queries_ok: u64,
    /// Sessions evicted idle.
    pub sessions_evicted: u64,
    /// Sessions refused (table full).
    pub sessions_rejected: u64,
    /// Protocol violations counted by the validation gate.
    pub violations: u64,
    /// Requests shed by the per-connection rate limiter.
    pub rate_limited: u64,
    /// Connections dropped after exhausting their strike budget.
    pub strike_disconnects: u64,
    /// Slowloris connections reaped by the read deadline.
    pub slow_reaped: u64,
    /// Undecodable frames dropped at the transport.
    pub frame_garbage: u64,
    /// Latency-SLO burn rate over the fast window, in permille of the
    /// error budget (1000 = burning exactly the budget; 0 when no SLO
    /// is configured or the window is empty).
    pub slo_latency_fast_burn_pm: u32,
    /// Latency-SLO burn rate over the slow window, permille of budget.
    pub slo_latency_slow_burn_pm: u32,
    /// Error-rate-SLO burn rate over the fast window, permille of budget.
    pub slo_error_fast_burn_pm: u32,
    /// Error-rate-SLO burn rate over the slow window, permille of budget.
    pub slo_error_slow_burn_pm: u32,
}

/// Encoded size of a [`HealthSnapshot`].
pub const HEALTH_SNAPSHOT_BYTES: usize = 4 * 4 + 8 * 10 + 4 * 4;

impl HealthSnapshot {
    /// Fixed-width big-endian encoding (112 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEALTH_SNAPSHOT_BYTES);
        for v in [
            self.queue_depth,
            self.inflight,
            self.live_workers,
            self.sessions,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        for v in [
            self.worker_panics,
            self.uptime_ms,
            self.queries_ok,
            self.sessions_evicted,
            self.sessions_rejected,
            self.violations,
            self.rate_limited,
            self.strike_disconnects,
            self.slow_reaped,
            self.frame_garbage,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        for v in [
            self.slo_latency_fast_burn_pm,
            self.slo_latency_slow_burn_pm,
            self.slo_error_fast_burn_pm,
            self.slo_error_slow_burn_pm,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Inverse of [`HealthSnapshot::encode`].
    pub fn decode(buf: &[u8]) -> Result<Self, SnapshotDecodeError> {
        let mut cur = Cursor { buf, pos: 0 };
        let snap = HealthSnapshot {
            queue_depth: cur.u32()?,
            inflight: cur.u32()?,
            live_workers: cur.u32()?,
            sessions: cur.u32()?,
            worker_panics: cur.u64()?,
            uptime_ms: cur.u64()?,
            queries_ok: cur.u64()?,
            sessions_evicted: cur.u64()?,
            sessions_rejected: cur.u64()?,
            violations: cur.u64()?,
            rate_limited: cur.u64()?,
            strike_disconnects: cur.u64()?,
            slow_reaped: cur.u64()?,
            frame_garbage: cur.u64()?,
            slo_latency_fast_burn_pm: cur.u32()?,
            slo_latency_slow_burn_pm: cur.u32()?,
            slo_error_fast_burn_pm: cur.u32()?,
            slo_error_slow_burn_pm: cur.u32()?,
        };
        cur.done()?;
        Ok(snap)
    }

    /// The JSON value of this probe — the `/healthz` body. Integer-only
    /// by construction (the closed-enum redaction argument in DESIGN.md
    /// §18 relies on every export face being float-free).
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_u64("queue_depth", u64::from(self.queue_depth));
        obj.field_u64("inflight", u64::from(self.inflight));
        obj.field_u64("live_workers", u64::from(self.live_workers));
        obj.field_u64("sessions", u64::from(self.sessions));
        obj.field_u64("worker_panics", self.worker_panics);
        obj.field_u64("uptime_ms", self.uptime_ms);
        obj.field_u64("queries_ok", self.queries_ok);
        obj.field_u64("sessions_evicted", self.sessions_evicted);
        obj.field_u64("sessions_rejected", self.sessions_rejected);
        obj.field_u64("violations", self.violations);
        obj.field_u64("rate_limited", self.rate_limited);
        obj.field_u64("strike_disconnects", self.strike_disconnects);
        obj.field_u64("slow_reaped", self.slow_reaped);
        obj.field_u64("frame_garbage", self.frame_garbage);
        obj.field_u64(
            "slo_latency_fast_burn_pm",
            u64::from(self.slo_latency_fast_burn_pm),
        );
        obj.field_u64(
            "slo_latency_slow_burn_pm",
            u64::from(self.slo_latency_slow_burn_pm),
        );
        obj.field_u64(
            "slo_error_fast_burn_pm",
            u64::from(self.slo_error_fast_burn_pm),
        );
        obj.field_u64(
            "slo_error_slow_burn_pm",
            u64::from(self.slo_error_slow_burn_pm),
        );
        obj.finish()
    }
}

// ---------------------------------------------------------------------------
// Raw-sample aggregation (formerly ppgnn-server::metrics)
// ---------------------------------------------------------------------------

/// Aggregated latency/throughput figures over one run of raw samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Completed queries.
    pub count: usize,
    /// Queries per second over the wall-clock window.
    pub throughput_qps: f64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 95th percentile latency, microseconds.
    pub p95_us: u64,
    /// 99th percentile latency, microseconds.
    pub p99_us: u64,
    /// Mean latency, microseconds.
    pub mean_us: u64,
    /// Worst latency, microseconds.
    pub max_us: u64,
}

impl LatencySummary {
    /// The JSON value of this summary.
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_u64("count", self.count as u64);
        obj.field_f64("throughput_qps", self.throughput_qps);
        obj.field_u64("p50_us", self.p50_us);
        obj.field_u64("p95_us", self.p95_us);
        obj.field_u64("p99_us", self.p99_us);
        obj.field_u64("mean_us", self.mean_us);
        obj.field_u64("max_us", self.max_us);
        obj.finish()
    }
}

/// Nearest-rank percentile over a sorted sample set.
pub fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    debug_assert!((0.0..=100.0).contains(&p));
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Summarizes raw per-query latencies over a wall-clock window.
pub fn summarize(mut samples_us: Vec<u64>, elapsed: Duration) -> LatencySummary {
    samples_us.sort_unstable();
    let count = samples_us.len();
    let sum: u64 = samples_us.iter().sum();
    LatencySummary {
        count,
        throughput_qps: if elapsed.as_secs_f64() > 0.0 {
            count as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        },
        p50_us: percentile(&samples_us, 50.0),
        p95_us: percentile(&samples_us, 95.0),
        p99_us: percentile(&samples_us, 99.0),
        mean_us: if count > 0 { sum / count as u64 } else { 0 },
        max_us: samples_us.last().copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for us in 0..100_000u64 {
            let i = bucket_index(us);
            assert!(i < NUM_BUCKETS);
            assert!(i >= last, "bucket index regressed at {us}");
            last = i;
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_value_lands_in_own_bucket() {
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_value(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for us in [20u64, 100, 999, 5_000, 123_456, 9_999_999] {
            let mid = bucket_value(bucket_index(us));
            let err = (mid as f64 - us as f64).abs() / us as f64;
            assert!(err <= 0.125 + 1e-9, "us={us} mid={mid} err={err}");
        }
    }

    #[test]
    fn histogram_exact_in_linear_range() {
        let h = Histogram::new();
        for us in [1u64, 2, 2, 3, 15] {
            h.record_us(us);
        }
        let s = h.snapshot("test");
        assert_eq!(s.count, 5);
        assert_eq!(s.p50_us, 2);
        assert_eq!(s.max_us, 15);
        assert_eq!(s.total_us, 23);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn registry_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        reg.record_us(Stage::Validate, 100);
        reg.record_us(Stage::Validate, 200);
        reg.incr(Op::PaillierDot);
        reg.incr_by(Op::PaillierAdd, 5);
        reg.set_gauge(Gauge::Inflight, 3);
        let snap = reg.snapshot();
        assert_eq!(snap.stage_count("validate"), 2);
        assert_eq!(snap.stage_count("sanitation"), 0);
        assert_eq!(snap.counter("paillier-dot-ops"), Some(1));
        assert_eq!(snap.counter("paillier-add-ops"), Some(5));
        assert_eq!(snap.gauge("inflight"), Some(3));
        assert_eq!(snap.stages.len(), Stage::COUNT);
        reg.reset();
        assert_eq!(reg.snapshot().stage_count("validate"), 0);
        assert_eq!(reg.op_count(Op::PaillierAdd), 0);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn timer_records_on_drop_and_discard_does_not() {
        let reg = MetricsRegistry::new();
        {
            let _t = reg.time(Stage::CandidateEval);
        }
        reg.time(Stage::CandidateEval).discard();
        assert_eq!(reg.stage_count(Stage::CandidateEval), 1);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn registry_is_thread_safe() {
        let reg = MetricsRegistry::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = reg.clone();
                s.spawn(move || {
                    for i in 0..1_000 {
                        reg.record_us(Stage::PaillierDot, i);
                        reg.incr(Op::PaillierDot);
                    }
                });
            }
        });
        assert_eq!(reg.stage_count(Stage::PaillierDot), 4_000);
        assert_eq!(reg.op_count(Op::PaillierDot), 4_000);
    }

    #[test]
    fn stage_names_round_trip() {
        for s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        assert_eq!(Stage::from_name("nope"), None);
    }

    #[test]
    fn snapshot_binary_round_trip() {
        let reg = MetricsRegistry::new();
        reg.record_us(Stage::EndToEnd, 12_345);
        reg.incr_by(Op::PaillierScalarMul, 7);
        let mut snap = reg.snapshot();
        snap.push_counter("queries-ok", 42);
        snap.push_gauge("queue-depth", 9);
        let bytes = snap.to_bytes();
        let back = TelemetrySnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_json_has_stable_schema() {
        let mut snap = MetricsRegistry::new().snapshot();
        snap.push_counter("accepted", 17);
        let json = snap.to_json();
        assert!(json.starts_with(r#"{"stages":["#));
        for stage in Stage::ALL {
            assert!(json.contains(&format!(r#""name":"{}""#, stage.name())));
        }
        assert!(json.contains(r#"{"name":"accepted","value":17}"#));
        assert!(json.contains(r#""gauges":["#));
        assert!(json.contains(r#""p99_us":"#));
    }

    #[test]
    fn snapshot_decode_rejects_garbage() {
        let snap = MetricsRegistry::new().snapshot();
        let bytes = snap.to_bytes();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(TelemetrySnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TelemetrySnapshot::from_bytes(&padded).is_err());
        assert!(TelemetrySnapshot::from_bytes(&[0xff; 4]).is_err());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn fill_missing_overlays_only_empty_stages() {
        let local = MetricsRegistry::new();
        local.record_us(Stage::ClientPlan, 10);
        let remote = MetricsRegistry::new();
        remote.record_us(Stage::Validate, 20);
        remote.record_us(Stage::ClientPlan, 999);
        let mut merged = remote.snapshot();
        merged.fill_missing_stages_from(&local.snapshot());
        // Remote's validate kept, remote's client-plan NOT overwritten.
        assert_eq!(merged.stage_count("validate"), 1);
        assert_eq!(merged.stage("client-plan").unwrap().max_us, 999);
        assert_eq!(
            merged.missing_stages(&["validate", "sanitation"]),
            vec!["sanitation".to_string()]
        );
    }

    #[test]
    fn health_snapshot_round_trips() {
        let h = HealthSnapshot {
            queue_depth: 1,
            inflight: 2,
            live_workers: 3,
            sessions: 4,
            worker_panics: 5,
            uptime_ms: 6,
            queries_ok: 7,
            sessions_evicted: 8,
            sessions_rejected: 9,
            violations: 10,
            rate_limited: 11,
            strike_disconnects: 12,
            slow_reaped: 13,
            frame_garbage: 14,
            slo_latency_fast_burn_pm: 15,
            slo_latency_slow_burn_pm: 16,
            slo_error_fast_burn_pm: 17,
            slo_error_slow_burn_pm: 18,
        };
        let bytes = h.encode();
        assert_eq!(bytes.len(), HEALTH_SNAPSHOT_BYTES);
        assert_eq!(HealthSnapshot::decode(&bytes).unwrap(), h);
        assert!(HealthSnapshot::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(HealthSnapshot::decode(&padded).is_err());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 95.0), 95);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[42], 99.0), 42);
    }

    #[test]
    fn summary_over_window() {
        let s = summarize(vec![300, 100, 200, 400], Duration::from_secs(2));
        assert_eq!(s.count, 4);
        assert_eq!(s.p50_us, 200);
        assert_eq!(s.max_us, 400);
        assert_eq!(s.mean_us, 250);
        assert!((s.throughput_qps - 2.0).abs() < 1e-9);
    }

    #[cfg(feature = "noop")]
    #[test]
    fn noop_records_nothing() {
        let reg = MetricsRegistry::new();
        reg.record_us(Stage::Validate, 100);
        reg.incr(Op::PaillierDot);
        {
            let _t = reg.time(Stage::Validate);
        }
        assert_eq!(reg.stage_count(Stage::Validate), 0);
        assert_eq!(reg.op_count(Op::PaillierDot), 0);
        // Snapshots stay well-formed: every stage present, all zero.
        assert_eq!(reg.snapshot().stages.len(), Stage::COUNT);
    }
}
