//! # Per-query distributed tracing with privacy redaction.
//!
//! Aggregate histograms (the rest of this crate) answer "how slow is the
//! pipeline"; this module answers "why was *this* query slow". One query
//! yields one **trace**: a [`TraceContext`] minted client-side, carried
//! in the frame v5 query header, and resumed server-side, so the spans
//! recorded in both processes share a trace id and assemble into a
//! single cross-process tree.
//!
//! ## Redaction is structural
//!
//! Traces of a *privacy-preserving* system are themselves a leak vector:
//! a span named after a POI, or an attribute holding a coordinate, would
//! undo the protocol's guarantees for anyone who can read the trace
//! buffer. Redaction is therefore enforced at span-creation time by the
//! type system, not by a scrubbing pass: span names come from the closed
//! [`SpanName`] enum, attribute keys from the closed [`AttrKey`] enum,
//! and attribute values are bare `u64` sizes/counts/durations. There is
//! no API through which a coordinate, POI id, dummy index, or plaintext
//! distance can enter a trace. The debug-only `unredacted` cargo feature
//! adds a free-form `note` escape hatch for local reproduction; it is a
//! compile error to enable it in a release build.
//!
//! ## Tail-based sampling
//!
//! Every traced query records spans while in flight; whether the
//! finished segment is *kept* is decided at the end (tail-based):
//! error/shed segments and segments slower than the configured
//! threshold are always kept, the rest are kept with a probability
//! derived deterministically from the trace id — so the client half and
//! the server half of one query always agree on the probabilistic
//! decision. Kept segments go into a fixed-capacity ring buffer
//! (oldest evicted first) and slow ones can additionally be emitted as
//! one-line JSON on stderr (the slow-query log).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::json;
use crate::{Cursor, Op, SnapshotDecodeError};

#[cfg(all(feature = "unredacted", not(debug_assertions)))]
compile_error!(
    "the `unredacted` tracing feature is a debug-only escape hatch; \
     release builds must not carry unredacted span notes"
);

// ---------------------------------------------------------------------------
// TraceContext — the 16-byte wire header
// ---------------------------------------------------------------------------

/// Encoded size of a [`TraceContext`] in the frame v5 query header.
pub const TRACE_CONTEXT_BYTES: usize = 16;

/// The sampling bit, folded into the top bit of the trace id on the
/// wire (trace ids proper are 63-bit).
const SAMPLED_BIT: u64 = 1 << 63;

/// The per-query trace identity carried across the wire: a 63-bit trace
/// id, the client's root span id (so server spans attach under it), and
/// the sampling decision, folded into 16 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Trace id with the sampled flag in the top bit.
    id_and_flag: u64,
    /// Span id of the client-side root span; server segments parent here.
    parent_span: u64,
}

/// Typed decode failure for a [`TraceContext`] header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceWireError {
    /// Fewer than [`TRACE_CONTEXT_BYTES`] bytes.
    Truncated,
    /// The 63-bit trace id is zero (reserved as "no trace").
    ZeroTraceId,
    /// The parent span id is zero (the client always mints a root span).
    ZeroParentSpan,
}

impl TraceWireError {
    /// Stable short description (used for `Malformed` frame errors).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceWireError::Truncated => "trace context truncated",
            TraceWireError::ZeroTraceId => "zero trace id",
            TraceWireError::ZeroParentSpan => "zero parent span id",
        }
    }
}

impl std::fmt::Display for TraceWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::error::Error for TraceWireError {}

impl TraceContext {
    /// Builds a context from its parts. `trace_id` is masked to 63 bits
    /// and must be nonzero, as must `parent_span`.
    pub fn new(trace_id: u64, parent_span: u64, sampled: bool) -> TraceContext {
        let id = trace_id & !SAMPLED_BIT;
        debug_assert!(id != 0, "trace id must be nonzero");
        debug_assert!(parent_span != 0, "parent span must be nonzero");
        TraceContext {
            id_and_flag: id | if sampled { SAMPLED_BIT } else { 0 },
            parent_span,
        }
    }

    /// The 63-bit trace id (sampling flag stripped).
    pub fn trace_id(&self) -> u64 {
        self.id_and_flag & !SAMPLED_BIT
    }

    /// Whether the minting client decided to record spans for this query.
    pub fn sampled(&self) -> bool {
        self.id_and_flag & SAMPLED_BIT != 0
    }

    /// The client root span id server-side spans attach under.
    pub fn parent_span(&self) -> u64 {
        self.parent_span
    }

    /// Fixed 16-byte little-endian encoding.
    pub fn to_wire(&self) -> [u8; TRACE_CONTEXT_BYTES] {
        let mut out = [0u8; TRACE_CONTEXT_BYTES];
        out[..8].copy_from_slice(&self.id_and_flag.to_le_bytes());
        out[8..].copy_from_slice(&self.parent_span.to_le_bytes());
        out
    }

    /// Inverse of [`TraceContext::to_wire`]; typed errors, never panics.
    pub fn from_wire(buf: &[u8]) -> Result<TraceContext, TraceWireError> {
        if buf.len() < TRACE_CONTEXT_BYTES {
            return Err(TraceWireError::Truncated);
        }
        let id_and_flag = u64::from_le_bytes(buf[..8].try_into().unwrap());
        let parent_span = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if id_and_flag & !SAMPLED_BIT == 0 {
            return Err(TraceWireError::ZeroTraceId);
        }
        if parent_span == 0 {
            return Err(TraceWireError::ZeroParentSpan);
        }
        Ok(TraceContext {
            id_and_flag,
            parent_span,
        })
    }
}

// ---------------------------------------------------------------------------
// Redacted span vocabulary
// ---------------------------------------------------------------------------

/// The closed set of span names. Spans can only be named from this
/// list — that, plus [`AttrKey`], is the redaction guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanName {
    /// Client root: one whole query (plan → answer decode).
    ClientQuery = 1,
    /// Algorithm 1 client planning.
    ClientPlan = 2,
    /// Client request assembly (payload bytes).
    ClientEncode = 3,
    /// `to_wire` of a protocol message.
    WireEncode = 4,
    /// `from_wire` of a protocol message.
    WireDecode = 5,
    /// Server root: one query as seen by the LSP.
    ServerQuery = 6,
    /// Server validation gate.
    Validate = 7,
    /// LSP candidate evaluation loop.
    CandidateEval = 8,
    /// Damgård–Jurik encryption batch.
    PaillierEncrypt = 9,
    /// Damgård–Jurik decryption batch.
    PaillierDecrypt = 10,
    /// Homomorphic dot product batch.
    PaillierDot = 11,
    /// Private selection (`A ⨂ [v]` + OPT outer phase).
    PrivateSelection = 12,
    /// Answer sanitation (`safe_prefix_len`).
    Sanitation = 13,
    /// One prefix length's Z-test pass inside sanitation.
    SanitationPrefix = 14,
    /// Dynamic-index mutation (`PoiUpdate` batch apply + republish).
    IndexMutate = 15,
    /// Subscription safe-region scan after a mutation.
    InvalidateScan = 16,
    /// Re-plan notification fanout to invalidated subscribers.
    FanoutNotify = 17,
    /// One WAL record append (encode + write + policy fsync).
    WalAppend = 18,
    /// One durable checkpoint write plus WAL rotation.
    Checkpoint = 19,
    /// Startup recovery: checkpoint load plus WAL tail replay.
    RecoverReplay = 20,
}

impl SpanName {
    /// Every span name, in tag order.
    pub const ALL: [SpanName; 20] = [
        SpanName::ClientQuery,
        SpanName::ClientPlan,
        SpanName::ClientEncode,
        SpanName::WireEncode,
        SpanName::WireDecode,
        SpanName::ServerQuery,
        SpanName::Validate,
        SpanName::CandidateEval,
        SpanName::PaillierEncrypt,
        SpanName::PaillierDecrypt,
        SpanName::PaillierDot,
        SpanName::PrivateSelection,
        SpanName::Sanitation,
        SpanName::SanitationPrefix,
        SpanName::IndexMutate,
        SpanName::InvalidateScan,
        SpanName::FanoutNotify,
        SpanName::WalAppend,
        SpanName::Checkpoint,
        SpanName::RecoverReplay,
    ];

    /// The stable kebab-case name (JSON, Chrome trace, terminal tree).
    pub fn name(self) -> &'static str {
        match self {
            SpanName::ClientQuery => "client-query",
            SpanName::ClientPlan => "client-plan",
            SpanName::ClientEncode => "client-encode",
            SpanName::WireEncode => "wire-encode",
            SpanName::WireDecode => "wire-decode",
            SpanName::ServerQuery => "server-query",
            SpanName::Validate => "validate",
            SpanName::CandidateEval => "candidate-eval",
            SpanName::PaillierEncrypt => "paillier-encrypt",
            SpanName::PaillierDecrypt => "paillier-decrypt",
            SpanName::PaillierDot => "paillier-dot",
            SpanName::PrivateSelection => "private-selection",
            SpanName::Sanitation => "sanitation",
            SpanName::SanitationPrefix => "sanitation-prefix",
            SpanName::IndexMutate => "index-mutate",
            SpanName::InvalidateScan => "invalidate-scan",
            SpanName::FanoutNotify => "fanout-notify",
            SpanName::WalAppend => "wal-append",
            SpanName::Checkpoint => "checkpoint",
            SpanName::RecoverReplay => "recover-replay",
        }
    }

    /// Wire tag → span name.
    pub fn from_tag(tag: u8) -> Option<SpanName> {
        SpanName::ALL.into_iter().find(|s| *s as u8 == tag)
    }
}

/// The closed set of span attribute keys. Values are always bare
/// `u64` sizes, counts, or durations — never identifiers of user data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AttrKey {
    /// Candidate location-set count evaluated.
    Candidates = 1,
    /// Users (location sets) in the group query.
    Users = 2,
    /// Per-user location-set length δ′.
    SetLen = 3,
    /// Payload bytes encoded/decoded.
    Bytes = 4,
    /// Prefix length under test in sanitation.
    PrefixLen = 5,
    /// Targets (POIs) surviving a sanitation pass.
    Survivors = 6,
    /// Ciphertexts touched by a crypto batch.
    Ciphertexts = 7,
    /// Client retry attempts consumed.
    Retries = 8,
    /// Live subscriptions scanned after a mutation.
    Subscriptions = 9,
    /// Subscriptions whose safe region a mutation invalidated.
    Invalidated = 10,
    /// POI mutations in an update batch.
    PoiOps = 11,
    /// WAL records appended, replayed, or dropped.
    Records = 12,
}

impl AttrKey {
    /// Every attribute key, in tag order.
    pub const ALL: [AttrKey; 12] = [
        AttrKey::Candidates,
        AttrKey::Users,
        AttrKey::SetLen,
        AttrKey::Bytes,
        AttrKey::PrefixLen,
        AttrKey::Survivors,
        AttrKey::Ciphertexts,
        AttrKey::Retries,
        AttrKey::Subscriptions,
        AttrKey::Invalidated,
        AttrKey::PoiOps,
        AttrKey::Records,
    ];

    /// The stable kebab-case key.
    pub fn name(self) -> &'static str {
        match self {
            AttrKey::Candidates => "candidates",
            AttrKey::Users => "users",
            AttrKey::SetLen => "set-len",
            AttrKey::Bytes => "bytes",
            AttrKey::PrefixLen => "prefix-len",
            AttrKey::Survivors => "survivors",
            AttrKey::Ciphertexts => "ciphertexts",
            AttrKey::Retries => "retries",
            AttrKey::Subscriptions => "subscriptions",
            AttrKey::Invalidated => "invalidated",
            AttrKey::PoiOps => "poi-ops",
            AttrKey::Records => "records",
        }
    }

    /// Wire tag → attribute key.
    pub fn from_tag(tag: u8) -> Option<AttrKey> {
        AttrKey::ALL.into_iter().find(|k| *k as u8 == tag)
    }
}

/// Which process recorded a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SegmentOrigin {
    /// The group coordinator (`GroupClient`).
    Client = 0,
    /// The LSP server.
    Server = 1,
}

impl SegmentOrigin {
    /// The stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            SegmentOrigin::Client => "client",
            SegmentOrigin::Server => "server",
        }
    }
}

// ---------------------------------------------------------------------------
// Finished spans and segments
// ---------------------------------------------------------------------------

/// One finished span: a named, timed slice of the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique span id.
    pub span_id: u64,
    /// Parent span id within this segment; 0 marks the segment root.
    pub parent_id: u64,
    /// Redacted name.
    pub name: SpanName,
    /// Start, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Whether this span (or the whole query, for roots) errored.
    pub error: bool,
    /// Redacted attributes (sizes, counts — never user data).
    pub attrs: Vec<(AttrKey, u64)>,
    /// Free-form debug note; only exists under the debug-only
    /// `unredacted` feature and never crosses the wire.
    #[cfg(feature = "unredacted")]
    pub note: String,
}

/// One process's half of a trace: every span the process recorded for
/// one query, plus the per-query op counts and outcome flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSegment {
    /// 63-bit trace id shared with the other process's segment.
    pub trace_id: u64,
    /// Which side recorded this segment.
    pub origin: SegmentOrigin,
    /// For server segments: the client span id to attach under (the
    /// context's parent span). 0 for client segments.
    pub parent_span: u64,
    /// The query errored (typed failure, panic, or abandoned trace).
    pub error: bool,
    /// The query was shed (deadline exceeded, queue full, rate limited).
    pub shed: bool,
    /// The segment root exceeded the slow threshold.
    pub slow: bool,
    /// Finished spans, in completion order (root last).
    pub spans: Vec<SpanRecord>,
    /// Spans discarded once the per-segment cap was hit.
    pub spans_dropped: u32,
    /// Op counts attributed to this query, indexed like [`Op::ALL`].
    pub ops: [u64; Op::COUNT],
}

impl TraceSegment {
    /// The segment's root span (parent id 0), if any survived the cap.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().rev().find(|s| s.parent_id == 0)
    }

    /// Root duration in microseconds (0 when the root was dropped).
    pub fn dur_us(&self) -> u64 {
        self.root().map(|r| r.dur_us).unwrap_or(0)
    }
}

// ---------------------------------------------------------------------------
// Thread-local active trace
// ---------------------------------------------------------------------------

struct OpenSpan {
    span_id: u64,
    parent_id: u64,
    name: SpanName,
    start_us: u64,
    start: Instant,
    error: bool,
    attrs: Vec<(AttrKey, u64)>,
    #[cfg(feature = "unredacted")]
    note: String,
}

struct ActiveTrace {
    tracer: Tracer,
    trace_id: u64,
    origin: SegmentOrigin,
    parent_span: u64,
    open: Vec<OpenSpan>,
    spans: Vec<SpanRecord>,
    spans_dropped: u32,
    ops: [u64; Op::COUNT],
    error: bool,
    shed: bool,
}

impl ActiveTrace {
    fn close_top(&mut self) {
        let Some(top) = self.open.pop() else { return };
        let max = self.tracer.inner.max_spans.load(Ordering::Relaxed) as usize;
        if self.spans.len() >= max {
            self.spans_dropped += 1;
            return;
        }
        self.spans.push(SpanRecord {
            span_id: top.span_id,
            parent_id: top.parent_id,
            name: top.name,
            start_us: top.start_us,
            dur_us: top.start.elapsed().as_micros().min(u64::MAX as u128) as u64,
            error: top.error,
            attrs: top.attrs,
            #[cfg(feature = "unredacted")]
            note: top.note,
        });
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// Tracer knobs; applied with [`Tracer::configure`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TracerConfig {
    /// Master switch. Off (the default) makes minting return unsampled
    /// contexts and every span call a no-op.
    pub enabled: bool,
    /// Tail-sampling slow threshold: a segment whose root span is at
    /// least this many microseconds is always kept.
    pub slow_us: u64,
    /// Keep probability (per mille) for segments that are neither slow
    /// nor error/shed. Derived from the trace id, so both halves of a
    /// query agree.
    pub keep_permille: u32,
    /// Ring-buffer capacity in kept segments (oldest evicted first).
    pub capacity: usize,
    /// Emit one JSON line on stderr per kept slow segment.
    pub slow_log: bool,
    /// Per-segment span cap; further spans are counted, not stored.
    pub max_spans: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: false,
            slow_us: 100_000,
            keep_permille: 100,
            capacity: 256,
            slow_log: false,
            max_spans: 192,
        }
    }
}

/// Cumulative tail-sampling counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TracerCounters {
    /// Segments finished (kept + dropped).
    pub finished: u64,
    /// Segments kept in the ring.
    pub kept: u64,
    /// Kept segments that were over the slow threshold.
    pub kept_slow: u64,
    /// Kept segments with the error or shed flag.
    pub kept_error: u64,
    /// Segments dropped by the probabilistic tail decision.
    pub dropped: u64,
}

struct TracerInner {
    enabled: AtomicBool,
    slow_us: AtomicU64,
    keep_permille: AtomicU64,
    slow_log: AtomicBool,
    max_spans: AtomicU64,
    capacity: AtomicU64,
    ring: Mutex<std::collections::VecDeque<TraceSegment>>,
    finished: AtomicU64,
    kept: AtomicU64,
    kept_slow: AtomicU64,
    kept_error: AtomicU64,
    dropped: AtomicU64,
}

/// The lock-light trace collector: mints/resumes contexts, owns the
/// kept-segment ring buffer, and applies the tail-sampling policy.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// SplitMix64 finalizer — id mixing and the deterministic keep hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static ID_SEED: OnceLock<u64> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn id_seed() -> u64 {
    *ID_SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0x5eed);
        // Mix in an ASLR-dependent address so two processes started the
        // same nanosecond still diverge.
        nanos ^ (&NEXT_ID as *const _ as u64)
    })
}

/// Process-unique nonzero id (span ids; trace ids mask to 63 bits).
fn next_id() -> u64 {
    loop {
        let n = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(id_seed().wrapping_add(n));
        if id != 0 {
            return id;
        }
    }
}

/// Microseconds since the process trace epoch.
fn epoch_us() -> u64 {
    EPOCH
        .get_or_init(Instant::now)
        .elapsed()
        .as_micros()
        .min(u64::MAX as u128) as u64
}

impl Tracer {
    /// A fresh, disabled tracer with default knobs.
    pub fn new() -> Tracer {
        let d = TracerConfig::default();
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(d.enabled),
                slow_us: AtomicU64::new(d.slow_us),
                keep_permille: AtomicU64::new(d.keep_permille as u64),
                slow_log: AtomicBool::new(d.slow_log),
                max_spans: AtomicU64::new(d.max_spans as u64),
                capacity: AtomicU64::new(d.capacity as u64),
                ring: Mutex::new(std::collections::VecDeque::new()),
                finished: AtomicU64::new(0),
                kept: AtomicU64::new(0),
                kept_slow: AtomicU64::new(0),
                kept_error: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Applies `config`; safe to call while traffic is flowing.
    pub fn configure(&self, config: &TracerConfig) {
        let i = &self.inner;
        i.slow_us.store(config.slow_us, Ordering::Relaxed);
        i.keep_permille
            .store(config.keep_permille as u64, Ordering::Relaxed);
        i.slow_log.store(config.slow_log, Ordering::Relaxed);
        i.max_spans
            .store(config.max_spans as u64, Ordering::Relaxed);
        i.capacity
            .store(config.capacity.max(1) as u64, Ordering::Relaxed);
        i.enabled.store(config.enabled, Ordering::Relaxed);
        let mut ring = self.lock_ring();
        while ring.len() > config.capacity.max(1) {
            ring.pop_front();
        }
    }

    /// Whether span recording is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn lock_ring(&self) -> std::sync::MutexGuard<'_, std::collections::VecDeque<TraceSegment>> {
        self.inner.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mints a fresh context for one client query and, when tracing is
    /// on, the [`TraceHandle`] that will record its client segment. The
    /// context is always returned — frame v5 carries one per query —
    /// but it is unsampled when tracing is off.
    pub fn start(&self) -> (TraceContext, Option<TraceHandle>) {
        let trace_id = loop {
            let id = next_id() & !SAMPLED_BIT;
            if id != 0 {
                break id;
            }
        };
        let root_span = next_id();
        let sampled = self.enabled() && cfg!(not(feature = "noop"));
        let ctx = TraceContext::new(trace_id, root_span, sampled);
        if !sampled {
            return (ctx, None);
        }
        let handle = self.open_segment(
            trace_id,
            SegmentOrigin::Client,
            0,
            SpanName::ClientQuery,
            root_span,
        );
        (ctx, Some(handle))
    }

    /// Resumes a client-minted context server-side: returns the handle
    /// that records this query's server segment, or `None` when the
    /// context is unsampled or tracing is off here.
    pub fn resume(&self, ctx: &TraceContext) -> Option<TraceHandle> {
        if !ctx.sampled() || !self.enabled() || cfg!(feature = "noop") {
            return None;
        }
        Some(self.open_segment(
            ctx.trace_id(),
            SegmentOrigin::Server,
            ctx.parent_span(),
            SpanName::ServerQuery,
            next_id(),
        ))
    }

    fn open_segment(
        &self,
        trace_id: u64,
        origin: SegmentOrigin,
        parent_span: u64,
        root_name: SpanName,
        root_span: u64,
    ) -> TraceHandle {
        let root = OpenSpan {
            span_id: root_span,
            parent_id: 0,
            name: root_name,
            start_us: epoch_us(),
            start: Instant::now(),
            error: false,
            attrs: Vec::new(),
            #[cfg(feature = "unredacted")]
            note: String::new(),
        };
        let at = ActiveTrace {
            tracer: self.clone(),
            trace_id,
            origin,
            parent_span,
            open: vec![root],
            spans: Vec::new(),
            spans_dropped: 0,
            ops: [0; Op::COUNT],
            error: false,
            shed: false,
        };
        TraceHandle {
            slot: Arc::new(Mutex::new(Some(at))),
        }
    }

    /// Tail decision + commit of one finished segment.
    fn commit(&self, mut at: ActiveTrace, implicit_error: bool) {
        // Close any span left open (the root at minimum).
        while !at.open.is_empty() {
            at.close_top();
        }
        let error = at.error || implicit_error;
        let slow_us = self.inner.slow_us.load(Ordering::Relaxed);
        let mut seg = TraceSegment {
            trace_id: at.trace_id,
            origin: at.origin,
            parent_span: at.parent_span,
            error,
            shed: at.shed,
            slow: false,
            spans: at.spans,
            spans_dropped: at.spans_dropped,
            ops: at.ops,
        };
        seg.slow = seg.dur_us() >= slow_us;
        self.inner.finished.fetch_add(1, Ordering::Relaxed);
        let keep_permille = self.inner.keep_permille.load(Ordering::Relaxed);
        let hash_keep = splitmix64(seg.trace_id) % 1000 < keep_permille;
        if !(seg.error || seg.shed || seg.slow || hash_keep) {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.inner.kept.fetch_add(1, Ordering::Relaxed);
        if seg.slow {
            self.inner.kept_slow.fetch_add(1, Ordering::Relaxed);
        }
        if seg.error || seg.shed {
            self.inner.kept_error.fetch_add(1, Ordering::Relaxed);
        }
        if seg.slow && self.inner.slow_log.load(Ordering::Relaxed) {
            eprintln!("{}", slow_log_line(&seg));
        }
        let capacity = self.inner.capacity.load(Ordering::Relaxed) as usize;
        let mut ring = self.lock_ring();
        while ring.len() >= capacity.max(1) {
            ring.pop_front();
        }
        ring.push_back(seg);
    }

    /// Copies every kept segment out of the ring (oldest first).
    pub fn segments(&self) -> Vec<TraceSegment> {
        self.lock_ring().iter().cloned().collect()
    }

    /// Removes and returns every kept segment (the `TraceFetch`
    /// semantics: fetch-and-clear, so repeated polls see only new ones).
    pub fn drain(&self) -> Vec<TraceSegment> {
        self.lock_ring().drain(..).collect()
    }

    /// Cumulative tail-sampling counters.
    pub fn counters(&self) -> TracerCounters {
        let i = &self.inner;
        TracerCounters {
            finished: i.finished.load(Ordering::Relaxed),
            kept: i.kept.load(Ordering::Relaxed),
            kept_slow: i.kept_slow.load(Ordering::Relaxed),
            kept_error: i.kept_error.load(Ordering::Relaxed),
            dropped: i.dropped.load(Ordering::Relaxed),
        }
    }
}

static GLOBAL_TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-wide tracer, mirror of [`crate::global`] for metrics.
pub fn global() -> &'static Tracer {
    GLOBAL_TRACER.get_or_init(Tracer::new)
}

// ---------------------------------------------------------------------------
// TraceHandle / ActiveScope / SpanScope
// ---------------------------------------------------------------------------

/// Owner of one in-flight segment. `Send`, so the server can carry it
/// from the connection thread into the worker pool. Dropping it without
/// [`TraceHandle::finish`] commits the segment with the error flag set —
/// abandoned queries are exactly the traces tail sampling must keep.
pub struct TraceHandle {
    slot: Arc<Mutex<Option<ActiveTrace>>>,
}

impl TraceHandle {
    /// Installs the segment as this thread's active trace; recording
    /// APIs ([`span`], [`mark_error`], op attribution) apply to it until
    /// the returned scope drops, which parks the segment back in the
    /// handle so it can move to another thread or finish.
    pub fn activate(&self) -> ActiveScope {
        let taken = self.slot.lock().unwrap_or_else(|e| e.into_inner()).take();
        let Some(at) = taken else {
            return ActiveScope { slot: None };
        };
        let installed = ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if a.is_some() {
                return false;
            }
            *a = Some(at);
            true
        });
        if !installed {
            // Another trace is already active on this thread (should not
            // happen in practice); leave ours parked.
            return ActiveScope { slot: None };
        }
        ActiveScope {
            slot: Some(self.slot.clone()),
        }
    }

    /// Commits the segment through tail sampling as a normal completion
    /// (error/shed flags previously set via [`mark_error`]/[`mark_shed`]
    /// still apply).
    pub fn finish(self) {
        if let Some(at) = self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            at.tracer.clone().commit(at, false);
        }
        // Drop now finds the slot empty and does nothing.
    }
}

impl Drop for TraceHandle {
    fn drop(&mut self) {
        if let Some(at) = self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            at.tracer.clone().commit(at, true);
        }
    }
}

/// Guard returned by [`TraceHandle::activate`]; on drop the segment is
/// parked back into its handle.
#[must_use = "dropping the scope immediately deactivates the trace"]
pub struct ActiveScope {
    slot: Option<Arc<Mutex<Option<ActiveTrace>>>>,
}

impl Drop for ActiveScope {
    fn drop(&mut self) {
        let Some(slot) = self.slot.take() else { return };
        let at = ACTIVE.with(|a| a.borrow_mut().take());
        *slot.lock().unwrap_or_else(|e| e.into_inner()) = at;
    }
}

/// Opens a child span under the thread's active trace. Inert (a single
/// thread-local check) when no trace is active, so instrumented code
/// calls this unconditionally.
pub fn span(name: SpanName) -> SpanScope {
    #[cfg(feature = "noop")]
    {
        let _ = name;
        SpanScope { armed: false }
    }
    #[cfg(not(feature = "noop"))]
    {
        let armed = ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            let Some(at) = a.as_mut() else { return false };
            let parent_id = at.open.last().map(|o| o.span_id).unwrap_or(0);
            at.open.push(OpenSpan {
                span_id: next_id(),
                parent_id,
                name,
                start_us: epoch_us(),
                start: Instant::now(),
                error: false,
                attrs: Vec::new(),
                #[cfg(feature = "unredacted")]
                note: String::new(),
            });
            true
        });
        SpanScope { armed }
    }
}

/// Guard for one open span; records the span on drop.
#[must_use = "dropping the span scope immediately closes the span"]
pub struct SpanScope {
    armed: bool,
}

impl SpanScope {
    /// Attaches a redacted attribute (closed key set, `u64` value) to
    /// the open span.
    pub fn attr(&self, key: AttrKey, value: u64) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(at) = a.borrow_mut().as_mut() {
                if let Some(top) = at.open.last_mut() {
                    top.attrs.push((key, value));
                }
            }
        });
    }

    /// Flags the open span as errored.
    pub fn set_error(&self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(at) = a.borrow_mut().as_mut() {
                if let Some(top) = at.open.last_mut() {
                    top.error = true;
                }
            }
        });
    }

    /// Attaches a free-form debug note. Debug builds only; notes never
    /// cross the wire and the feature is a compile error in release.
    #[cfg(feature = "unredacted")]
    pub fn note(&self, text: &str) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(at) = a.borrow_mut().as_mut() {
                if let Some(top) = at.open.last_mut() {
                    top.note.push_str(text);
                }
            }
        });
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        ACTIVE.with(|a| {
            if let Some(at) = a.borrow_mut().as_mut() {
                at.close_top();
            }
        });
    }
}

/// Attaches a redacted attribute to the innermost open span of the
/// thread's active trace — the segment root when no child span is open.
/// Inert without an active trace, like [`span`].
pub fn attr(key: AttrKey, value: u64) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            if let Some(top) = at.open.last_mut() {
                top.attrs.push((key, value));
            }
        }
    });
}

/// Flags the thread's active trace as errored.
pub fn mark_error() {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            at.error = true;
        }
    });
}

/// Flags the thread's active trace as shed (deadline, queue, quota).
pub fn mark_shed() {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            at.shed = true;
        }
    });
}

/// Attributes `n` occurrences of `op` to the thread's active trace (the
/// per-query op counts exported on the segment). Called from
/// [`crate::MetricsRegistry::incr_by`], so instrumented crates get
/// per-trace op attribution for free.
#[inline]
#[cfg_attr(feature = "noop", allow(dead_code))] // caller compiled out
pub(crate) fn record_op(op: Op, n: u64) {
    ACTIVE.with(|a| {
        if let Some(at) = a.borrow_mut().as_mut() {
            at.ops[op as usize] += n;
        }
    });
}

/// The 63-bit id of the thread's active sampled trace, or 0. Histogram
/// exemplars use this to link percentile buckets to traces.
#[inline]
#[cfg_attr(feature = "noop", allow(dead_code))] // caller compiled out
pub(crate) fn current_trace_id() -> u64 {
    ACTIVE.with(|a| a.borrow().as_ref().map(|at| at.trace_id).unwrap_or(0))
}

// ---------------------------------------------------------------------------
// Wire encoding (the TraceReply payload)
// ---------------------------------------------------------------------------

/// Hard caps for hostile `TraceReply` payloads.
const MAX_WIRE_SEGMENTS: usize = 1024;
const MAX_WIRE_SPANS: usize = 1024;
const MAX_WIRE_ATTRS: usize = 32;

const FLAG_ERROR: u8 = 1;
const FLAG_SHED: u8 = 2;
const FLAG_SLOW: u8 = 4;

fn encode_segment(out: &mut Vec<u8>, seg: &TraceSegment) {
    out.extend_from_slice(&seg.trace_id.to_be_bytes());
    out.extend_from_slice(&seg.parent_span.to_be_bytes());
    out.push(seg.origin as u8);
    let mut flags = 0u8;
    if seg.error {
        flags |= FLAG_ERROR;
    }
    if seg.shed {
        flags |= FLAG_SHED;
    }
    if seg.slow {
        flags |= FLAG_SLOW;
    }
    out.push(flags);
    out.extend_from_slice(&seg.spans_dropped.to_be_bytes());
    for v in seg.ops {
        out.extend_from_slice(&v.to_be_bytes());
    }
    let n_spans = seg.spans.len().min(MAX_WIRE_SPANS);
    out.extend_from_slice(&(n_spans as u16).to_be_bytes());
    for s in seg.spans.iter().take(n_spans) {
        out.extend_from_slice(&s.span_id.to_be_bytes());
        out.extend_from_slice(&s.parent_id.to_be_bytes());
        out.push(s.name as u8);
        out.push(s.error as u8);
        out.extend_from_slice(&s.start_us.to_be_bytes());
        out.extend_from_slice(&s.dur_us.to_be_bytes());
        let n_attrs = s.attrs.len().min(MAX_WIRE_ATTRS);
        out.push(n_attrs as u8);
        for &(k, v) in s.attrs.iter().take(n_attrs) {
            out.push(k as u8);
            out.extend_from_slice(&v.to_be_bytes());
        }
    }
}

/// Encodes segments for the wire, keeping the payload under
/// `max_bytes`: segments that would overflow are dropped from the tail
/// (newest kept first is the ring's job; here oldest-first order is
/// preserved, later segments dropped). Returns the encoded payload.
pub fn encode_segments(segments: &[TraceSegment], max_bytes: usize) -> Vec<u8> {
    let mut bodies: Vec<Vec<u8>> = Vec::new();
    let mut total = 2usize;
    for seg in segments.iter().take(MAX_WIRE_SEGMENTS) {
        let mut body = Vec::new();
        encode_segment(&mut body, seg);
        if total + body.len() > max_bytes {
            break;
        }
        total += body.len();
        bodies.push(body);
    }
    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&(bodies.len() as u16).to_be_bytes());
    for b in bodies {
        out.extend_from_slice(&b);
    }
    out
}

/// Inverse of [`encode_segments`]; typed errors on truncation, bad
/// tags, oversized tables, or trailing bytes — never panics.
pub fn decode_segments(buf: &[u8]) -> Result<Vec<TraceSegment>, SnapshotDecodeError> {
    let mut cur = Cursor { buf, pos: 0 };
    let n_segs = cur.u16()? as usize;
    if n_segs > MAX_WIRE_SEGMENTS {
        return Err(SnapshotDecodeError("too many segments"));
    }
    let mut segments = Vec::with_capacity(n_segs.min(64));
    for _ in 0..n_segs {
        let trace_id = cur.u64()?;
        if trace_id == 0 || trace_id & SAMPLED_BIT != 0 {
            return Err(SnapshotDecodeError("bad segment trace id"));
        }
        let parent_span = cur.u64()?;
        let origin = match cur.u8()? {
            0 => SegmentOrigin::Client,
            1 => SegmentOrigin::Server,
            _ => return Err(SnapshotDecodeError("bad segment origin")),
        };
        let flags = cur.u8()?;
        if flags & !(FLAG_ERROR | FLAG_SHED | FLAG_SLOW) != 0 {
            return Err(SnapshotDecodeError("bad segment flags"));
        }
        let spans_dropped = cur.u32()?;
        let mut ops = [0u64; Op::COUNT];
        for v in &mut ops {
            *v = cur.u64()?;
        }
        let n_spans = cur.u16()? as usize;
        if n_spans > MAX_WIRE_SPANS {
            return Err(SnapshotDecodeError("too many spans"));
        }
        let mut spans = Vec::with_capacity(n_spans.min(64));
        for _ in 0..n_spans {
            let span_id = cur.u64()?;
            let parent_id = cur.u64()?;
            let name =
                SpanName::from_tag(cur.u8()?).ok_or(SnapshotDecodeError("bad span name tag"))?;
            let error = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotDecodeError("bad span error flag")),
            };
            let start_us = cur.u64()?;
            let dur_us = cur.u64()?;
            let n_attrs = cur.u8()? as usize;
            if n_attrs > MAX_WIRE_ATTRS {
                return Err(SnapshotDecodeError("too many attrs"));
            }
            let mut attrs = Vec::with_capacity(n_attrs);
            for _ in 0..n_attrs {
                let key =
                    AttrKey::from_tag(cur.u8()?).ok_or(SnapshotDecodeError("bad attr key tag"))?;
                attrs.push((key, cur.u64()?));
            }
            spans.push(SpanRecord {
                span_id,
                parent_id,
                name,
                start_us,
                dur_us,
                error,
                attrs,
                #[cfg(feature = "unredacted")]
                note: String::new(),
            });
        }
        segments.push(TraceSegment {
            trace_id,
            origin,
            parent_span,
            error: flags & FLAG_ERROR != 0,
            shed: flags & FLAG_SHED != 0,
            slow: flags & FLAG_SLOW != 0,
            spans,
            spans_dropped,
            ops,
        });
    }
    cur.done()?;
    Ok(segments)
}

// ---------------------------------------------------------------------------
// Export faces: slow-query log and Chrome trace_event JSON
// ---------------------------------------------------------------------------

/// Zero-padded hex rendering of a trace/span id.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

/// One-line JSON for the slow-query log (stderr, one object per kept
/// slow segment).
pub fn slow_log_line(seg: &TraceSegment) -> String {
    let mut obj = json::Obj::new();
    obj.field_str("kind", "slow-trace");
    obj.field_str("trace", &hex_id(seg.trace_id));
    obj.field_str("origin", seg.origin.name());
    obj.field_u64("dur_us", seg.dur_us());
    obj.field_u64("spans", seg.spans.len() as u64);
    obj.field_bool("error", seg.error);
    obj.field_bool("shed", seg.shed);
    let mut ops = json::Obj::new();
    for op in Op::ALL {
        let v = seg.ops[op as usize];
        if v > 0 {
            ops.field_u64(op.name(), v);
        }
    }
    obj.field_raw("ops", &ops.finish());
    obj.finish()
}

/// Renders segments as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` or Perfetto. Each trace id becomes one "process"
/// with a client lane and a server lane; spans are complete (`"X"`)
/// events with integer microsecond timestamps. Only redacted span
/// names, attribute keys, counts, and durations appear.
pub fn chrome_trace_json(segments: &[TraceSegment]) -> String {
    let mut pids: Vec<u64> = Vec::new();
    let mut events: Vec<String> = Vec::new();
    for seg in segments {
        let pid = match pids.iter().position(|&t| t == seg.trace_id) {
            Some(i) => i + 1,
            None => {
                pids.push(seg.trace_id);
                let pid = pids.len();
                let mut meta = json::Obj::new();
                meta.field_str("name", "process_name");
                meta.field_str("ph", "M");
                meta.field_u64("pid", pid as u64);
                meta.field_raw(
                    "args",
                    &format!(r#"{{"name":"trace {}"}}"#, hex_id(seg.trace_id)),
                );
                events.push(meta.finish());
                for (tid, lane) in [(1u64, "client"), (2u64, "server")] {
                    let mut t = json::Obj::new();
                    t.field_str("name", "thread_name");
                    t.field_str("ph", "M");
                    t.field_u64("pid", pid as u64);
                    t.field_u64("tid", tid);
                    t.field_raw("args", &format!(r#"{{"name":"{lane}"}}"#));
                    events.push(t.finish());
                }
                pid
            }
        };
        let tid = match seg.origin {
            SegmentOrigin::Client => 1u64,
            SegmentOrigin::Server => 2u64,
        };
        for s in &seg.spans {
            let mut ev = json::Obj::new();
            ev.field_str("name", s.name.name());
            ev.field_str("cat", "ppgnn");
            ev.field_str("ph", "X");
            ev.field_u64("pid", pid as u64);
            ev.field_u64("tid", tid);
            ev.field_u64("ts", s.start_us);
            ev.field_u64("dur", s.dur_us);
            let mut args = json::Obj::new();
            args.field_str("trace", &hex_id(seg.trace_id));
            for &(k, v) in &s.attrs {
                args.field_u64(k.name(), v);
            }
            if s.error {
                args.field_bool("error", true);
            }
            if s.parent_id == 0 {
                // Root span: per-query op counts and outcome flags.
                for op in Op::ALL {
                    let v = seg.ops[op as usize];
                    if v > 0 {
                        args.field_u64(op.name(), v);
                    }
                }
                if seg.slow {
                    args.field_bool("slow", true);
                }
                if seg.shed {
                    args.field_bool("shed", true);
                }
                if seg.spans_dropped > 0 {
                    args.field_u64("spans-dropped", seg.spans_dropped as u64);
                }
            }
            ev.field_raw("args", &args.finish());
            events.push(ev.finish());
        }
    }
    let mut top = json::Obj::new();
    top.field_str("displayTimeUnit", "ms");
    top.field_raw("traceEvents", &json::arr(events.into_iter()));
    top.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_tracer(keep_permille: u32, slow_us: u64) -> Tracer {
        let t = Tracer::new();
        t.configure(&TracerConfig {
            enabled: true,
            slow_us,
            keep_permille,
            capacity: 8,
            slow_log: false,
            max_spans: 16,
        });
        t
    }

    #[test]
    fn context_wire_round_trip() {
        let ctx = TraceContext::new(0xdead_beef_cafe, 0x1234, true);
        let back = TraceContext::from_wire(&ctx.to_wire()).unwrap();
        assert_eq!(back, ctx);
        assert!(back.sampled());
        assert_eq!(back.trace_id(), 0xdead_beef_cafe);
        assert_eq!(back.parent_span(), 0x1234);
        let un = TraceContext::new(7, 9, false);
        assert!(!TraceContext::from_wire(&un.to_wire()).unwrap().sampled());
    }

    #[test]
    fn context_wire_rejects_garbage() {
        assert_eq!(
            TraceContext::from_wire(&[0u8; 15]),
            Err(TraceWireError::Truncated)
        );
        assert_eq!(
            TraceContext::from_wire(&[0u8; 16]),
            Err(TraceWireError::ZeroTraceId)
        );
        // Sampled bit set but 63-bit id zero is still a zero trace id.
        let mut only_flag = [0u8; 16];
        only_flag[7] = 0x80;
        only_flag[8] = 1;
        assert_eq!(
            TraceContext::from_wire(&only_flag),
            Err(TraceWireError::ZeroTraceId)
        );
        let mut no_parent = [0u8; 16];
        no_parent[0] = 1;
        assert_eq!(
            TraceContext::from_wire(&no_parent),
            Err(TraceWireError::ZeroParentSpan)
        );
    }

    #[test]
    fn tag_round_trips() {
        for s in SpanName::ALL {
            assert_eq!(SpanName::from_tag(s as u8), Some(s));
        }
        assert_eq!(SpanName::from_tag(0), None);
        assert_eq!(SpanName::from_tag(0xff), None);
        for k in AttrKey::ALL {
            assert_eq!(AttrKey::from_tag(k as u8), Some(k));
        }
        assert_eq!(AttrKey::from_tag(0), None);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn spans_nest_and_commit() {
        let t = enabled_tracer(1000, u64::MAX);
        let (ctx, handle) = t.start();
        assert!(ctx.sampled());
        let handle = handle.unwrap();
        {
            let _active = handle.activate();
            let outer = span(SpanName::CandidateEval);
            outer.attr(AttrKey::Candidates, 42);
            {
                let _inner = span(SpanName::PaillierDot);
            }
            drop(outer);
        }
        handle.finish();
        let segs = t.segments();
        assert_eq!(segs.len(), 1);
        let seg = &segs[0];
        assert_eq!(seg.trace_id, ctx.trace_id());
        assert_eq!(seg.origin, SegmentOrigin::Client);
        assert!(!seg.error);
        // Completion order: inner, outer, root.
        let names: Vec<_> = seg.spans.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                SpanName::PaillierDot,
                SpanName::CandidateEval,
                SpanName::ClientQuery
            ]
        );
        let root = seg.root().unwrap();
        assert_eq!(root.name, SpanName::ClientQuery);
        assert_eq!(root.parent_id, 0);
        let outer = &seg.spans[1];
        assert_eq!(outer.parent_id, root.span_id);
        assert_eq!(outer.attrs, vec![(AttrKey::Candidates, 42)]);
        assert_eq!(seg.spans[0].parent_id, outer.span_id);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn resume_links_server_segment_to_client_root() {
        let t = enabled_tracer(1000, u64::MAX);
        let (ctx, client) = t.start();
        let server = t.resume(&ctx).unwrap();
        {
            let _active = server.activate();
            let _v = span(SpanName::Validate);
        }
        server.finish();
        client.unwrap().finish();
        let segs = t.segments();
        assert_eq!(segs.len(), 2);
        let srv = segs
            .iter()
            .find(|s| s.origin == SegmentOrigin::Server)
            .unwrap();
        let cli = segs
            .iter()
            .find(|s| s.origin == SegmentOrigin::Client)
            .unwrap();
        assert_eq!(srv.trace_id, cli.trace_id);
        assert_eq!(srv.parent_span, cli.root().unwrap().span_id);
        assert_eq!(srv.root().unwrap().name, SpanName::ServerQuery);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn abandoned_handle_is_kept_as_error() {
        let t = enabled_tracer(0, u64::MAX); // keep nothing probabilistically
        let (_ctx, handle) = t.start();
        drop(handle.unwrap()); // early-return path: no explicit finish
        let segs = t.segments();
        assert_eq!(segs.len(), 1);
        assert!(segs[0].error);
        assert_eq!(t.counters().kept_error, 1);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn tail_sampling_keeps_slow_and_drops_fast() {
        let t = enabled_tracer(0, 0); // slow threshold 0: everything slow
        let (_, h) = t.start();
        h.unwrap().finish();
        assert_eq!(t.counters().kept_slow, 1);

        let t2 = enabled_tracer(0, u64::MAX); // nothing slow, keep 0‰
        let (_, h2) = t2.start();
        h2.unwrap().finish();
        assert_eq!(t2.counters().kept, 0);
        assert_eq!(t2.counters().dropped, 1);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn probabilistic_keep_is_deterministic_per_trace() {
        let t = enabled_tracer(500, u64::MAX);
        for _ in 0..64 {
            let (ctx, h) = t.start();
            let srv = t.resume(&ctx).unwrap();
            srv.finish();
            h.unwrap().finish();
        }
        // Both halves of each query agree: segments come in trace pairs.
        let mut by_trace = std::collections::HashMap::new();
        for seg in t.segments() {
            *by_trace.entry(seg.trace_id).or_insert(0u32) += 1;
        }
        for (_, n) in by_trace {
            assert_eq!(n, 2, "client and server halves must agree on keep");
        }
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new();
        t.configure(&TracerConfig {
            enabled: true,
            slow_us: 0,
            keep_permille: 1000,
            capacity: 4,
            slow_log: false,
            max_spans: 16,
        });
        for _ in 0..10 {
            let (_, h) = t.start();
            h.unwrap().finish();
        }
        assert_eq!(t.segments().len(), 4);
        assert_eq!(t.counters().kept, 10);
        assert_eq!(t.drain().len(), 4);
        assert!(t.segments().is_empty());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn span_cap_counts_dropped() {
        let t = Tracer::new();
        t.configure(&TracerConfig {
            enabled: true,
            slow_us: 0,
            keep_permille: 1000,
            capacity: 4,
            slow_log: false,
            max_spans: 2,
        });
        let (_, h) = t.start();
        let h = h.unwrap();
        {
            let _active = h.activate();
            for _ in 0..5 {
                let _s = span(SpanName::SanitationPrefix);
            }
        }
        h.finish();
        let seg = &t.segments()[0];
        assert_eq!(seg.spans.len(), 2);
        assert_eq!(seg.spans_dropped, 4); // 3 prefix spans + the root
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn ops_attribute_to_active_trace() {
        let t = enabled_tracer(1000, u64::MAX);
        let (_, h) = t.start();
        let h = h.unwrap();
        {
            let _active = h.activate();
            record_op(Op::PaillierDot, 3);
            record_op(Op::SanitationZTest, 2);
        }
        record_op(Op::PaillierDot, 99); // outside the scope: not attributed
        h.finish();
        let seg = &t.segments()[0];
        assert_eq!(seg.ops[Op::PaillierDot as usize], 3);
        assert_eq!(seg.ops[Op::SanitationZTest as usize], 2);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn unsampled_and_disabled_record_nothing() {
        let t = Tracer::new(); // disabled
        let (ctx, h) = t.start();
        assert!(!ctx.sampled());
        assert!(h.is_none());
        let on = enabled_tracer(1000, 0);
        assert!(on.resume(&ctx).is_none());
        let _inert = span(SpanName::Validate); // no active trace: inert
        assert!(on.segments().is_empty());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn segments_wire_round_trip() {
        let t = enabled_tracer(1000, 0);
        let (ctx, client) = t.start();
        let server = t.resume(&ctx).unwrap();
        {
            let _active = server.activate();
            let s = span(SpanName::Sanitation);
            s.attr(AttrKey::PrefixLen, 3);
            s.attr(AttrKey::Survivors, 2);
            s.set_error();
            drop(s);
            record_op(Op::SanitationZTest, 5);
            mark_shed();
        }
        server.finish();
        client.unwrap().finish();
        let segs = t.segments();
        let bytes = encode_segments(&segs, usize::MAX);
        let back = decode_segments(&bytes).unwrap();
        assert_eq!(back, segs);
        // Truncations and garbage are typed errors.
        for cut in [0, 1, 3, bytes.len() - 1] {
            assert!(decode_segments(&bytes[..cut]).is_err());
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_segments(&padded).is_err());
        let mut bad_tag = bytes.clone();
        // Flip the first span-name tag to an invalid value: find it by
        // re-encoding a single empty-segment prefix is fragile, so just
        // check fully garbage input too.
        bad_tag[0] = 0xff;
        assert!(decode_segments(&bad_tag).is_err());
        assert!(decode_segments(&[0xff; 16]).is_err());
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn segment_byte_budget_is_respected() {
        let t = enabled_tracer(1000, 0);
        for _ in 0..6 {
            let (_, h) = t.start();
            h.unwrap().finish();
        }
        let segs = t.segments();
        let full = encode_segments(&segs, usize::MAX);
        let bounded = encode_segments(&segs, full.len() - 1);
        assert!(bounded.len() < full.len());
        let back = decode_segments(&bounded).unwrap();
        assert!(back.len() < segs.len());
        assert_eq!(back.as_slice(), &segs[..back.len()]);
    }

    #[cfg(not(feature = "noop"))]
    #[test]
    fn chrome_export_and_slow_log_are_redacted() {
        let t = enabled_tracer(1000, 0);
        let (ctx, client) = t.start();
        let server = t.resume(&ctx).unwrap();
        {
            let _active = server.activate();
            let s = span(SpanName::CandidateEval);
            s.attr(AttrKey::Candidates, 12);
            drop(s);
            record_op(Op::PaillierDot, 12);
        }
        server.finish();
        client.unwrap().finish();
        let segs = t.segments();
        let json = chrome_trace_json(&segs);
        assert!(json.contains(r#""traceEvents":["#));
        assert!(json.contains(r#""name":"candidate-eval""#));
        assert!(json.contains(r#""name":"server-query""#));
        assert!(json.contains(r#""candidates":12"#));
        assert!(json.contains(r#""slow":true"#));
        // Integer timestamps only: a decimal point would mean a float
        // (coordinates/distances are floats — none may appear).
        assert!(!json.chars().any(|c| c == '.'));
        let slow = slow_log_line(&segs[0]);
        assert!(slow.contains(r#""kind":"slow-trace""#));
        assert!(slow.contains(r#""paillier-dot-ops":12"#));
    }

    #[test]
    fn span_names_and_attr_keys_are_benign() {
        // The redaction allowlist: names are kebab-case stage/op words,
        // no digits, no user-data-shaped tokens.
        for n in SpanName::ALL.iter().map(|s| s.name()) {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
        for k in AttrKey::ALL.iter().map(|k| k.name()) {
            assert!(k.chars().all(|c| c.is_ascii_lowercase() || c == '-'));
        }
    }
}
