//! Rolling-window telemetry: the time dimension of the metrics registry.
//!
//! The cumulative histograms in [`MetricsRegistry`] answer "what has this
//! process done since boot"; operators and the adaptive planner need
//! "what is it doing *now*". This module adds that lens without touching
//! the wait-free record path: a [`WindowRing`] holds per-interval
//! **deltas** of every stage histogram and counter, captured by an
//! externally driven [`WindowRing::tick`] (the server runs one
//! deadline-anchored ticker thread at 1 Hz). Aggregating the last *n*
//! intervals yields windowed [`StageSnapshot`]s, per-second rates, and
//! the [`WindowedSnapshot`] wire/JSON face.
//!
//! Because buckets are fixed and deltas are plain subtraction, a tick is
//! O(stages × buckets) ≈ 3k relaxed loads — microseconds of work per
//! second, far inside the ≤2 % overhead budget (DESIGN.md §18). Reads
//! race with recorders exactly like cumulative snapshots do: a sample
//! can land one interval late, never be lost, never be double-counted
//! (saturating subtraction absorbs a concurrent `reset`).
//!
//! The ring also carries **extra counters**: cumulative values the
//! embedder passes at tick time (the server feeds `queries-ok` /
//! `queries-err`), windowed by the same delta machinery so SLO burn
//! rates can be computed over any sub-window.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::{
    bucket_value, get_counters, json, put_counters, CounterSnapshot, Cursor, Gauge,
    MetricsRegistry, Op, SnapshotDecodeError, Stage, StageSnapshot, NUM_BUCKETS,
};

/// Default tick interval: one second.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);
/// Default ring capacity: 60 intervals (one minute at 1 Hz).
pub const DEFAULT_CAPACITY: usize = 60;

/// Cumulative per-stage totals at the last tick — the delta baseline.
#[derive(Clone)]
struct StageBase {
    buckets: Vec<u64>,
    count: u64,
    sum_us: u64,
}

impl StageBase {
    fn zero() -> Self {
        StageBase {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
        }
    }
}

/// One stage's activity during a single interval. Only allocated for
/// stages that actually recorded samples that interval.
#[derive(Clone)]
struct StageDelta {
    buckets: Vec<u32>,
    count: u64,
    sum_us: u64,
}

/// Everything that happened during one tick interval.
struct Interval {
    /// Indexed like [`Stage::ALL`]; `None` = no samples that interval.
    stages: Vec<Option<StageDelta>>,
    /// Op-counter deltas, indexed like [`Op::ALL`].
    ops: [u64; Op::COUNT],
    /// Extra-counter deltas, parallel to `WindowRing::extra_names`.
    extras: Vec<u64>,
    /// Point-in-time gauge values at the tick, indexed like
    /// [`Gauge::ALL`].
    gauges: [u64; Gauge::COUNT],
}

/// A ring of per-interval telemetry deltas behind a [`MetricsRegistry`].
///
/// Not a recorder: the hot path still writes to the registry's atomics.
/// The ring only subtracts cumulative totals at tick boundaries, so it
/// needs `&mut self` and lives behind the owner's mutex (the server
/// locks it once per second plus once per scrape).
pub struct WindowRing {
    interval: Duration,
    capacity: usize,
    stage_base: Vec<StageBase>,
    op_base: [u64; Op::COUNT],
    extra_names: Vec<String>,
    extra_base: Vec<u64>,
    ring: VecDeque<Interval>,
    ticks: u64,
}

impl WindowRing {
    /// An empty ring capturing `capacity` intervals of `interval` each.
    pub fn new(interval: Duration, capacity: usize) -> Self {
        WindowRing {
            interval: interval.max(Duration::from_millis(1)),
            capacity: capacity.max(1),
            stage_base: (0..Stage::COUNT).map(|_| StageBase::zero()).collect(),
            op_base: [0; Op::COUNT],
            extra_names: Vec::new(),
            extra_base: Vec::new(),
            ring: VecDeque::new(),
            ticks: 0,
        }
    }

    /// The configured tick interval.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Intervals currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True until the first tick.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ticks captured since construction (monotone; the ring holds the
    /// last `capacity` of them).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Captures one interval of deltas from `reg`.
    pub fn tick(&mut self, reg: &MetricsRegistry) {
        self.tick_with_extras(reg, &[]);
    }

    /// Captures one interval of deltas from `reg`, plus deltas of the
    /// embedder's own cumulative counters. Extra names first seen here
    /// are baselined at zero (correct for counters that start at zero
    /// with the process); the set is expected to be stable across ticks.
    pub fn tick_with_extras(&mut self, reg: &MetricsRegistry, extras: &[(&str, u64)]) {
        let mut stages: Vec<Option<StageDelta>> = Vec::with_capacity(Stage::COUNT);
        for (si, stage) in Stage::ALL.iter().enumerate() {
            let hist = &reg.inner.stages[*stage as usize];
            let base = &mut self.stage_base[si];
            let count = hist.count.load(Ordering::Relaxed);
            let sum_us = hist.sum_us.load(Ordering::Relaxed);
            let d_count = count.saturating_sub(base.count);
            if d_count == 0 {
                // A reset mid-run shows up as count < base: rebaseline
                // so the next interval's deltas are sane again.
                if count < base.count {
                    *base = StageBase::zero();
                    for (i, b) in hist.buckets.iter().enumerate() {
                        base.buckets[i] = b.load(Ordering::Relaxed);
                    }
                    base.count = count;
                    base.sum_us = sum_us;
                }
                stages.push(None);
                continue;
            }
            let mut delta = StageDelta {
                buckets: vec![0; NUM_BUCKETS],
                count: d_count,
                sum_us: sum_us.saturating_sub(base.sum_us),
            };
            for (i, b) in hist.buckets.iter().enumerate() {
                let cur = b.load(Ordering::Relaxed);
                delta.buckets[i] =
                    cur.saturating_sub(base.buckets[i]).min(u64::from(u32::MAX)) as u32;
                base.buckets[i] = cur;
            }
            base.count = count;
            base.sum_us = sum_us;
            stages.push(Some(delta));
        }

        let mut ops = [0u64; Op::COUNT];
        for (oi, op) in Op::ALL.iter().enumerate() {
            let cur = reg.op_count(*op);
            ops[oi] = cur.saturating_sub(self.op_base[oi]);
            self.op_base[oi] = cur;
        }

        let mut extra_deltas = vec![0u64; self.extra_names.len()];
        for &(name, value) in extras {
            match self.extra_names.iter().position(|n| n == name) {
                Some(i) => {
                    extra_deltas[i] = value.saturating_sub(self.extra_base[i]);
                    self.extra_base[i] = value;
                }
                None => {
                    self.extra_names.push(name.to_string());
                    self.extra_base.push(value);
                    extra_deltas.push(value);
                }
            }
        }

        let mut gauges = [0u64; Gauge::COUNT];
        for (gi, g) in Gauge::ALL.iter().enumerate() {
            gauges[gi] = reg.gauge(*g);
        }

        self.ring.push_back(Interval {
            stages,
            ops,
            extras: extra_deltas,
            gauges,
        });
        while self.ring.len() > self.capacity {
            self.ring.pop_front();
        }
        self.ticks += 1;
    }

    /// The intervals that make up the requested window: the newest
    /// `min(intervals, len)` entries.
    fn window(&self, intervals: usize) -> impl Iterator<Item = &Interval> {
        let n = intervals.max(1).min(self.ring.len());
        self.ring.iter().skip(self.ring.len() - n)
    }

    /// Aggregates the newest `intervals` intervals into one snapshot.
    /// Asking for more intervals than captured aggregates everything.
    pub fn windowed(&self, intervals: usize) -> WindowedSnapshot {
        let n = intervals.max(1).min(self.ring.len());
        let interval_ms = self.interval.as_millis().min(u64::MAX as u128) as u64;
        let window_ms = interval_ms * n as u64;

        let mut stages = Vec::with_capacity(Stage::COUNT);
        for (si, stage) in Stage::ALL.iter().enumerate() {
            let mut buckets = vec![0u64; NUM_BUCKETS];
            let mut count = 0u64;
            let mut sum_us = 0u64;
            for iv in self.window(n) {
                if let Some(d) = &iv.stages[si] {
                    count += d.count;
                    sum_us += d.sum_us;
                    for (i, &b) in d.buckets.iter().enumerate() {
                        buckets[i] += u64::from(b);
                    }
                }
            }
            stages.push(snapshot_from_buckets(stage.name(), &buckets, count, sum_us));
        }

        let mut counters = Vec::with_capacity(Op::COUNT + self.extra_names.len());
        let mut rates = Vec::with_capacity(Op::COUNT + self.extra_names.len());
        let mut push = |name: &str, total: u64| {
            counters.push(CounterSnapshot {
                name: name.to_string(),
                value: total,
            });
            rates.push(CounterSnapshot {
                name: name.to_string(),
                value: total
                    .saturating_mul(1000)
                    .checked_div(window_ms)
                    .unwrap_or(0),
            });
        };
        for (oi, op) in Op::ALL.iter().enumerate() {
            let total: u64 = self.window(n).map(|iv| iv.ops[oi]).sum();
            push(op.name(), total);
        }
        for (ei, name) in self.extra_names.iter().enumerate() {
            let total: u64 = self
                .window(n)
                .map(|iv| iv.extras.get(ei).copied().unwrap_or(0))
                .sum();
            push(name, total);
        }

        let gauges = match self.ring.back() {
            Some(iv) => Gauge::ALL
                .iter()
                .enumerate()
                .map(|(gi, g)| CounterSnapshot {
                    name: g.name().to_string(),
                    value: iv.gauges[gi],
                })
                .collect(),
            None => Vec::new(),
        };

        WindowedSnapshot {
            interval_ms,
            intervals: n as u32,
            window_ms,
            stages,
            counters,
            rates,
            gauges,
        }
    }

    /// `(over, total)` sample counts for `stage` in the newest
    /// `intervals` intervals, where `over` counts samples whose bucket
    /// midpoint exceeds `threshold_us`. Bucket granularity makes the
    /// threshold fuzzy by ≤ 12.5 % — fine for SLO burn accounting.
    pub fn stage_over_threshold(
        &self,
        stage: Stage,
        intervals: usize,
        threshold_us: u64,
    ) -> (u64, u64) {
        let si = stage as usize;
        let mut over = 0u64;
        let mut total = 0u64;
        for iv in self.window(intervals) {
            if let Some(d) = &iv.stages[si] {
                total += d.count;
                for (i, &b) in d.buckets.iter().enumerate() {
                    if b != 0 && bucket_value(i) > threshold_us {
                        over += u64::from(b);
                    }
                }
            }
        }
        (over, total)
    }

    /// Delta of a counter (op or extra) over the newest `intervals`
    /// intervals; 0 for unknown names.
    pub fn counter_delta(&self, name: &str, intervals: usize) -> u64 {
        if let Some(op) = Op::from_name(name) {
            let oi = Op::ALL.iter().position(|o| *o == op).unwrap();
            return self.window(intervals).map(|iv| iv.ops[oi]).sum();
        }
        match self.extra_names.iter().position(|n| n == name) {
            Some(ei) => self
                .window(intervals)
                .map(|iv| iv.extras.get(ei).copied().unwrap_or(0))
                .sum(),
            None => 0,
        }
    }
}

/// Builds a [`StageSnapshot`] from summed delta buckets. Exemplars are
/// zero: they link to the live trace ring, which has no per-interval
/// notion.
fn snapshot_from_buckets(name: &str, buckets: &[u64], count: u64, sum_us: u64) -> StageSnapshot {
    let total: u64 = buckets.iter().sum();
    let pct = |p: u64| -> u64 {
        if total == 0 {
            return 0;
        }
        // Nearest-rank on integer permille: rank = ceil(p% of total).
        let rank = (p * total).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_value(i);
            }
        }
        bucket_value(NUM_BUCKETS - 1)
    };
    let max_us = buckets
        .iter()
        .enumerate()
        .rev()
        .find(|(_, &c)| c != 0)
        .map(|(i, _)| bucket_value(i))
        .unwrap_or(0);
    StageSnapshot {
        name: name.to_string(),
        count,
        total_us: sum_us,
        max_us,
        p50_us: pct(50),
        p95_us: pct(95),
        p99_us: pct(99),
        p50_exemplar: 0,
        p95_exemplar: 0,
        p99_exemplar: 0,
    }
}

/// Aggregated view of the newest *n* intervals of a [`WindowRing`]:
/// windowed stage aggregates, counter deltas, integer per-second rates,
/// and the latest gauge values. Serialized as JSON (`/metrics` sibling
/// faces, `windowed` section of dumps) and as a compact binary payload.
/// Integer-only by construction: the closed-enum redaction model.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowedSnapshot {
    /// Tick interval, milliseconds.
    pub interval_ms: u64,
    /// Intervals aggregated into this view.
    pub intervals: u32,
    /// Window span: `intervals × interval_ms`.
    pub window_ms: u64,
    /// Windowed per-stage aggregates (exemplars zero).
    pub stages: Vec<StageSnapshot>,
    /// Counter deltas over the window (ops plus embedder extras).
    pub counters: Vec<CounterSnapshot>,
    /// Integer per-second rates for the same counters.
    pub rates: Vec<CounterSnapshot>,
    /// Gauge values at the newest tick.
    pub gauges: Vec<CounterSnapshot>,
}

impl WindowedSnapshot {
    /// Looks up a windowed stage aggregate by name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a windowed counter delta by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a per-second rate by name.
    pub fn rate(&self, name: &str) -> Option<u64> {
        self.rates.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// The JSON value of this snapshot. Hand-rolled, integer-only.
    pub fn to_json(&self) -> String {
        let mut obj = json::Obj::new();
        obj.field_u64("interval_ms", self.interval_ms);
        obj.field_u64("intervals", u64::from(self.intervals));
        obj.field_u64("window_ms", self.window_ms);
        obj.field_raw(
            "stages",
            &json::arr(self.stages.iter().map(StageSnapshot::to_json)),
        );
        obj.field_raw(
            "counters",
            &json::arr(self.counters.iter().map(CounterSnapshot::to_json)),
        );
        obj.field_raw(
            "rates",
            &json::arr(self.rates.iter().map(CounterSnapshot::to_json)),
        );
        obj.field_raw(
            "gauges",
            &json::arr(self.gauges.iter().map(CounterSnapshot::to_json)),
        );
        obj.finish()
    }

    /// Compact binary encoding, following the `TelemetrySnapshot` wire
    /// conventions (big-endian, length-prefixed names, hard caps).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 * self.stages.len() + 24 * self.counters.len());
        out.extend_from_slice(&self.interval_ms.to_be_bytes());
        out.extend_from_slice(&self.intervals.to_be_bytes());
        out.extend_from_slice(&self.window_ms.to_be_bytes());
        out.extend_from_slice(
            &(self.stages.len().min(crate::MAX_WIRE_ENTRIES) as u16).to_be_bytes(),
        );
        for s in self.stages.iter().take(crate::MAX_WIRE_ENTRIES) {
            crate::put_name(&mut out, &s.name);
            for v in [s.count, s.total_us, s.max_us, s.p50_us, s.p95_us, s.p99_us] {
                out.extend_from_slice(&v.to_be_bytes());
            }
        }
        put_counters(&mut out, &self.counters);
        put_counters(&mut out, &self.rates);
        put_counters(&mut out, &self.gauges);
        out
    }

    /// Inverse of [`WindowedSnapshot::to_bytes`]; rejects truncation,
    /// trailing bytes, oversized tables, and malformed names.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, SnapshotDecodeError> {
        let mut cur = Cursor { buf, pos: 0 };
        let interval_ms = cur.u64()?;
        let intervals = cur.u32()?;
        let window_ms = cur.u64()?;
        let n_stages = cur.u16()? as usize;
        if n_stages > crate::MAX_WIRE_ENTRIES {
            return Err(SnapshotDecodeError("too many entries"));
        }
        let mut stages = Vec::with_capacity(n_stages);
        for _ in 0..n_stages {
            let name = cur.name()?;
            let mut vals = [0u64; 6];
            for v in &mut vals {
                *v = cur.u64()?;
            }
            stages.push(StageSnapshot {
                name,
                count: vals[0],
                total_us: vals[1],
                max_us: vals[2],
                p50_us: vals[3],
                p95_us: vals[4],
                p99_us: vals[5],
                p50_exemplar: 0,
                p95_exemplar: 0,
                p99_exemplar: 0,
            });
        }
        let counters = get_counters(&mut cur)?;
        let rates = get_counters(&mut cur)?;
        let gauges = get_counters(&mut cur)?;
        cur.done()?;
        Ok(WindowedSnapshot {
            interval_ms,
            intervals,
            window_ms,
            stages,
            counters,
            rates,
            gauges,
        })
    }
}

#[cfg(all(test, not(feature = "noop")))]
mod tests {
    use super::*;

    fn ring() -> WindowRing {
        WindowRing::new(Duration::from_secs(1), 4)
    }

    #[test]
    fn deltas_cover_only_their_interval() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        reg.record_us(Stage::Validate, 100);
        reg.record_us(Stage::Validate, 200);
        w.tick(&reg);
        reg.record_us(Stage::Validate, 400);
        w.tick(&reg);

        // Newest interval only holds the third sample.
        let last = w.windowed(1);
        let v = last.stage("validate").unwrap();
        assert_eq!(v.count, 1);
        assert_eq!(v.total_us, 400);
        // The two-interval window holds all three.
        let both = w.windowed(2);
        let v = both.stage("validate").unwrap();
        assert_eq!(v.count, 3);
        assert_eq!(v.total_us, 700);
        // Untouched stages report empty, not stale cumulative data.
        assert_eq!(both.stage("sanitation").unwrap().count, 0);
    }

    #[test]
    fn ring_evicts_beyond_capacity() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        for i in 0..6u64 {
            reg.record_us(Stage::EndToEnd, 1000 + i);
            w.tick(&reg);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.ticks(), 6);
        // Only the newest 4 samples survive in the widest window.
        assert_eq!(w.windowed(100).stage("end-to-end").unwrap().count, 4);
    }

    #[test]
    fn windowed_percentiles_and_max_from_deltas() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        for us in [1u64, 2, 2, 3, 15] {
            reg.record_us(Stage::CandidateEval, us);
        }
        w.tick(&reg);
        let s = w.windowed(1);
        let c = s.stage("candidate-eval").unwrap();
        assert_eq!(c.count, 5);
        assert_eq!(c.p50_us, 2);
        assert_eq!(c.max_us, 15);
    }

    #[test]
    fn op_and_extra_counter_rates() {
        let reg = MetricsRegistry::new();
        let mut w = WindowRing::new(Duration::from_secs(2), 4);
        reg.incr_by(Op::PaillierDot, 10);
        w.tick_with_extras(&reg, &[("queries-ok", 4)]);
        reg.incr_by(Op::PaillierDot, 6);
        w.tick_with_extras(&reg, &[("queries-ok", 9)]);

        let s = w.windowed(2);
        assert_eq!(s.counter("paillier-dot-ops"), Some(16));
        assert_eq!(s.counter("queries-ok"), Some(9));
        // 16 ops over 4 s of window → 4/s.
        assert_eq!(s.rate("paillier-dot-ops"), Some(4));
        assert_eq!(w.counter_delta("queries-ok", 1), 5);
        assert_eq!(w.counter_delta("nope", 2), 0);
    }

    #[test]
    fn over_threshold_counts_tail_samples() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        for us in [10u64, 10, 10, 50_000, 60_000] {
            reg.record_us(Stage::EndToEnd, us);
        }
        w.tick(&reg);
        let (over, total) = w.stage_over_threshold(Stage::EndToEnd, 1, 20_000);
        assert_eq!(total, 5);
        assert_eq!(over, 2);
        let (over, _) = w.stage_over_threshold(Stage::EndToEnd, 1, 1_000_000);
        assert_eq!(over, 0);
    }

    #[test]
    fn registry_reset_rebaselines_instead_of_underflowing() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        reg.record_us(Stage::Validate, 100);
        w.tick(&reg);
        reg.reset();
        w.tick(&reg);
        reg.record_us(Stage::Validate, 200);
        w.tick(&reg);
        let s = w.windowed(1).stage("validate").unwrap().clone();
        assert_eq!(s.count, 1);
        assert_eq!(s.total_us, 200);
    }

    #[test]
    fn windowed_json_is_integer_only_and_stable() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        reg.record_us(Stage::EndToEnd, 12345);
        w.tick_with_extras(&reg, &[("queries-ok", 1)]);
        let json = w.windowed(1).to_json();
        assert!(json.starts_with(r#"{"interval_ms":"#));
        assert!(json.contains(r#""rates":["#));
        let bytes = json.as_bytes();
        for i in 1..bytes.len() - 1 {
            assert!(
                !(bytes[i] == b'.'
                    && bytes[i - 1].is_ascii_digit()
                    && bytes[i + 1].is_ascii_digit()),
                "windowed JSON contains a float near {i}"
            );
        }
    }

    #[test]
    fn windowed_binary_round_trip() {
        let reg = MetricsRegistry::new();
        let mut w = ring();
        reg.record_us(Stage::EndToEnd, 777);
        reg.incr(Op::PaillierEncrypt);
        w.tick_with_extras(&reg, &[("queries-ok", 3)]);
        let snap = w.windowed(1);
        let bytes = snap.to_bytes();
        let back = WindowedSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert!(WindowedSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(WindowedSnapshot::from_bytes(&padded).is_err());
    }
}
