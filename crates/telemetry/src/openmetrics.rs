//! OpenMetrics text rendering for the `/metrics` scrape endpoint.
//!
//! Everything a scraper sees here is drawn from closed enums: stage,
//! op, and gauge names come from [`Stage::name`]/[`Op::name`]/
//! [`Gauge::name`], service-event names from the server's fixed counter
//! list, cost-constant names from [`CostKind::name`]. Values are
//! integers (µs, ns, counts, permille) — coordinates and distances are
//! the only floats in the whole pipeline, and none of them can reach a
//! family below. That is the redaction argument (DESIGN.md §18); the
//! golden test greps the rendered body for float-shaped tokens to pin
//! it from the outside.
//!
//! The output targets the OpenMetrics 1.0 text format: one `# TYPE`
//! line per family, counter samples suffixed `_total`, a final `# EOF`.

use crate::costmodel::{CostKind, CostModel};
use crate::window::WindowedSnapshot;
use crate::{Op, TelemetrySnapshot};

/// One SLO burn-rate sample for the `ppgnn_slo_burn_permille` family.
#[derive(Debug, Clone, Copy)]
pub struct SloBurn {
    /// Which objective ("latency" or "errors").
    pub objective: &'static str,
    /// Which burn window ("fast" or "slow").
    pub window: &'static str,
    /// Burn rate in permille of the error budget.
    pub burn_pm: u64,
}

fn family(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push('\n');
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            // Closed-enum names never contain quotes or backslashes;
            // escape anyway so a future name cannot corrupt the format.
            for c in v.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Renders the full scrape body: cumulative stage/op/gauge families
/// from `snap`, windowed families from `windowed`, cost-model families
/// from `cost`, and SLO burn rates. Ends with `# EOF`.
pub fn render(
    snap: &TelemetrySnapshot,
    windowed: Option<&WindowedSnapshot>,
    cost: Option<&CostModel>,
    slo: &[SloBurn],
) -> String {
    let mut out = String::with_capacity(16 * 1024);

    family(
        &mut out,
        "ppgnn_up",
        "gauge",
        "1 while the server is serving.",
    );
    sample(&mut out, "ppgnn_up", &[], 1);

    family(
        &mut out,
        "ppgnn_stage_samples",
        "counter",
        "Samples recorded per pipeline stage since boot.",
    );
    for s in &snap.stages {
        sample(
            &mut out,
            "ppgnn_stage_samples_total",
            &[("stage", &s.name)],
            s.count,
        );
    }
    family(
        &mut out,
        "ppgnn_stage_sum_us",
        "counter",
        "Total microseconds recorded per pipeline stage since boot.",
    );
    for s in &snap.stages {
        sample(
            &mut out,
            "ppgnn_stage_sum_us_total",
            &[("stage", &s.name)],
            s.total_us,
        );
    }
    family(
        &mut out,
        "ppgnn_stage_latency_us",
        "gauge",
        "Cumulative stage latency percentiles, microseconds (bucket midpoints).",
    );
    for s in &snap.stages {
        for (p, v) in [
            ("50", s.p50_us),
            ("95", s.p95_us),
            ("99", s.p99_us),
            ("max", s.max_us),
        ] {
            sample(
                &mut out,
                "ppgnn_stage_latency_us",
                &[("stage", &s.name), ("p", p)],
                v,
            );
        }
    }

    // Cumulative counters split into op counters (closed Op enum) and
    // service events (the server's fixed counter list).
    family(
        &mut out,
        "ppgnn_ops",
        "counter",
        "Homomorphic and sanitation operation counts since boot.",
    );
    family(
        &mut out,
        "ppgnn_server_events",
        "counter",
        "Server lifecycle and admission-control event counts since boot.",
    );
    for c in &snap.counters {
        if Op::from_name(&c.name).is_some() {
            sample(&mut out, "ppgnn_ops_total", &[("op", &c.name)], c.value);
        } else {
            sample(
                &mut out,
                "ppgnn_server_events_total",
                &[("event", &c.name)],
                c.value,
            );
        }
    }

    family(
        &mut out,
        "ppgnn_gauge",
        "gauge",
        "Point-in-time load gauges.",
    );
    for g in &snap.gauges {
        sample(&mut out, "ppgnn_gauge", &[("name", &g.name)], g.value);
    }

    if let Some(w) = windowed {
        family(
            &mut out,
            "ppgnn_window_ms",
            "gauge",
            "Span of the rolling window the ppgnn_window_* families cover, ms.",
        );
        sample(&mut out, "ppgnn_window_ms", &[], w.window_ms);
        family(
            &mut out,
            "ppgnn_window_stage_samples",
            "gauge",
            "Samples recorded per stage inside the rolling window.",
        );
        for s in &w.stages {
            sample(
                &mut out,
                "ppgnn_window_stage_samples",
                &[("stage", &s.name)],
                s.count,
            );
        }
        family(
            &mut out,
            "ppgnn_window_stage_latency_us",
            "gauge",
            "Stage latency percentiles inside the rolling window, microseconds.",
        );
        for s in &w.stages {
            for (p, v) in [
                ("50", s.p50_us),
                ("95", s.p95_us),
                ("99", s.p99_us),
                ("max", s.max_us),
            ] {
                sample(
                    &mut out,
                    "ppgnn_window_stage_latency_us",
                    &[("stage", &s.name), ("p", p)],
                    v,
                );
            }
        }
        family(
            &mut out,
            "ppgnn_window_rate",
            "gauge",
            "Integer per-second counter rates inside the rolling window.",
        );
        for r in &w.rates {
            sample(
                &mut out,
                "ppgnn_window_rate",
                &[("counter", &r.name)],
                r.value,
            );
        }
    }

    if let Some(model) = cost {
        family(
            &mut out,
            "ppgnn_cost",
            "gauge",
            "Calibrated cost-model constants (integer ns or bytes) by key size.",
        );
        family(
            &mut out,
            "ppgnn_cost_samples",
            "gauge",
            "Window observations folded into each cost constant.",
        );
        for table in model.tables() {
            let bits = table.key_bits.to_string();
            for kind in CostKind::ALL {
                let e = table.entry(kind);
                if e.samples == 0 {
                    continue;
                }
                let labels = [("cost", kind.name()), ("key_bits", bits.as_str())];
                sample(&mut out, "ppgnn_cost", &labels, e.value);
                sample(&mut out, "ppgnn_cost_samples", &labels, e.samples);
            }
        }
    }

    family(
        &mut out,
        "ppgnn_slo_burn_permille",
        "gauge",
        "SLO burn rate in permille of the error budget (1000 = at budget).",
    );
    for b in slo {
        sample(
            &mut out,
            "ppgnn_slo_burn_permille",
            &[("objective", b.objective), ("window", b.window)],
            b.burn_pm,
        );
    }

    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::WindowRing;
    use crate::{MetricsRegistry, Stage};
    use std::time::Duration;

    fn rendered() -> String {
        let reg = MetricsRegistry::new();
        #[cfg(not(feature = "noop"))]
        {
            reg.record_us(Stage::EndToEnd, 30_000);
            reg.incr(crate::Op::PaillierDot);
        }
        let mut ring = WindowRing::new(Duration::from_secs(1), 4);
        ring.tick_with_extras(&reg, &[("queries-ok", 5)]);
        let mut snap = reg.snapshot();
        snap.push_counter("queries-ok", 5);
        let mut cost = CostModel::new();
        cost.observe(128, &ring.windowed(1));
        render(
            &snap,
            Some(&ring.windowed(1)),
            Some(&cost),
            &[SloBurn {
                objective: "latency",
                window: "fast",
                burn_pm: 250,
            }],
        )
    }

    #[test]
    fn body_has_required_families_and_eof() {
        let body = rendered();
        for fam in [
            "ppgnn_up",
            "ppgnn_stage_samples",
            "ppgnn_stage_latency_us",
            "ppgnn_ops",
            "ppgnn_server_events",
            "ppgnn_gauge",
            "ppgnn_window_ms",
            "ppgnn_window_stage_latency_us",
            "ppgnn_window_rate",
            "ppgnn_slo_burn_permille",
        ] {
            assert!(
                body.contains(&format!("# TYPE {fam} ")),
                "missing family {fam}"
            );
        }
        assert!(body.ends_with("# EOF\n"));
        assert!(body.contains(r#"ppgnn_slo_burn_permille{objective="latency",window="fast"} 250"#));
        assert!(body.contains(r#"ppgnn_server_events_total{event="queries-ok"} 5"#));
    }

    #[test]
    fn counter_samples_carry_total_suffix() {
        let body = rendered();
        for line in body.lines() {
            if line.starts_with("ppgnn_stage_samples")
                || line.starts_with("ppgnn_ops")
                || line.starts_with("ppgnn_server_events")
            {
                let name = line.split(['{', ' ']).next().unwrap();
                assert!(
                    name.ends_with("_total"),
                    "counter sample without _total: {line}"
                );
            }
        }
    }

    #[test]
    fn body_is_float_free() {
        let body = rendered();
        let bytes = body.as_bytes();
        for i in 1..bytes.len() - 1 {
            assert!(
                !(bytes[i] == b'.'
                    && bytes[i - 1].is_ascii_digit()
                    && bytes[i + 1].is_ascii_digit()),
                "scrape body contains a float near byte {i}: {:?}",
                &body[i.saturating_sub(30)..(i + 10).min(body.len())]
            );
        }
    }
}
