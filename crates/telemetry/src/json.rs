//! A minimal JSON *emitter* for the telemetry report schemas.
//!
//! Telemetry only ever writes JSON (`--stats-json`, `BENCH_server.json`,
//! mallory `--json`); it never parses it. Hand-rolling the writer keeps
//! the runtime free of a serde dependency and the output byte-stable
//! across builds — the schema is documented in DESIGN.md §12.

/// Escapes a string for use inside a JSON string literal.
///
/// Beyond the mandatory escapes (quote, backslash, C0 controls) this
/// also escapes DEL and the Unicode line separators U+2028/U+2029: the
/// latter are legal in JSON but break consumers that evaluate the
/// output as JavaScript (`chrome://tracing` loads trace files that
/// way), so a hostile name must not be able to smuggle them through.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // All BMP code points, so one \uXXXX unit each.
            c if (c as u32) < 0x20 || c == '\u{7f}' || c == '\u{2028}' || c == '\u{2029}' => {
                out.push_str(&format!("\\u{:04x}", c as u32))
            }
            c => out.push(c),
        }
    }
    out
}

/// Joins already-encoded JSON values into an array.
pub fn arr(items: impl Iterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// An incremental JSON object writer.
///
/// ```
/// use ppgnn_telemetry::json::Obj;
/// let mut obj = Obj::new();
/// obj.field_str("kind", "bench");
/// obj.field_u64("queries", 64);
/// assert_eq!(obj.finish(), r#"{"kind":"bench","queries":64}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    out: String,
    any: bool,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj {
            out: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push('"');
        self.out.push_str(&escape(k));
        self.out.push_str("\":");
    }

    /// Adds a string field.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.out.push('"');
        self.out.push_str(&escape(v));
        self.out.push('"');
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.out.push_str(&v.to_string());
    }

    /// Adds a float field (3 decimal places; non-finite becomes 0).
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        let v = if v.is_finite() { v } else { 0.0 };
        self.out.push_str(&format!("{v:.3}"));
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Adds a field whose value is already-encoded JSON.
    pub fn field_raw(&mut self, k: &str, raw: &str) {
        self.key(k);
        self.out.push_str(raw);
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_and_array_compose() {
        let mut inner = Obj::new();
        inner.field_str("name", "validate");
        inner.field_u64("count", 3);
        let mut outer = Obj::new();
        outer.field_raw("stages", &arr([inner.finish()].into_iter()));
        outer.field_f64("qps", 12.5);
        outer.field_bool("sanitize", false);
        assert_eq!(
            outer.finish(),
            r#"{"stages":[{"name":"validate","count":3}],"qps":12.500,"sanitize":false}"#
        );
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("\u{7f}"), "\\u007f");
        assert_eq!(escape("\u{2028}\u{2029}"), "\\u2028\\u2029");
    }

    #[test]
    fn hostile_names_stay_inside_their_string() {
        // A name trying to break out of the key/value position must be
        // neutralized: the output may not contain an unescaped quote,
        // raw control byte, or JS line separator.
        let hostile = "\"},{\"admin\":true}\u{0}\u{1b}[31m\\\u{2028}";
        let mut obj = Obj::new();
        obj.field_str(hostile, hostile);
        let out = obj.finish();
        assert_eq!(
            out,
            "{\"\\\"},{\\\"admin\\\":true}\\u0000\\u001b[31m\\\\\\u2028\":\
             \"\\\"},{\\\"admin\\\":true}\\u0000\\u001b[31m\\\\\\u2028\"}"
        );
        assert!(!out.contains('\u{0}'));
        assert!(!out.contains('\u{2028}'));
        // Still exactly one top-level object with one key.
        assert_eq!(out.matches("\":\"").count(), 1);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(arr(std::iter::empty()), "[]");
    }

    #[test]
    fn non_finite_floats_are_zeroed() {
        let mut obj = Obj::new();
        obj.field_f64("qps", f64::NAN);
        assert_eq!(obj.finish(), r#"{"qps":0.000}"#);
    }
}
